"""Design-choice ablations (DESIGN.md's list) beyond the paper's own
tables: each shows why a piece of the measurement methodology exists.
"""

import pytest

from repro.corpus import tensorflow_ablation_block
from repro.eval.reporting import format_table
from repro.isa.parser import parse_block
from repro.profiler import (BasicBlockProfiler, ProfilerConfig,
                            EnvironmentConfig)
from repro.profiler.filters import AcceptancePolicy
from repro.uarch import Machine, NoiseParameters


def test_ablation_two_factor_kills_warmup_bias(benchmark, report):
    """Eq. 2 vs Eq. 1 at equal (small) unroll factors: the naive
    formula carries pipeline-fill bias that the difference cancels."""
    # Three chained multiplies: steady state is 5 cycles/iter, but the
    # pipeline takes ~10 cycles to fill — visible as Eq. 1 bias.
    block = parse_block("mulps %xmm0, %xmm1\nmulps %xmm1, %xmm2\n"
                        "mulps %xmm2, %xmm3")
    two_factor = BasicBlockProfiler(Machine("haswell")).profile(block)
    small_naive = BasicBlockProfiler(
        Machine("haswell"),
        ProfilerConfig(unroll_strategy="naive", naive_unroll=8)) \
        .profile(block)
    big_naive = BasicBlockProfiler(
        Machine("haswell"),
        ProfilerConfig(unroll_strategy="naive", naive_unroll=100)) \
        .profile(block)

    rows = [("two-factor (16,32)", round(two_factor.throughput, 3)),
            ("naive u=8", round(small_naive.throughput, 3)),
            ("naive u=100", round(big_naive.throughput, 3))]
    report("ablation_two_factor", format_table(
        ["strategy", "throughput"], rows,
        title="Ablation — warm-up bias of Eq. 1 at small unroll"))

    assert small_naive.throughput > two_factor.throughput
    assert abs(big_naive.throughput - two_factor.throughput) \
        < abs(small_naive.throughput - two_factor.throughput)

    benchmark(BasicBlockProfiler(Machine("haswell")).profile, block)


def test_ablation_acceptance_policy_vs_mean(benchmark, report):
    """Taking the mean of 16 noisy runs inflates the estimate; the
    8-identical-clean rule recovers the true cycles exactly."""
    from repro.profiler.environment import Environment
    from repro.profiler.mapping import map_pages
    from repro.runtime.executor import Executor

    noisy = NoiseParameters(context_switch_rate=2e-4,
                            jitter_probability=0.4)
    machine = Machine("haswell", seed=3, noise=noisy)
    block = parse_block("imul %rbx, %rax")
    env = Environment(EnvironmentConfig())
    env.reset()
    map_pages(env, block, unroll=32)
    env.reinitialize()
    trace = Executor(env.state, env.memory).execute_block(block, 32)
    run = machine.run(block, 32, trace, env.memory, reps=16)

    policy = AcceptancePolicy()
    accepted, failure, _ = policy.accept(run.samples)
    mean = sum(s.cycles for s in run.samples) / len(run.samples)

    rows = [("true (noise-free) cycles", run.base_cycles),
            ("accepted (8-of-16 identical clean)", accepted),
            ("naive mean of 16 runs", round(mean, 1))]
    report("ablation_acceptance", format_table(
        ["estimator", "cycles"], rows,
        title="Ablation — acceptance policy vs naive averaging "
              "under OS noise"))

    assert accepted == run.base_cycles
    assert mean > run.base_cycles

    benchmark(policy.accept, run.samples)


def test_ablation_single_page_necessity(benchmark, report):
    """Without the single-physical-page trick a multi-stream block's
    working set defeats the L1D and the measurement violates the
    §III-C invariants (the effect behind Table II's 956 misses)."""
    streams = "\n".join(f"mov {k * 8192}(%rdi), %rax"
                        for k in range(12))
    block = parse_block(streams + "\nadd $64, %rdi")
    naive = dict(unroll_strategy="naive", naive_unroll=100)
    single = BasicBlockProfiler(
        Machine("haswell"), ProfilerConfig(**naive)).profile(block)
    multi = BasicBlockProfiler(
        Machine("haswell"),
        ProfilerConfig(environment=EnvironmentConfig(
            single_physical_page=False), **naive)).profile(block)
    rows = [("single physical page",
             "ok" if single.ok else single.failure.value),
            ("one frame per page",
             "ok" if multi.ok else multi.failure.value)]
    report("ablation_single_page", format_table(
        ["mapping mode", "outcome"], rows,
        title="Ablation — single physical page vs per-page frames"))
    assert single.ok
    assert not multi.ok  # rejected: L1D misses violate invariants

    benchmark(BasicBlockProfiler(Machine("haswell")).profile, block)


def test_ablation_ftz_required_for_clean_timing(benchmark, report):
    """With gradual underflow enabled, the subnormal kernel is an
    order of magnitude slower — the paper's 20x observation."""
    kernel = parse_block("""
        movss (%rbx), %xmm0
        cvtsi2ss %eax, %xmm1
        divss %xmm1, %xmm0
        divss %xmm1, %xmm0
        mulss %xmm0, %xmm2
    """)
    relaxed = AcceptancePolicy(enforce_invariants=False,
                               reject_misaligned=False)
    with_ftz = BasicBlockProfiler(
        Machine("haswell"),
        ProfilerConfig(environment=EnvironmentConfig(ftz=True),
                       acceptance=relaxed)).profile(kernel)
    without = BasicBlockProfiler(
        Machine("haswell"),
        ProfilerConfig(environment=EnvironmentConfig(ftz=False),
                       acceptance=relaxed)).profile(kernel)
    rows = [("MXCSR FTZ+DAZ on", round(with_ftz.throughput, 2)),
            ("gradual underflow on", round(without.throughput, 2)),
            ("slowdown", f"{without.throughput / with_ftz.throughput:.1f}x")]
    report("ablation_ftz", format_table(
        ["configuration", "cycles/iter"], rows,
        title="Ablation — subnormal assists vs FTZ"))
    assert without.throughput > 5 * with_ftz.throughput

    benchmark(BasicBlockProfiler(Machine("haswell")).profile, kernel)
