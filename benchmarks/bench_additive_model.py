"""Why block-level validation matters (§II's per-instruction tables).

The paper argues per-instruction cost tables cannot validate models at
the basic-block level.  This bench quantifies it: an additive
per-instruction model (LLVM's IR-cost-model family) against the
port-simulator models on the measured corpus — fine on throughput-
bound code, badly wrong wherever dependences or ILP dominate.
"""

from repro.eval.metrics import average_error
from repro.eval.reporting import format_table
from repro.models import IacaModel
from repro.models.additive import AdditiveCostModel
from repro.profiler import profile_block


def test_additive_model_limitations(benchmark, experiment, report):
    measured = experiment.measured("haswell")
    records = [r for r in experiment.corpus
               if r.block_id in measured][:250]
    additive = AdditiveCostModel()
    iaca = IacaModel()

    pairs = {"additive": [], "IACA": []}
    for record in records:
        value = measured[record.block_id]
        for name, model in (("additive", additive), ("IACA", iaca)):
            pred = model.predict_safe(record.block, "haswell")
            if pred.ok:
                pairs[name].append((pred.throughput, value))
    corpus_rows = [(name, round(average_error(pts), 4))
                   for name, pts in pairs.items()]

    # Two hand-picked extremes.
    ilp = "add $1, %rax\nadd $1, %rbx\nadd $1, %rcx\nadd $1, %rdx"
    chain = "mulps %xmm1, %xmm0"
    extreme_rows = []
    for label, text in (("4 independent adds (ILP)", ilp),
                        ("dependent mulps chain", chain)):
        meas = profile_block(text).throughput
        add_pred = additive.predict_safe(
            __import__("repro.isa", fromlist=["parse_block"])
            .parse_block(text), "haswell").throughput
        extreme_rows.append((label, meas, add_pred))

    text = format_table(["model", "avg error (corpus)"], corpus_rows,
                        title="Per-instruction additive model vs "
                              "port simulation")
    text += "\n\n" + format_table(
        ["block", "measured", "additive prediction"], extreme_rows,
        title="where additivity breaks")
    report("additive_model", text)

    assert average_error(pairs["additive"]) > \
        average_error(pairs["IACA"]) * 1.5
    # The chain case: additive sees one cheap instruction (cost ~0.5),
    # the hardware pays the full 5-cycle latency every iteration.
    assert extreme_rows[1][1] >= 5.0
    assert extreme_rows[1][2] <= 1.0

    benchmark(additive.predict_safe, records[0].block, "haswell")
