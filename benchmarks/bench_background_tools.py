"""§II background tools, rebuilt and cross-validated.

The paper surveys the ecosystem its suite complements: llvm-exegesis
(per-opcode latency micro-benchmarks) and Abel & Reineke's
port-mapping reverse engineering.  Both are implemented against our
simulated machines; this bench cross-validates them against the
ground-truth tables — the "do the background tools agree with the
machine they measure" sanity the paper's methodology presumes.
"""

from repro.classify.portprobe import BLOCKERS, PortProber
from repro.eval.reporting import format_table
from repro.isa.parser import parse_instruction
from repro.profiler.latency import InstructionBenchmark
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer

OPCODES = ("add", "imul", "shl", "popcnt", "addps", "mulps",
           "pshufd", "paddd", "xorps")


def test_exegesis_style_timings(benchmark, report):
    bench = InstructionBenchmark("haswell")
    desc, table, div = get_uarch("haswell")
    decomposer = Decomposer(desc, table, div)
    rows = []
    for mnemonic in OPCODES:
        timing = bench.measure(mnemonic)
        from repro.profiler.latency import _chain_block
        truth = decomposer.decompose(_chain_block(mnemonic)[0])
        truth_latency = max(u.latency for u in truth.uops)
        rows.append((mnemonic, truth_latency,
                     round(timing.latency, 2),
                     round(timing.reciprocal_throughput, 2)))
        assert abs(timing.latency - truth_latency) < 0.2, mnemonic
    report("background_exegesis", format_table(
        ["opcode", "table latency", "measured latency",
         "measured rthroughput"],
        rows, title="llvm-exegesis analogue vs ground-truth tables "
                    "(Haswell)"))

    benchmark(bench.latency, "imul")


def test_abel_reineke_style_port_inference(benchmark, report):
    prober = PortProber("haswell")
    desc, table, div = get_uarch("haswell")
    decomposer = Decomposer(desc, table, div)
    probe_set = ["pslld $2, %xmm12", "addss %xmm13, %xmm12",
                 "pshufd $3, %xmm13, %xmm12", "mulps %xmm13, %xmm12",
                 "paddd %xmm13, %xmm12", "xorps %xmm13, %xmm12",
                 "imul %rbx, %rax", "add %rbx, %rax"]
    rows = []
    correct = 0
    for text in probe_set:
        truth = decomposer.decompose(parse_instruction(text)).uops[0] \
            .ports
        inferred = prober.infer(text)
        blockable = set(truth) <= set(BLOCKERS)
        match = set(inferred.ports) == set(truth) if blockable \
            else set(truth) <= set(inferred.ports)
        correct += match
        rows.append((text, "p" + "".join(map(str, truth)),
                     inferred.combo, "yes" if match else "NO"))
    report("background_port_inference", format_table(
        ["instruction", "ground truth", "inferred", "match"],
        rows, title="Abel & Reineke-style port inference vs "
                    "ground-truth tables (Haswell)"))
    assert correct == len(probe_set)

    benchmark(prober.slowdown,
              parse_instruction("imul %rbx, %rax"), (1,))
