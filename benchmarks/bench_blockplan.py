"""Block-compiled execution plans: speedup and bit-identity.

Profiles the golden corpus (the 22-block fixture under ``tests/data``)
at the paper's unroll factors (100/200) with block plans on and off,
and enforces two claims:

* **Identity** — compilation is invisible in the output bytes: for
  every block, on every microarchitecture, serially and through the
  2-worker pool, the profile is identical to the ``--no-blockplan``
  run.
* **Speed** — with the simulation-core fast path forced *off* on both
  sides (so every dynamic instruction is actually executed and the
  comparison isolates the dispatch loop), compiled plans must win by
  at least ``SPEEDUP_FLOOR`` (2x) over the interpreted loop.  The
  composed speedup with the fast path on is also measured and
  reported, but not asserted (extrapolation already skips most
  iterations there, so the margin is workload-dependent).

Timing is best-of-``REPEATS`` per mode with fresh profilers per run,
so neither mode sees the other's bound plans or memos (the module
symbolic-plan cache is cleared between runs too).  Results land in
``reports/blockplan.{txt,json}`` plus a repo-root
``BENCH_blockplan.json`` for the dashboard.
"""

import json
import os
import time

from repro.corpus.dataset import build_application
from repro.eval.reporting import format_table
from repro.eval.validation import profile_corpus_detailed
from repro.parallel import profile_corpus_sharded
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.runtime import blockplan
from repro.runtime import plan as planmod
from repro.simcore import config as simcore
from repro.uarch.machine import Machine

from conftest import REPORT_DIR

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "tests", "data",
                      "golden_corpus.json")
ROOT_JSON = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_blockplan.json")

UARCH = os.environ.get("REPRO_BENCH_BLOCKPLAN_UARCH", "haswell")
BASE_FACTOR = 100  # two-factor plan: unroll 100 / 200
SPEEDUP_FLOOR = 2.0
REPEATS = int(os.environ.get("REPRO_BENCH_BLOCKPLAN_REPEATS", "2"))
UARCHES = ("ivybridge", "haswell", "skylake")


def _golden_texts():
    # Application blocks only: the "lanes" families grafted onto the
    # fixture benchmark their own layer (bench_lanes.py); this bench
    # keeps measuring the dispatch loop on the original workload.
    with open(GOLDEN) as fh:
        doc = json.load(fh)
    return [b["text"] for b in doc["blocks"]
            if b["application"] != "lanes"]


def _fingerprint(result):
    """Everything observable about one profile, as comparable bytes."""
    return (
        result.ok,
        None if result.failure is None else result.failure.value,
        result.throughput,
        tuple((m.unroll, m.cycles, m.clean_runs, m.total_runs,
               m.l1d_read_misses, m.l1d_write_misses, m.l1i_misses,
               m.misaligned_refs) for m in result.measurements),
        result.pages_mapped, result.num_faults,
        result.subnormal_events, result.detail,
    )


def _profile_run(texts, compiled, fastpath):
    """Profile ``texts`` with a fresh profiler; returns (secs, prints)."""
    planmod.clear_plan_cache()
    with simcore.forced(fastpath), blockplan.forced(compiled):
        profiler = BasicBlockProfiler(
            Machine(UARCH, seed=0),
            ProfilerConfig(base_factor=BASE_FACTOR))
        start = time.perf_counter()
        results = [profiler.profile(text) for text in texts]
        elapsed = time.perf_counter() - start
    return elapsed, [_fingerprint(r) for r in results]


def _best_of(texts, compiled, fastpath):
    best, prints = None, None
    for _ in range(REPEATS):
        elapsed, fps = _profile_run(texts, compiled, fastpath)
        if best is None or elapsed < best:
            best = elapsed
        prints = fps
    return best, prints


def _identity_sweep():
    """Serialized profiles identical, plans on vs off, serial + pool."""
    corpus = build_application("llvm", count=14, seed=5)
    for uarch in UARCHES:
        with blockplan.forced(False):
            off = profile_corpus_detailed(corpus, uarch, seed=5)
        with blockplan.forced(True):
            on = profile_corpus_detailed(corpus, uarch, seed=5)
            pool = profile_corpus_sharded(corpus, uarch, seed=5,
                                          jobs=2, shard_size=8)
        off_doc = json.dumps({"throughputs": off.throughputs,
                              "funnel": off.funnel})
        on_doc = json.dumps({"throughputs": on.throughputs,
                             "funnel": on.funnel})
        pool_doc = json.dumps({"throughputs": pool.throughputs,
                               "funnel": pool.funnel})
        assert off_doc == on_doc == pool_doc, \
            f"block plans changed serialized measurements on {uarch}"


def test_blockplan(report):
    texts = _golden_texts()

    # Full-simulation comparison: the gate.  Both sides execute every
    # dynamic instruction; only the dispatch strategy differs.
    full_on, full_on_fp = _best_of(texts, compiled=True,
                                   fastpath=False)
    full_off, full_off_fp = _best_of(texts, compiled=False,
                                     fastpath=False)
    assert full_on_fp == full_off_fp, \
        "compiled plans diverged from the interpreter (full simulation)"

    # Composed with the fast path: informational.
    fast_on, fast_on_fp = _best_of(texts, compiled=True, fastpath=True)
    fast_off, fast_off_fp = _best_of(texts, compiled=False,
                                     fastpath=True)
    assert fast_on_fp == fast_off_fp, \
        "compiled plans diverged from the interpreter (fast path on)"

    _identity_sweep()

    full_speedup = full_off / full_on
    fast_speedup = fast_off / fast_on
    rows = [
        ("full simulation", len(texts), round(full_off, 3),
         round(full_on, 3), f"{full_speedup:.2f}x",
         f">= {SPEEDUP_FLOOR}x enforced"),
        ("simcore fast path on", len(texts), round(fast_off, 3),
         round(fast_on, 3), f"{fast_speedup:.2f}x", "recorded"),
    ]
    title = (f"{UARCH}, unroll {BASE_FACTOR}/{2 * BASE_FACTOR}, "
             f"best of {REPEATS}; outputs bit-identical in all runs "
             f"(3-uarch serial+pool sweep included)")
    report("blockplan", format_table(
        ["workload", "profiles", "interp s", "compiled s", "speedup",
         "gate"], rows, title=title))

    doc = {"uarch": UARCH, "base_factor": BASE_FACTOR,
           "repeats": REPEATS, "floor": SPEEDUP_FLOOR,
           "identical_outputs": True,
           "full_simulation": {"profiles": len(texts),
                               "interpreted_s": full_off,
                               "compiled_s": full_on,
                               "speedup": full_speedup},
           "fastpath_on": {"profiles": len(texts),
                           "interpreted_s": fast_off,
                           "compiled_s": fast_on,
                           "speedup": fast_speedup}}
    for path in (os.path.join(REPORT_DIR, "blockplan.json"),
                 ROOT_JSON):
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")

    assert full_speedup >= SPEEDUP_FLOOR, (
        f"compiled plans {full_speedup:.2f}x < {SPEEDUP_FLOOR}x over "
        f"the interpreted loop on full simulation — pre-binding or "
        f"the step loop regressed")
