"""Fig. 11 — schedules predicted by llvm-mca and IACA for the gzip
CRC block.

The paper's observation: IACA dispatches the ``xorb``'s load micro-op
noticeably earlier because it knows the load is independent of the
ALU operand; llvm-mca delays the whole fused pair behind the previous
``xorq``.
"""

from repro.corpus import gzip_crc_block
from repro.eval.reporting import schedule_diagram
from repro.models import IacaModel, LlvmMcaModel


def test_fig11_schedules(benchmark, report):
    block = gzip_crc_block()
    iaca, mca = IacaModel(), LlvmMcaModel()
    iaca_trace = iaca.schedule_trace(block, "haswell", unroll=3)
    mca_trace = mca.schedule_trace(block, "haswell", unroll=3)

    text = "\n\n".join([
        "IACA's predicted schedule (3 iterations):",
        schedule_diagram(iaca_trace.records, len(block) * 3,
                         max_cycles=60),
        "llvm-mca's predicted schedule (3 iterations):",
        schedule_diagram(mca_trace.records, len(block) * 3,
                         max_cycles=60),
    ])
    report("fig11_scheduling", text)

    def xorb_load_dispatches(records):
        return [r.dispatch for r in records
                if r.slot == 3 and r.kind in ("load", "load_op")]

    iaca_loads = xorb_load_dispatches(iaca_trace.records)
    mca_loads = xorb_load_dispatches(mca_trace.records)
    # From the second iteration on, IACA hoists the xorb load ahead
    # of where llvm-mca can dispatch the fused pair.
    assert iaca_loads[-1] < mca_loads[-1]
    # And the iteration windows are wider for llvm-mca (8 vs 13).
    assert mca_trace.cycles > iaca_trace.cycles

    benchmark(iaca.schedule_trace, block, "haswell", 3)
