"""Fig. 12 (case-study table) — interesting basic blocks and their
inverse throughput as measured and as reported by each model.

Paper (Haswell):
  div block:    measured 21.62 | IACA 98.00 | mca 99.04 |
                Ithemal 14.49 | OSACA 12.25
  vxorps idiom: measured 0.25  | IACA 0.24  | mca 1.00  |
                Ithemal 0.328 | OSACA 1.00
  gzip CRC:     measured 8.25  | IACA 8.00  | mca 13.04 |
                Ithemal 2.13  | OSACA -
"""

import pytest

from repro.corpus import div_block, gzip_crc_block, zero_idiom_block
from repro.eval.reporting import format_table
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine

PAPER = {
    "64/32-bit unsigned division": (21.62, 98.00, 99.04, 14.49, 12.25),
    "vxorps zero idiom": (0.25, 0.24, 1.00, 0.328, 1.00),
    "gzip CRC inner loop": (8.25, 8.00, 13.04, 2.13, None),
}


@pytest.fixture(scope="module")
def case_rows(experiment):
    experiment.validation("haswell")  # trains Ithemal
    models = experiment.models
    profiler = BasicBlockProfiler(Machine("haswell"))
    cases = {
        "64/32-bit unsigned division": div_block(),
        "vxorps zero idiom": zero_idiom_block(),
        "gzip CRC inner loop": gzip_crc_block(),
    }
    rows = {}
    for name, block in cases.items():
        measured = profiler.profile(block).throughput
        preds = {m.name: m.predict_safe(block, "haswell").throughput
                 for m in models}
        rows[name] = (measured, preds)
    return rows


def test_fig12_case_study(benchmark, case_rows, report):
    table = []
    for name, (measured, preds) in case_rows.items():
        paper = PAPER[name]
        table.append((name,
                      paper[0], round(measured, 2),
                      paper[1], preds["IACA"],
                      paper[2], preds["llvm-mca"],
                      paper[3], preds["Ithemal"],
                      paper[4], preds["OSACA"]))
    report("fig12_case_study", format_table(
        ["Block", "meas(p)", "meas", "IACA(p)", "IACA",
         "mca(p)", "mca", "Ith(p)", "Ith", "OSACA(p)", "OSACA"],
        table, title="Fig. 12 — case-study blocks (Haswell; (p) = "
                     "paper's value, '-' = tool failed)"))

    div_measured, div_preds = case_rows["64/32-bit unsigned division"]
    assert div_measured == pytest.approx(21.62, abs=2.5)
    assert div_preds["IACA"] > 3 * div_measured      # width confusion
    assert div_preds["llvm-mca"] > 3 * div_measured
    assert div_preds["OSACA"] < div_measured          # under-predicts

    zi_measured, zi_preds = case_rows["vxorps zero idiom"]
    assert zi_measured == pytest.approx(0.25, abs=0.01)
    assert zi_preds["IACA"] == pytest.approx(0.25, abs=0.05)
    assert zi_preds["llvm-mca"] == pytest.approx(1.0, abs=0.15)
    assert zi_preds["OSACA"] == pytest.approx(1.0, abs=0.15)

    crc_measured, crc_preds = case_rows["gzip CRC inner loop"]
    assert crc_measured == pytest.approx(8.25, abs=1.0)
    assert crc_preds["OSACA"] is None                 # parser crash
    assert crc_preds["llvm-mca"] > crc_preds["IACA"]

    from repro.models import IacaModel
    benchmark(IacaModel().predict_safe, div_block(), "haswell")
