"""Fig. 13 — basic-block composition of Spanner and Dremel
(frequency-weighted).

Paper: both spend almost half their time in load-dominated blocks
(category 6) — Spanner ~40%, Dremel ~50% — and have noticeably more
partially-vectorized blocks (category 1) than the open-source
general-purpose applications.
"""

from repro.classify import classify_blocks, category_shares_by_app
from repro.eval.reporting import grouped_bar_chart


def _weighted_shares(corpus, categories):
    shares = {c: 0.0 for c in range(1, 7)}
    for record, category in zip(corpus.records, categories):
        shares[category] += record.frequency
    total = sum(shares.values()) or 1.0
    return {c: v / total for c, v in shares.items()}


def test_fig13_google_composition(benchmark, experiment, report):
    corpora = experiment.google_corpora
    classifier = experiment.classification  # ONE classifier, as in §V
    shares = {}
    for app, corpus in corpora.items():
        categories = classifier.assign(corpus.blocks)
        shares[app] = _weighted_shares(corpus, categories)

    chart = {app: {f"cat-{c}": v for c, v in dist.items() if v > 0.01}
             for app, dist in shares.items()}
    report("fig13_google_blocks", grouped_bar_chart(
        chart, title="Fig. 13 — Spanner/Dremel block composition "
                     "(frequency weighted)", fmt="{:.2f}"))

    for app in ("spanner", "dremel"):
        # Load-dominated categories carry the biggest share.
        load_like = shares[app][6] + shares[app][3]
        assert load_like > 0.35, (app, shares[app])

    # More (partially) vectorized than OSS general-purpose apps —
    # checked on the frequency-weighted instruction mixes (the LDA
    # cluster shares carry a few percent of label noise on apps with
    # no vector code at all).
    from repro.models.residual import block_mix

    def weighted_vector_share(corpus):
        total = weight = 0.0
        for record in corpus:
            share = block_mix(record.block)["vector"]
            weight += record.frequency * share
            total += record.frequency
        return weight / total

    google_vec = (weighted_vector_share(corpora["spanner"])
                  + weighted_vector_share(corpora["dremel"])) / 2
    oss_vec = (weighted_vector_share(
        experiment.corpus.subset(["sqlite"]))
        + weighted_vector_share(
            experiment.corpus.subset(["redis"]))) / 2
    assert google_vec > oss_vec

    benchmark(classify_blocks, corpora["spanner"].blocks[:120],
              n_restarts=1)
