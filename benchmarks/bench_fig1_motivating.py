"""Fig. 1 — the motivating example: gzip's updcrc inner loop cannot be
executed directly, but the mapping technique profiles it without any
a-priori knowledge of the code.
"""

from repro.corpus import gzip_crc_block
from repro.profiler import (BasicBlockProfiler, FailureReason,
                            config_for_stage, AblationStage)
from repro.uarch import Machine


def test_fig1_motivating_example(benchmark, report):
    block = gzip_crc_block()

    agner_style = BasicBlockProfiler(
        Machine("haswell"), config_for_stage(AblationStage.NONE))
    direct = agner_style.profile(block)

    full = BasicBlockProfiler(Machine("haswell"))
    mapped = full.profile(block)

    lines = [
        "Fig. 1 — inner loop body of updcrc from Gzip:",
        "",
        block.text(),
        "",
        f"direct execution (no mapping): {direct.failure.value}",
        f"with page mapping: throughput = {mapped.throughput:.2f} "
        f"cycles/iter ({mapped.pages_mapped} pages mapped, "
        f"{mapped.num_faults} faults intercepted)",
        "(paper measures 8.25 on Haswell)",
    ]
    report("fig1_motivating", "\n".join(lines))

    assert direct.failure is FailureReason.SEGFAULT
    assert mapped.ok
    assert abs(mapped.throughput - 8.25) < 1.5

    benchmark(full.profile, block)
