"""Fig. 3 — one example basic block per LDA category."""

from repro.classify import CATEGORY_LABELS


def test_fig3_category_examples(benchmark, experiment, report):
    result = experiment.classification
    examples = result.example_blocks(experiment.corpus.blocks)

    sections = []
    for category in sorted(examples):
        block = examples[category]
        sections.append(
            f"Category-{category}: {CATEGORY_LABELS[category - 1]}\n"
            + "\n".join("    " + line
                        for line in block.text().splitlines()))
    report("fig3_examples", "Fig. 3 — example blocks per category\n\n"
           + "\n\n".join(sections))

    # Most categories should have a short representative example.
    assert len(examples) >= 4
    for category, block in examples.items():
        assert len(block) <= 8

    benchmark(result.example_blocks, experiment.corpus.blocks)
