"""Fig. 4 — breakdown of applications by basic-block categories
(frequency-weighted, as in the paper's caption).

Reproduced claims: TensorFlow/OpenBLAS spend most time in vectorized
categories; the majority of SQLite and LLVM blocks are not vectorized;
OpenSSL and Gzip are heavy on bit-manipulation (category 5 + scalar).
"""

from repro.classify import category_shares_by_app
from repro.eval.reporting import grouped_bar_chart


def test_fig4_apps_vs_clusters(benchmark, experiment, report):
    shares = category_shares_by_app(experiment.corpus,
                                    experiment.classification,
                                    weighted=True)
    chart = {
        app: {f"cat-{c}": share for c, share in dist.items()
              if share >= 0.01}
        for app, dist in shares.items()
    }
    report("fig4_apps_vs_clusters", grouped_bar_chart(
        chart, title="Fig. 4 — category share per application "
                     "(weighted by execution frequency)",
        fmt="{:.2f}"))

    vector = {app: dist[1] + dist[2] for app, dist in shares.items()}
    assert vector["openblas"] > 0.5
    assert vector["tensorflow"] > 0.4
    assert vector["embree"] > 0.4
    assert vector["sqlite"] < 0.25
    assert vector["llvm"] < 0.25
    # Bit-manipulation apps: scalar-ALU category prominent.
    assert shares["gzip"][5] + shares["gzip"][6] > 0.5
    assert shares["openssl"][5] + shares["openssl"][6] > 0.5

    benchmark(category_shares_by_app, experiment.corpus,
              experiment.classification)
