"""Figs. 5-7 — per-application error for each model on Ivy Bridge,
Haswell and Skylake (error weighted by sampling frequency).

Reproduced claims: IACA is consistently accurate on OpenSSL; the
learned model is competitive everywhere; OSACA trails on every
application.
"""

import pytest

from repro.eval.pipeline import UARCHES
from repro.eval.reporting import grouped_bar_chart

FIG_NAME = {"ivybridge": "fig5_ivb_app_error",
            "haswell": "fig6_hsw_app_error",
            "skylake": "fig7_skl_app_error"}


@pytest.mark.parametrize("uarch", UARCHES)
def test_per_application_error(benchmark, experiment, report, uarch):
    val = experiment.validation(uarch)
    per_app = {
        model: val.per_application_error(model, weighted=True)
        for model in val.model_names
    }
    apps = sorted({app for errs in per_app.values() for app in errs})
    chart = {app: {model: per_app[model].get(app)
                   for model in val.model_names} for app in apps}
    report(FIG_NAME[uarch], grouped_bar_chart(
        chart, title=f"Figs. 5-7 — per-application error on {uarch} "
                     f"(frequency weighted)"))

    # IACA's OpenSSL accuracy (bit-manipulation code suits it).
    iaca = per_app["IACA"]
    if iaca.get("openssl") is not None:
        others = [v for app, v in iaca.items()
                  if app != "openssl" and v is not None]
        assert iaca["openssl"] <= sorted(others)[len(others) // 2]

    # OSACA trails: its mean per-application error exceeds every other
    # model's (per-app winners wobble with the hot-block draw, so the
    # aggregate is the robust form of the figure's visual).
    def mean_err(model):
        values = [v for v in per_app[model].values() if v is not None]
        return sum(values) / len(values)

    for model in val.model_names:
        if model != "OSACA":
            assert mean_err("OSACA") > mean_err(model), (uarch, model)

    benchmark(val.per_application_error, "IACA")
