"""Figs. 8-10 — per-cluster (category) error for each model.

Reproduced claims: store-dominated blocks (category 4) are easier to
predict than blocks mixing loads with other operations; vectorized
blocks are hard — on Haswell numerical kernels every model averages
over 30% error (the paper's abstract headline).
"""

import pytest

from repro.eval.pipeline import UARCHES
from repro.eval.reporting import grouped_bar_chart

FIG_NAME = {"ivybridge": "fig8_ivb_cluster_error",
            "haswell": "fig9_hsw_cluster_error",
            "skylake": "fig10_skl_cluster_error"}


@pytest.mark.parametrize("uarch", UARCHES)
def test_per_cluster_error(benchmark, experiment, report, uarch):
    val = experiment.validation(uarch)
    per_cat = {model: val.per_category_error(model)
               for model in val.model_names}
    categories = sorted({c for errs in per_cat.values() for c in errs
                         if c is not None})
    chart = {f"Category-{c}": {m: per_cat[m].get(c)
                               for m in val.model_names}
             for c in categories}
    report(FIG_NAME[uarch], grouped_bar_chart(
        chart, title=f"Figs. 8-10 — per-category error on {uarch}"))

    benchmark(val.per_category_error, "IACA")


def test_headline_vectorized_claim(experiment, report):
    """Abstract: 'in certain classes of basic blocks (e.g. vectorized
    numerical kernels) even the most accurate model is on average more
    than 30% away from the ground truth' — checked against the
    measured instruction mix (robust to LDA label noise)."""
    from repro.eval.metrics import average_error
    from repro.models.residual import block_mix
    val = experiment.validation("haswell")
    blocks = {r.block_id: r.block for r in experiment.corpus}
    summary = {}
    for model in val.model_names:
        pairs = []
        for row in val.rows:
            predicted = row.predictions.get(model)
            if predicted is None:
                continue
            mix = block_mix(blocks[row.block_id])
            if mix["vector"] > 0.6 and len(blocks[row.block_id]) >= 4:
                pairs.append((predicted, row.measured))
        summary[model] = average_error(pairs)
    report("headline_vectorized_error", "\n".join(
        f"{model}: {err:.3f}" for model, err in summary.items()
        if err is not None))
    best = min(v for v in summary.values() if v is not None)
    assert best > 0.12  # every model struggles on vector kernels
