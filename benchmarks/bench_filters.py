"""§III-D counters — gradual underflow and misaligned-access filters.

Paper: 334 blocks (0.1%) would have been affected by gradual
underflow; 553 blocks (0.183%) were dropped by the
MISALIGNED_MEM_REFERENCE filter.
"""

import pytest

from repro.eval.reporting import format_table
from repro.profiler import (BasicBlockProfiler, FailureReason,
                            ProfilerConfig, EnvironmentConfig)
from repro.profiler.filters import AcceptancePolicy
from repro.uarch import Machine


@pytest.fixture(scope="module")
def filter_counts(experiment):
    corpus = experiment.corpus
    # Count would-be subnormal blocks by profiling with FTZ *off* and
    # watching for assist events, as the paper did before enabling it.
    no_ftz = ProfilerConfig(
        environment=EnvironmentConfig(ftz=False),
        acceptance=AcceptancePolicy(enforce_invariants=False,
                                    reject_misaligned=False))
    prof_no_ftz = BasicBlockProfiler(Machine("haswell"), no_ftz)
    prof_full = BasicBlockProfiler(Machine("haswell"))
    subnormal = 0
    misaligned = 0
    for record in corpus:
        relaxed_result = prof_no_ftz.profile(record.block)
        if relaxed_result.subnormal_events > 0:
            subnormal += 1
        full_result = prof_full.profile(record.block)
        if full_result.failure is FailureReason.MISALIGNED:
            misaligned += 1
    return subnormal, misaligned, len(corpus)


def test_filters(benchmark, filter_counts, report):
    subnormal, misaligned, total = filter_counts
    rows = [
        ("gradual underflow (would-be affected)",
         "334 (0.100%)", f"{subnormal} ({100 * subnormal / total:.3f}%)"),
        ("misaligned accesses (dropped)",
         "553 (0.183%)", f"{misaligned} "
                         f"({100 * misaligned / total:.3f}%)"),
    ]
    report("filters", format_table(
        ["Filter", "paper", "ours"], rows,
        title=f"§III-D filters ({total} blocks)"))

    # Both phenomena are rare but present, as in the paper.  Our
    # synthetic FP chains seeded from the tiny fill float (~4e-28)
    # wander into the subnormal range somewhat more often than the
    # paper's real-application data (see EXPERIMENTS.md).
    assert 0 < subnormal / total < 0.06
    assert 0 < misaligned / total < 0.02

    profiler = BasicBlockProfiler(Machine("haswell"))
    benchmark(profiler.profile, "movups 60(%rdi), %xmm0")
