"""Batch-lane vectorized profiling: speedup and bit-identity.

Profiles the golden corpus plus the lane fixture
(``tests/data/golden_lanes.json``: ten same-fingerprint families of
48 members) with lanes on and off, and enforces two claims:

* **Identity** — lanes are invisible in the output bytes: for every
  block, throughput, per-unroll cycle counts, miss counters, fault
  tallies and accept/fail status are identical to the ``--no-lanes``
  run.  This is asserted on every timed run, not sampled.
* **Speed** — on the frequency-replicated corpus, composed with the
  simulation-core fast path (both modes), lanes must win by at least
  ``SPEEDUP_FLOOR`` (5x).  One lane representative pays the full
  scalar profile; certified clones replay only noise resampling and
  acceptance, so the win grows with family width — ``REPRO_LANE_WIDTH``
  is pinned to the family size here.

Timing is best-of-``REPEATS`` per mode with fresh profilers per run
and the lane program cache cleared, so neither mode sees the other's
state.  Results land in ``reports/lanes.{txt,json}`` plus a repo-root
``BENCH_lanes.json`` for the dashboard and the CI perf gate.
"""

import json
import os
import time

from repro.eval.reporting import format_table
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.runtime import lanes
from repro.uarch.machine import Machine

from conftest import REPORT_DIR

DATA = os.path.join(os.path.dirname(__file__), "..", "tests", "data")
ROOT_JSON = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_lanes.json")

UARCH = os.environ.get("REPRO_BENCH_LANES_UARCH", "haswell")
BASE_FACTOR = 100  # two-factor plan: unroll 100 / 200
SPEEDUP_FLOOR = 5.0
REPEATS = int(os.environ.get("REPRO_BENCH_LANES_REPEATS", "2"))
#: Lane width for the timed runs — the fixture family size, so each
#: family forms one full-width lane (47 certified clones per rep).
LANE_WIDTH = int(os.environ.get("REPRO_LANE_WIDTH", "48"))


def _blocks():
    out = []
    for name in ("golden_corpus.json", "golden_lanes.json"):
        with open(os.path.join(DATA, name)) as fh:
            doc = json.load(fh)
        out.extend((b["text"], b["frequency"]) for b in doc["blocks"])
    return out


def _replicated(blocks):
    """Frequency-proportional replication, deterministically ordered.

    Target ~2 profiles per block on average: the lane families are
    uniform-frequency so each member appears about twice, while the
    application blocks keep their heavy-tailed sample counts — the
    workload shape corpus-level dedup exploits."""
    total = sum(freq for _, freq in blocks)
    target = 2 * len(blocks)
    out = []
    for text, freq in blocks:
        copies = max(1, round(freq / total * target))
        out.extend([text] * copies)
    return out


def _fingerprint(result):
    """Everything observable about one profile, as comparable bytes."""
    return (
        result.ok,
        None if result.failure is None else result.failure.value,
        result.throughput,
        tuple((m.unroll, m.cycles, m.clean_runs, m.total_runs,
               m.l1d_read_misses, m.l1d_write_misses, m.l1i_misses,
               m.misaligned_refs) for m in result.measurements),
        result.pages_mapped, result.num_faults,
        result.subnormal_events, result.detail,
    )


def _profile_run(texts, vectorized):
    """Profile ``texts`` with a fresh profiler; returns (secs, prints)."""
    lanes.clear_program_cache()
    with lanes.forced(vectorized), lanes.forced_width(LANE_WIDTH):
        profiler = BasicBlockProfiler(
            Machine(UARCH, seed=0),
            ProfilerConfig(base_factor=BASE_FACTOR))
        start = time.perf_counter()
        results = profiler.profile_many(texts)
        elapsed = time.perf_counter() - start
    return elapsed, [_fingerprint(r) for r in results]


def _best_of(texts, vectorized):
    best, prints = None, None
    for _ in range(REPEATS):
        elapsed, fps = _profile_run(texts, vectorized)
        if best is None or elapsed < best:
            best = elapsed
        prints = fps
    return best, prints


def test_lanes(report):
    blocks = _blocks()
    unique = [text for text, _ in blocks]
    replicated = _replicated(blocks)

    uniq_on, uniq_on_fp = _best_of(unique, vectorized=True)
    uniq_off, uniq_off_fp = _best_of(unique, vectorized=False)
    assert uniq_on_fp == uniq_off_fp, \
        "lanes diverged from the scalar path on the unique corpus"

    rep_on, rep_on_fp = _best_of(replicated, vectorized=True)
    rep_off, rep_off_fp = _best_of(replicated, vectorized=False)
    assert rep_on_fp == rep_off_fp, \
        "lanes diverged from the scalar path on the replicated run"

    uniq_speedup = uniq_off / uniq_on
    rep_speedup = rep_off / rep_on
    rows = [
        ("unique corpus", len(unique), round(uniq_off, 3),
         round(uniq_on, 3), f"{uniq_speedup:.2f}x", "recorded"),
        ("frequency-replicated", len(replicated), round(rep_off, 3),
         round(rep_on, 3), f"{rep_speedup:.2f}x",
         f">= {SPEEDUP_FLOOR}x enforced"),
    ]
    title = (f"{UARCH}, unroll {BASE_FACTOR}/{2 * BASE_FACTOR}, "
             f"lane width {LANE_WIDTH}, best of {REPEATS}; "
             f"outputs bit-identical in all runs")
    report("lanes", format_table(
        ["workload", "profiles", "scalar s", "lanes s", "speedup",
         "gate"], rows, title=title))

    doc = {"uarch": UARCH, "base_factor": BASE_FACTOR,
           "lane_width": LANE_WIDTH, "repeats": REPEATS,
           "floor": SPEEDUP_FLOOR, "identical_outputs": True,
           "unique": {"profiles": len(unique), "scalar_s": uniq_off,
                      "lanes_s": uniq_on, "speedup": uniq_speedup},
           "replicated": {"profiles": len(replicated),
                          "scalar_s": rep_off, "lanes_s": rep_on,
                          "speedup": rep_speedup}}
    for path in (os.path.join(REPORT_DIR, "lanes.json"), ROOT_JSON):
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")

    assert rep_speedup >= SPEEDUP_FLOOR, (
        f"lanes {rep_speedup:.2f}x < {SPEEDUP_FLOOR}x on the "
        f"frequency-replicated corpus — clone replay, grouping, or "
        f"the certificate runner regressed")
