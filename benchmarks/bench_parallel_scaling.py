"""Parallel profiling engine: scaling curve and equivalence check.

Profiles the same corpus serially and with a worker pool and reports
the speedup curve (``reports/parallel_scaling.{txt,json}``).  Two
claims are enforced:

* **Equivalence** — every jobs level produces byte-identical
  throughputs and funnel to the serial run, at any host core count.
* **Scaling** — with 4+ physical cores available, 4 workers must beat
  serial by at least 1.5x.  On smaller hosts (the pool cannot beat
  serial on a single core) the speedup is still measured and recorded,
  but the floor is not asserted.

Scale with ``REPRO_BENCH_PARALLEL_SCALE`` (default 0.001 ~ 360
blocks): larger corpora amortise pool startup and look better; the
default keeps the bench under a couple of minutes.
"""

import json
import os
import time

from repro.corpus import build_corpus
from repro.eval.reporting import format_table
from repro.parallel import profile_corpus_sharded

from conftest import REPORT_DIR

SCALE = float(os.environ.get("REPRO_BENCH_PARALLEL_SCALE", "0.001"))
SEED = 13
JOBS_LEVELS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5  # asserted for jobs=4 on hosts with >= 4 cores


def _timed_run(corpus, jobs):
    start = time.perf_counter()
    profile = profile_corpus_sharded(corpus, "haswell", seed=SEED,
                                     jobs=jobs)
    return time.perf_counter() - start, profile


def _payload(profile):
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel}, sort_keys=False)


def test_parallel_scaling(report):
    corpus = build_corpus(scale=SCALE, seed=SEED)
    cores = os.cpu_count() or 1

    runs = {}
    for jobs in JOBS_LEVELS:
        elapsed, profile = _timed_run(corpus, jobs)
        runs[jobs] = (elapsed, profile)

    serial_time, serial_profile = runs[1]
    rows = []
    speedups = {}
    for jobs in JOBS_LEVELS:
        elapsed, profile = runs[jobs]
        # Equivalence is unconditional: the pool must be a pure
        # performance knob, invisible in the output bytes.
        assert _payload(profile) == _payload(serial_profile), \
            f"jobs={jobs} diverged from the serial profile"
        speedups[jobs] = serial_time / elapsed
        rows.append((jobs, round(elapsed, 3),
                     round(len(corpus) / elapsed, 1),
                     f"{speedups[jobs]:.2f}x"))

    enforced = cores >= 4
    title = (f"{len(corpus)} blocks on haswell, host has {cores} "
             f"core(s); >= {SPEEDUP_FLOOR}x floor at 4 jobs "
             f"{'ENFORCED' if enforced else 'recorded only'}")
    report("parallel_scaling", format_table(
        ["jobs", "seconds", "blocks/s", "speedup"], rows, title=title))

    doc = {"scale": SCALE, "seed": SEED, "blocks": len(corpus),
           "host_cores": cores, "floor": SPEEDUP_FLOOR,
           "floor_enforced": enforced,
           "runs": {str(j): {"seconds": runs[j][0],
                             "speedup": speedups[j]}
                    for j in JOBS_LEVELS}}
    with open(os.path.join(REPORT_DIR, "parallel_scaling.json"),
              "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")

    if enforced:
        assert speedups[4] >= SPEEDUP_FLOOR, (
            f"jobs=4 speedup {speedups[4]:.2f}x < {SPEEDUP_FLOOR}x "
            f"on a {cores}-core host — pool overhead regression?")
