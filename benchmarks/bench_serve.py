"""Service under concurrent load: warm hit rate, tail latency, misses.

A real ``repro serve`` daemon on a Unix socket, a cold warm-up pass,
then a timed pass of concurrent clients replaying the same requests.
Three service-level promises are enforced on the measurements:

* **Warm hit rate** — replayed requests answer from the request
  journal memo: the cached fraction of the timed pass must clear
  ``HIT_FLOOR`` (0.9).  Cross-client dedup is the service's whole
  economic argument, so this is the headline efficiency check.
* **Tail latency** — client-observed p99 of the timed pass stays
  under ``P99_CEILING_MS`` (kept deliberately generous: CI boxes are
  noisy, and the floor-gated headline is throughput, not latency).
* **Deadline misses** — with the default 30 s deadline nothing should
  expire in-queue: the daemon's ``serve.deadline_miss`` counter and
  any 504/429/5xx response fail the bench.

The headline ``throughput_kblocks_per_s`` (blocks answered per wall
second, warm) lands in ``BENCH_serve.json`` with a conservative
``floor`` for ``repro bench check``; details in
``reports/serve.{txt,json}``.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.eval.reporting import format_table
from repro.serve.client import ServeClient

from conftest import REPORT_DIR

ROOT = os.path.join(os.path.dirname(__file__), "..")
ROOT_JSON = os.path.join(ROOT, "BENCH_serve.json")

UARCH = os.environ.get("REPRO_BENCH_SERVE_UARCH", "haswell")
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVE_ROUNDS", "12"))
REQUESTS = 16        # distinct requests in the working set
BLOCKS_PER_REQ = 8

HIT_FLOOR = 0.9
P99_CEILING_MS = 2000.0
FLOOR = 0.5          # kblocks/s the warm service must sustain


def _blocks(request_index: int):
    """8 distinct-but-cheap blocks per request, distinct per request."""
    base = request_index * BLOCKS_PER_REQ
    return [f"addq ${base + i}, %rax\n"
            f"imulq %rcx, %rdx\n"
            f"addq %rbx, %rcx" for i in range(BLOCKS_PER_REQ)]


def _percentile(values, q):
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _start_daemon(state_dir: str, socket_path: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path, "--state", state_dir,
         "--jobs", "2", "--coalesce-ms", "2"],
        env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    client = ServeClient(socket_path=socket_path, timeout=120.0)
    client.wait_ready(deadline_s=120.0)
    return proc, client


def test_serve_under_load(report):
    workdir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    proc, client = _start_daemon(
        os.path.join(workdir, "state"),
        os.path.join(workdir, "serve.sock"))
    try:
        # Cold pass: every distinct request computes once.
        for i in range(REQUESTS):
            response = client.profile(_blocks(i), uarch=UARCH)
            assert response.status == 200, response.body

        # Timed warm pass: CLIENTS threads replay the working set.
        latencies, bad = [], []
        lock = threading.Lock()

        def worker(worker_index: int):
            worker_client = ServeClient(
                socket_path=client.socket_path, timeout=120.0)
            for round_index in range(ROUNDS):
                i = (worker_index + round_index) % REQUESTS
                started = time.perf_counter()
                response = worker_client.profile(
                    _blocks(i), uarch=UARCH,
                    client=f"bench-{worker_index}")
                elapsed_ms = 1000.0 * (time.perf_counter() - started)
                with lock:
                    latencies.append(elapsed_ms)
                    if response.status != 200:
                        bad.append(response.status)
                    elif not response.body["cached"]:
                        bad.append("uncached")

        started = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - started

        stats = client.stats().body
    finally:
        try:
            os.killpg(proc.pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
        proc.wait(timeout=60)

    total = len(latencies)
    hits = total - sum(1 for b in bad if b == "uncached")
    hit_rate = hits / total
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    misses = stats["counters"].get("serve.deadline_miss", 0)
    throughput = total * BLOCKS_PER_REQ / wall_s / 1000.0

    rows = [
        ("clients", CLIENTS, ""),
        ("warm requests", total, ""),
        ("warm hit rate", round(hit_rate, 4), f">= {HIT_FLOOR}"),
        ("p50 ms", round(p50, 2), ""),
        ("p99 ms", round(p99, 2), f"<= {P99_CEILING_MS:g}"),
        ("deadline misses", misses, "== 0"),
        ("kblocks/s", round(throughput, 3), f">= {FLOOR} (floor)"),
    ]
    text = format_table(("metric", "value", "gate"), rows)
    report("serve", text)

    doc = {
        "uarch": UARCH,
        "clients": CLIENTS,
        "requests": total,
        "blocks_per_request": BLOCKS_PER_REQ,
        "hit_floor": HIT_FLOOR,
        "p99_ceiling_ms": P99_CEILING_MS,
        "floor": FLOOR,
        "serve": {
            "warm_hit_rate": round(hit_rate, 4),
            "p50_ms": round(p50, 3),
            "p99_ms": round(p99, 3),
            "deadline_misses": int(misses),
            "wall_s": round(wall_s, 3),
            "throughput_kblocks_per_s": round(throughput, 3),
        },
    }
    with open(os.path.join(REPORT_DIR, "serve.json"), "w") as fh:
        json.dump(doc, fh, indent=1)
    with open(ROOT_JSON, "w") as fh:
        json.dump(doc, fh, indent=1)

    failures = [b for b in bad if b != "uncached"]
    assert not failures, f"non-200 responses under load: {failures}"
    assert hit_rate >= HIT_FLOOR, \
        f"warm hit rate {hit_rate:.3f} below {HIT_FLOOR}"
    assert p99 <= P99_CEILING_MS, \
        f"p99 {p99:.1f} ms above {P99_CEILING_MS} ms"
    assert misses == 0, f"{misses} deadline misses with 30s deadlines"
    assert throughput >= FLOOR, \
        f"{throughput:.3f} kblocks/s below the {FLOOR} floor"
