"""Simulation-core fast path: speedup and bit-identity on the corpus.

Profiles the golden corpus (the 22-block fixture under ``tests/data``)
at the paper's unroll factors (100/200) with the fast path on and off,
and enforces two claims:

* **Identity** — the fast path is invisible in the output bytes: for
  every block, throughput, per-unroll cycle counts, miss counters and
  accept/fail status are identical to the ``--no-fastpath`` run.
* **Speed** — on the paper-shaped workload (blocks replicated by their
  sampled execution frequency, which is what corpus-level dedup
  exploits: BHive's 2M+ samples contain ~300k unique blocks) the fast
  path must win by at least ``SPEEDUP_FLOOR`` (3x).  The unique-corpus
  speedup (no dedup leverage, pure extrapolation + caching) is also
  measured and reported, but only the composed number is asserted.

Timing is best-of-``REPEATS`` per mode with fresh profilers per run,
so neither mode sees the other's caches.  Results land in
``reports/simcore_fastpath.{txt,json}`` plus a repo-root
``BENCH_simcore.json`` for the dashboard.

Note on the micro-optimisation satellites measured here implicitly:
the per-event trace records (``InstrEvent``, ``MemAccess``,
``InstrAnnotation``, ``UopRecord``) carry ``__slots__``, and the
executor's dispatch loop binds its hot lookups (handler plan, event
append) to locals — both land inside the "slow" baseline too, so the
speedups below are attributable to the fast path alone.
"""

import json
import os
import time

from repro.eval.reporting import format_table
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.simcore import config as simcore
from repro.uarch.machine import Machine

from conftest import REPORT_DIR

GOLDEN = os.path.join(os.path.dirname(__file__), "..", "tests", "data",
                      "golden_corpus.json")
ROOT_JSON = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_simcore.json")

UARCH = os.environ.get("REPRO_BENCH_FASTPATH_UARCH", "haswell")
BASE_FACTOR = 100  # two-factor plan: unroll 100 / 200
SPEEDUP_FLOOR = 3.0
REPEATS = int(os.environ.get("REPRO_BENCH_FASTPATH_REPEATS", "2"))
#: Replicated-corpus size (profiles per run).  Frequencies are scaled
#: down proportionally so the workload shape matches the paper's
#: heavy-tailed sample distribution without taking minutes.
REPLICA_TARGET = int(os.environ.get("REPRO_BENCH_FASTPATH_REPLICAS",
                                    "120"))


def _golden_blocks():
    # Application blocks only: the "lanes" families grafted onto the
    # fixture benchmark their own layer (bench_lanes.py); this bench
    # keeps measuring the fast path on the original workload.
    with open(GOLDEN) as fh:
        doc = json.load(fh)
    return [(b["text"], b["frequency"]) for b in doc["blocks"]
            if b["application"] != "lanes"]


def _replicated(blocks):
    """Frequency-proportional replication, deterministically ordered."""
    total = sum(freq for _, freq in blocks)
    out = []
    for text, freq in blocks:
        copies = max(1, round(freq / total * REPLICA_TARGET))
        out.extend([text] * copies)
    return out


def _fingerprint(result):
    """Everything observable about one profile, as comparable bytes."""
    return (
        result.ok,
        None if result.failure is None else result.failure.value,
        result.throughput,
        tuple((m.unroll, m.cycles, m.clean_runs, m.total_runs,
               m.l1d_read_misses, m.l1d_write_misses, m.l1i_misses,
               m.misaligned_refs) for m in result.measurements),
    )


def _profile_run(texts, fast):
    """Profile ``texts`` with a fresh profiler; returns (secs, prints)."""
    with simcore.forced(fast):
        profiler = BasicBlockProfiler(
            Machine(UARCH, seed=0),
            ProfilerConfig(base_factor=BASE_FACTOR))
        start = time.perf_counter()
        results = [profiler.profile(text) for text in texts]
        elapsed = time.perf_counter() - start
    return elapsed, [_fingerprint(r) for r in results]


def _best_of(texts, fast):
    best, prints = None, None
    for _ in range(REPEATS):
        elapsed, fps = _profile_run(texts, fast)
        if best is None or elapsed < best:
            best = elapsed
        prints = fps
    return best, prints


def test_simcore_fastpath(report):
    blocks = _golden_blocks()
    unique = [text for text, _ in blocks]
    replicated = _replicated(blocks)

    uniq_fast, uniq_fast_fp = _best_of(unique, fast=True)
    uniq_slow, uniq_slow_fp = _best_of(unique, fast=False)
    assert uniq_fast_fp == uniq_slow_fp, \
        "fast path diverged from full simulation on the unique corpus"

    rep_fast, rep_fast_fp = _best_of(replicated, fast=True)
    rep_slow, rep_slow_fp = _best_of(replicated, fast=False)
    assert rep_fast_fp == rep_slow_fp, \
        "fast path diverged from full simulation on the replicated run"

    uniq_speedup = uniq_slow / uniq_fast
    rep_speedup = rep_slow / rep_fast
    rows = [
        ("unique corpus", len(unique), round(uniq_slow, 3),
         round(uniq_fast, 3), f"{uniq_speedup:.2f}x", "recorded"),
        ("frequency-replicated", len(replicated), round(rep_slow, 3),
         round(rep_fast, 3), f"{rep_speedup:.2f}x",
         f">= {SPEEDUP_FLOOR}x enforced"),
    ]
    title = (f"{UARCH}, unroll {BASE_FACTOR}/{2 * BASE_FACTOR}, "
             f"best of {REPEATS}; outputs bit-identical in all runs")
    report("simcore_fastpath", format_table(
        ["workload", "profiles", "slow s", "fast s", "speedup",
         "gate"], rows, title=title))

    doc = {"uarch": UARCH, "base_factor": BASE_FACTOR,
           "repeats": REPEATS, "floor": SPEEDUP_FLOOR,
           "identical_outputs": True,
           "unique": {"profiles": len(unique), "slow_s": uniq_slow,
                      "fast_s": uniq_fast, "speedup": uniq_speedup},
           "replicated": {"profiles": len(replicated),
                          "slow_s": rep_slow, "fast_s": rep_fast,
                          "speedup": rep_speedup}}
    for path in (os.path.join(REPORT_DIR, "simcore_fastpath.json"),
                 ROOT_JSON):
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")

    assert rep_speedup >= SPEEDUP_FLOOR, (
        f"fast path {rep_speedup:.2f}x < {SPEEDUP_FLOOR}x on the "
        f"frequency-replicated corpus — extrapolation, caching, or "
        f"dedup regressed")
