"""Profiling speed vs IACA (§I contribution 2).

The paper claims the profiler "outperforms IACA in both speed and
accuracy" for users who only need a block's throughput.  This bench
times both paths on the same blocks — our measurement harness against
the IACA-style analyser — and checks both halves of the claim on the
measured corpus.
"""

import time

from repro.eval.metrics import average_error
from repro.eval.reporting import format_table
from repro.models import IacaModel
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine


def test_speed_and_accuracy_vs_iaca(benchmark, experiment, report):
    measured = experiment.measured("haswell")
    records = [r for r in experiment.corpus
               if r.block_id in measured][:120]
    blocks = [r.block for r in records]

    profiler = BasicBlockProfiler(Machine("haswell"))
    iaca = IacaModel()
    iaca.predict_safe(blocks[0], "haswell")  # warm table construction

    t0 = time.perf_counter()
    for block in blocks:
        profiler.profile(block)
    profiler_rate = len(blocks) / (time.perf_counter() - t0)

    t0 = time.perf_counter()
    predictions = [iaca.predict_safe(b, "haswell") for b in blocks]
    iaca_rate = len(blocks) / (time.perf_counter() - t0)

    iaca_error = average_error(
        (p.throughput, measured[r.block_id])
        for r, p in zip(records, predictions) if p.ok)

    rows = [
        ("measurement harness", f"{profiler_rate:.1f}", "0 (ground truth)"),
        ("IACA-style analyser", f"{iaca_rate:.1f}",
         f"{iaca_error:.3f}"),
    ]
    report("speed_vs_iaca", format_table(
        ["tool", "blocks/second", "avg error vs measured"], rows,
        title="Profiler vs IACA: speed and accuracy "
              "(both on the simulated Haswell)"))

    # Accuracy half of the claim always holds (we measure the ground
    # truth); the speed half is checked loosely — both tools run the
    # same simulator here, so parity is the expectation, not the 10x
    # of real IACA's analysis overhead.
    assert iaca_error > 0.0
    assert profiler_rate > iaca_rate * 0.2

    benchmark(profiler.profile, blocks[0])
