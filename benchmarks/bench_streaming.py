"""Streamed pipeline: constant peak RSS, batch-speed, batch bytes.

The streamed engine's contract has three legs and this bench enforces
all of them on real subprocess measurements (``ru_maxrss`` is a
whole-process high-water mark that never goes down, so every
configuration gets its own interpreter):

* **Memory** — streamed peak RSS stays flat (within ``RSS_RATIO``,
  1.2x) while the corpus grows ``GROWTH``x (10x).  The batch engine's
  RSS at both scales is reported alongside for context.
* **Speed** — streamed wall time at the base scale is within
  ``SPEEDUP_FLOOR`` (0.9x) of batch: the bounded prefetch window and
  the epoch resets may not cost meaningful throughput.  The headline
  ``speedup`` leaf (batch seconds / streamed seconds) feeds the CI
  perf gate (``repro bench check``).
* **Identity** — the streamed run's merged profile serialises to the
  batch run's exact bytes, at both scales (CRC-compared across the
  subprocess boundary).

Results land in ``reports/streaming.{txt,json}`` plus a repo-root
``BENCH_streaming.json`` for the dashboard and the perf gate.
"""

import json
import os
import subprocess
import sys
import time

from repro.eval.reporting import format_table

from conftest import REPORT_DIR

ROOT = os.path.join(os.path.dirname(__file__), "..")
ROOT_JSON = os.path.join(ROOT, "BENCH_streaming.json")

UARCH = os.environ.get("REPRO_BENCH_STREAM_UARCH", "haswell")
SCALE = float(os.environ.get("REPRO_BENCH_STREAM_SCALE", "0.001"))
GROWTH = 10
RSS_RATIO = 1.2
SPEEDUP_FLOOR = 0.9
REPEATS = int(os.environ.get("REPRO_BENCH_STREAM_REPEATS", "2"))

#: One measured configuration per interpreter: profile the corpus
#: (batch or streamed), print blocks / wall seconds / peak RSS / the
#: CRC of the canonical profile bytes as JSON on stdout.
_DRIVER = r"""
import json, resource, sys, time, zlib
mode, uarch, scale, seed = (sys.argv[1], sys.argv[2],
                            float(sys.argv[3]), int(sys.argv[4]))
from repro.corpus.dataset import build_corpus
from repro.corpus.streaming import iter_corpus
from repro.parallel import (profile_corpus_sharded,
                            profile_corpus_streamed)
start = time.perf_counter()
if mode == "batch":
    corpus = build_corpus(scale=scale, seed=seed)
    profile = profile_corpus_sharded(corpus, uarch, seed=seed,
                                     jobs=1, stream=False)
else:
    profile = profile_corpus_streamed(
        iter_corpus(scale=scale, seed=seed), uarch, seed=seed, jobs=1)
elapsed = time.perf_counter() - start
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak //= 1024
payload = json.dumps({"throughputs": profile.throughputs,
                      "funnel": profile.funnel})
print(json.dumps({"blocks": profile.funnel["total"],
                  "seconds": elapsed, "peak_rss_kb": int(peak),
                  "crc": zlib.crc32(payload.encode())}))
"""


def _measure(mode: str, scale: float, seed: int = 0) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    env.pop("REPRO_STREAM", None)
    out = subprocess.run(
        [sys.executable, "-c", _DRIVER, mode, UARCH, repr(scale),
         str(seed)],
        env=env, capture_output=True, text=True, timeout=600)
    assert out.returncode == 0, out.stderr[-2000:]
    return json.loads(out.stdout.strip().splitlines()[-1])


def _best_of(mode: str, scale: float) -> dict:
    runs = [_measure(mode, scale) for _ in range(REPEATS)]
    best = min(runs, key=lambda r: r["seconds"])
    assert len({r["crc"] for r in runs}) == 1, \
        f"{mode} runs disagree with themselves"
    return best


def test_streaming(report):
    big = SCALE * GROWTH
    batch_small = _best_of("batch", SCALE)
    stream_small = _best_of("stream", SCALE)
    stream_big = _measure("stream", big)
    batch_big = _measure("batch", big)

    # Identity across the subprocess boundary, both scales.
    assert stream_small["crc"] == batch_small["crc"], \
        "streamed bytes diverged from batch at the base scale"
    assert stream_big["crc"] == batch_big["crc"], \
        "streamed bytes diverged from batch at the grown scale"

    rss_ratio = stream_big["peak_rss_kb"] / stream_small["peak_rss_kb"]
    speedup = batch_small["seconds"] / stream_small["seconds"]

    def row(name, m, gate="-"):
        return (name, m["blocks"], round(m["seconds"], 3),
                round(m["peak_rss_kb"] / 1024, 1), gate)

    rows = [
        row(f"batch {SCALE:g}", batch_small, "baseline"),
        row(f"stream {SCALE:g}", stream_small,
            f"{speedup:.2f}x (>= {SPEEDUP_FLOOR}x)"),
        row(f"batch {big:g}", batch_big, "context"),
        row(f"stream {big:g}", stream_big,
            f"rss {rss_ratio:.2f}x (<= {RSS_RATIO}x)"),
    ]
    title = (f"{UARCH}, serial, best of {REPEATS} at scale {SCALE:g}; "
             f"corpus grows {GROWTH}x, streamed peak RSS "
             f"{rss_ratio:.2f}x; bytes identical at both scales")
    report("streaming", format_table(
        ["run", "blocks", "seconds", "peak rss MiB", "gate"], rows,
        title=title))

    doc = {"uarch": UARCH, "scale": SCALE, "growth": GROWTH,
           "repeats": REPEATS, "identical_outputs": True,
           "rss_ratio": rss_ratio, "rss_ratio_bound": RSS_RATIO,
           "floor": SPEEDUP_FLOOR,
           "stream": {"blocks": stream_small["blocks"],
                      "batch_s": batch_small["seconds"],
                      "stream_s": stream_small["seconds"],
                      "speedup": speedup,
                      "peak_rss_kb": stream_small["peak_rss_kb"],
                      "grown_blocks": stream_big["blocks"],
                      "grown_peak_rss_kb": stream_big["peak_rss_kb"],
                      "grown_batch_peak_rss_kb":
                          batch_big["peak_rss_kb"]}}
    for path in (os.path.join(REPORT_DIR, "streaming.json"),
                 ROOT_JSON):
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")

    assert rss_ratio <= RSS_RATIO, (
        f"streamed peak RSS grew {rss_ratio:.2f}x on a {GROWTH}x "
        f"corpus — the constant-memory contract regressed "
        f"(epoch resets or the prefetch bound broke)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"streamed throughput {speedup:.2f}x of batch "
        f"< {SPEEDUP_FLOOR}x — the streamed pipeline got slow")
