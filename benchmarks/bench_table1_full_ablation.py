"""Table I — percentage of basic blocks successfully profiled as the
measurement techniques are applied incrementally.

Paper: None 16.65% → Mapping all accessed pages 91.28% → More
intelligent unrolling 94.24%.
"""

import pytest

from repro.eval.reporting import format_table
from repro.profiler import (BasicBlockProfiler, TABLE1_LABELS,
                            TABLE1_STAGES, config_for_stage)
from repro.uarch import Machine

PAPER = {"None": 16.65, "Mapping all accessed pages": 91.28,
         "More intelligent unrolling": 94.24}


@pytest.fixture(scope="module")
def profiled_rates(experiment):
    corpus = experiment.corpus
    rates = {}
    for stage in TABLE1_STAGES:
        profiler = BasicBlockProfiler(
            Machine("haswell", seed=experiment.seed),
            config_for_stage(stage))
        ok = sum(1 for record in corpus
                 if profiler.profile(record.block).ok)
        rates[TABLE1_LABELS[stage]] = 100.0 * ok / len(corpus)
    return rates


def test_table1_full_ablation(benchmark, experiment, profiled_rates,
                              report):
    rows = [(label, f"{PAPER[label]:.2f}%", f"{ours:.2f}%")
            for label, ours in profiled_rates.items()]
    report("table1_full_ablation", format_table(
        ["(Additional) Technique", "paper", "ours"], rows,
        title=f"Table I — % of blocks profiled "
              f"({len(experiment.corpus)} blocks, scale "
              f"{experiment.scale})"))

    ordered = list(profiled_rates.values())
    assert ordered[0] < ordered[1] <= ordered[2]
    assert ordered[0] < 30.0
    assert ordered[1] > 85.0
    assert ordered[2] > 90.0

    # Benchmark the unit of work behind the table: one full-technique
    # profile of a memory-accessing block.
    profiler = BasicBlockProfiler(Machine("haswell"))
    block = experiment.corpus.records[1].block
    benchmark(profiler.profile, block)
