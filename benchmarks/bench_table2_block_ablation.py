"""Table II — measured throughput of one large TensorFlow CNN
inner-loop block as measurement optimisations are applied.

Paper: crash → 6377.0 (956 D-miss) → 2273.7 → 65.0 (35 I-miss) → 59.0.
The magnitudes depend on the silicon (and, for the page-mapping row,
on memory-system effects beyond our L1 model — see EXPERIMENTS.md);
the reproduced *shape* is: crash, then monotone recovery, with the
counters flagging exactly the violated invariant at each stage.
"""

from repro.corpus import tensorflow_ablation_block
from repro.eval.reporting import format_table
from repro.profiler import (BasicBlockProfiler, STAGES, STAGE_LABELS,
                            config_for_stage, relaxed)
from repro.uarch import Machine

PAPER_ROWS = {
    "None": ("Crashed", "N/A", "N/A"),
    "Page mapping": ("6377.0", "956", "0"),
    "Single physical page": ("2273.7", "0", "0"),
    "Disabling gradual underflow": ("65.0", "0", "35"),
    "Using smaller unroll factor": ("59.0", "0", "0"),
}


def test_table2_block_ablation(benchmark, report):
    block = tensorflow_ablation_block()
    rows = []
    measured = {}
    for stage in STAGES:
        profiler = BasicBlockProfiler(
            Machine("haswell"), relaxed(config_for_stage(stage)))
        result = profiler.profile(block)
        label = STAGE_LABELS[stage]
        paper = PAPER_ROWS[label]
        if result.ok:
            m = result.measurements[0]
            measured[label] = result.throughput
            rows.append((label, paper[0], f"{result.throughput:.1f}",
                         paper[1], m.l1d_read_misses + m.l1d_write_misses,
                         paper[2], m.l1i_misses))
        else:
            measured[label] = None
            rows.append((label, paper[0], result.failure.value,
                         paper[1], "-", paper[2], "-"))
    report("table2_block_ablation", format_table(
        ["(Additional) Optimizations", "tput(paper)", "tput(ours)",
         "D-miss(paper)", "D-miss(ours)", "I-miss(paper)",
         "I-miss(ours)"],
        rows, title="Table II — per-block measurement ablation "
                    "(TensorFlow CNN inner loop)"))

    assert measured["None"] is None  # crashed
    ok_rows = [v for v in measured.values() if v is not None]
    assert ok_rows == sorted(ok_rows, reverse=True)  # monotone recovery
    # FTZ is the order-of-magnitude step, as in the paper.
    assert measured["Single physical page"] \
        > 5 * measured["Disabling gradual underflow"]

    profiler = BasicBlockProfiler(Machine("haswell"))
    benchmark(profiler.profile, block)
