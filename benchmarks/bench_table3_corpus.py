"""Table III — source applications of basic blocks.

Paper: nine applications, 358,561 blocks.  We synthesise the same
proportions at the configured scale.
"""

from repro.corpus import TABLE3_APPS, build_application, get_spec
from repro.eval.reporting import format_table

PAPER_TOTAL = 358561


def test_table3_corpus_composition(benchmark, experiment, report):
    corpus = experiment.corpus
    counts = corpus.counts()
    rows = []
    total_ours = 0
    for app in TABLE3_APPS:
        spec = get_spec(app)
        rows.append((app, spec.domain, spec.paper_blocks, counts[app]))
        total_ours += counts[app]
    rows.append(("Total", "", PAPER_TOTAL, total_ours))
    report("table3_corpus", format_table(
        ["Application", "Domain", "# blocks (paper)", "# blocks (ours)"],
        rows, title=f"Table III — source applications "
                    f"(scale {experiment.scale})"))

    # Proportions must match the paper's.
    for app in TABLE3_APPS:
        expected = get_spec(app).paper_blocks / PAPER_TOTAL
        ours = counts[app] / total_ours
        assert abs(expected - ours) < 0.02, app

    # Benchmark corpus synthesis throughput (blocks/second).
    benchmark(build_application, "gzip", count=40, seed=1)
