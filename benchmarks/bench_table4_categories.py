"""Table IV — LDA basic-block categories and their sizes.

Paper (of 330,016 classified blocks): cat-1 7,710 / cat-2 1,267 /
cat-3 58,540 / cat-4 55,879 / cat-5 85,208 / cat-6 121,412.
The reproduced invariants: six categories with the same semantics,
loads the largest, the purely/partially-vector categories the small
ones.
"""

from repro.classify import CATEGORY_LABELS, classify_blocks
from repro.eval.reporting import format_table

PAPER_COUNTS = {1: 7710, 2: 1267, 3: 58540, 4: 55879, 5: 85208,
                6: 121412}
PAPER_TOTAL = sum(PAPER_COUNTS.values())


def test_table4_categories(benchmark, experiment, report):
    result = experiment.classification
    counts = result.counts()
    n = len(experiment.corpus)
    rows = []
    for c in range(1, 7):
        rows.append((f"Category-{c}", CATEGORY_LABELS[c - 1],
                     f"{PAPER_COUNTS[c]} "
                     f"({100 * PAPER_COUNTS[c] / PAPER_TOTAL:.1f}%)",
                     f"{counts[c]} ({100 * counts[c] / n:.1f}%)"))
    report("table4_categories", format_table(
        ["Category", "Description", "paper", "ours"],
        rows, title="Table IV — basic block categories (LDA, 6 topics, "
                    "alpha=1/6, beta=1/13)"))

    assert sum(counts.values()) == n
    # Loads dominate; vector categories are the smallest group.
    assert counts[6] == max(counts.values())
    assert counts[1] + counts[2] < counts[5] + counts[6]

    # Benchmark the classification pipeline on a small slice.
    blocks = experiment.corpus.blocks[:150]
    benchmark(classify_blocks, blocks, n_restarts=1)
