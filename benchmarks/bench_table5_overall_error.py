"""Table V — overall error of the evaluated models per uarch.

Paper:
  Ivy Bridge: IACA .1693, llvm-mca .1885, Ithemal .1180, OSACA .3277
  Haswell:    IACA .1798, llvm-mca .1832, Ithemal .1253, OSACA .3916
  Skylake:    IACA .1578, llvm-mca .2278, Ithemal .1191, OSACA .3768
"""

import pytest

from repro.eval.pipeline import UARCHES
from repro.eval.reporting import format_table

PAPER = {
    "ivybridge": {"IACA": 0.1693, "llvm-mca": 0.1885,
                  "Ithemal": 0.1180, "OSACA": 0.3277},
    "haswell": {"IACA": 0.1798, "llvm-mca": 0.1832,
                "Ithemal": 0.1253, "OSACA": 0.3916},
    "skylake": {"IACA": 0.1578, "llvm-mca": 0.2278,
                "Ithemal": 0.1191, "OSACA": 0.3768},
}


@pytest.fixture(scope="module")
def validations(experiment):
    return experiment.validations(UARCHES)


def test_table5_overall_error(benchmark, experiment, validations,
                              report):
    rows = []
    ours = {}
    for uarch in UARCHES:
        val = validations[uarch]
        for model in val.model_names:
            error = val.overall_error(model)
            ours[(uarch, model)] = error
            rows.append((uarch, model, PAPER[uarch][model],
                         round(error, 4)))
    report("table5_overall_error", format_table(
        ["Microarchitecture", "Model", "paper", "ours"], rows,
        title="Table V — overall (unweighted) average error"))

    for uarch in UARCHES:
        val = validations[uarch]
        # Paper ordering: Ithemal best, OSACA worst, on every uarch.
        assert ours[(uarch, "Ithemal")] < ours[(uarch, "IACA")]
        assert ours[(uarch, "OSACA")] > max(
            ours[(uarch, "IACA")], ours[(uarch, "llvm-mca")])
        # Within striking distance of the paper's absolute numbers.
        for model in val.model_names:
            assert abs(ours[(uarch, model)] - PAPER[uarch][model]) \
                < 0.08, (uarch, model)
    # llvm-mca's Skylake regression.
    assert ours[("skylake", "llvm-mca")] > \
        ours[("haswell", "llvm-mca")]

    benchmark(validations["haswell"].overall_error, "IACA")


def test_table5_kendall_tau_sanity(validations):
    """Not in Table V, but models must all rank blocks far better
    than chance (the property Table VI quantifies)."""
    for uarch in UARCHES:
        val = validations[uarch]
        for model in val.model_names:
            assert val.kendall_tau(model) > 0.4, (uarch, model)
