"""Table VI — accuracy on Spanner and Dremel (production case study).

Paper (Haswell, 100k most frequently executed blocks, OSACA excluded):

  Spanner: IACA .1892/.1659/.7786, llvm-mca .1764/.1519/.7623,
           Ithemal .1629/.1414/.7799
  Dremel:  IACA .1883/.1846/.7835, llvm-mca .1777/.1831/.7685,
           Ithemal .1640/.1871/.7862

(columns: average error / weighted error / Kendall's tau.)
"""

import pytest

from repro.corpus import GOOGLE_APPS
from repro.eval.reporting import format_table

PAPER = {
    ("spanner", "IACA"): (0.1892, 0.1659, 0.7786),
    ("spanner", "llvm-mca"): (0.1764, 0.1519, 0.7623),
    ("spanner", "Ithemal"): (0.1629, 0.1414, 0.7799),
    ("dremel", "IACA"): (0.1883, 0.1846, 0.7835),
    ("dremel", "llvm-mca"): (0.1777, 0.1831, 0.7685),
    ("dremel", "Ithemal"): (0.1640, 0.1871, 0.7862),
}


@pytest.fixture(scope="module")
def google_results(experiment):
    return {app: experiment.google_validation(app)
            for app in GOOGLE_APPS}


def test_table6_google_accuracy(benchmark, google_results, report):
    rows = []
    ours = {}
    for app in GOOGLE_APPS:
        val = google_results[app]
        for model in val.model_names:
            avg = val.overall_error(model)
            weighted = val.weighted_overall_error(model)
            tau = val.kendall_tau(model)
            ours[(app, model)] = (avg, weighted, tau)
            paper = PAPER[(app, model)]
            rows.append((app, model,
                         paper[0], round(avg, 4),
                         paper[1], round(weighted, 4),
                         paper[2], round(tau, 4)))
    report("table6_google", format_table(
        ["App", "Model", "avg(paper)", "avg(ours)", "wt(paper)",
         "wt(ours)", "tau(paper)", "tau(ours)"], rows,
        title="Table VI — Spanner/Dremel accuracy (Haswell)"))

    for app in GOOGLE_APPS:
        val = google_results[app]
        assert "OSACA" not in val.model_names  # excluded, as in §V
        # Paper: Ithemal has the best average error and tau on both.
        assert ours[(app, "Ithemal")][0] < ours[(app, "IACA")][0]
        for model in val.model_names:
            assert ours[(app, model)][0] < 0.35
            assert ours[(app, model)][2] > 0.5

    benchmark(google_results["spanner"].weighted_overall_error,
              "IACA")
