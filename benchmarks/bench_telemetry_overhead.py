"""Telemetry overhead budget: off vs metrics vs NDJSON export.

The observability layer promises to be free when nobody asks for it:
with telemetry disabled every instrumentation point is a guarded no-op,
and the profiler must stay within a 5 % throughput budget of
uninstrumented code.  This bench measures

* profiler throughput with telemetry **off**, **metrics-only**, and
  **exporting** NDJSON to disk,
* the raw per-call cost of the disabled-path primitives
  (``count`` / ``observe`` / ``span``), and
* the *estimated* disabled-mode overhead per block — guard cost times
  guard calls per block, as a fraction of the block's profiling time —
  which is the number the 5 % budget constrains.

Future PRs that add instrumentation points should watch
``reports/telemetry_overhead.txt`` for creep.
"""

import time

from repro import telemetry
from repro.corpus import build_corpus
from repro.eval.reporting import format_table
from repro.profiler import BasicBlockProfiler
from repro.telemetry import MetricsRegistry
from repro.uarch import Machine

#: Upper bound on instrumentation calls one ``profile()`` makes on the
#: disabled path (harness guard + per-run machine guards + executor
#: guards); generous so the estimate is conservative.
GUARD_CALLS_PER_BLOCK = 16

BEST_OF = 3


def _profile_pass(blocks) -> float:
    """Seconds to profile the whole corpus on a fresh machine."""
    profiler = BasicBlockProfiler(Machine("haswell"))
    start = time.perf_counter()
    profiler.profile_many(blocks)
    return time.perf_counter() - start


def _best(blocks) -> float:
    return min(_profile_pass(blocks) for _ in range(BEST_OF))


def _noop_cost_ns(calls: int = 50_000) -> float:
    """Per-call cost of a disabled instrumentation point."""
    assert not telemetry.is_enabled()
    start = time.perf_counter()
    for _ in range(calls):
        telemetry.count("bench.noop")
        telemetry.observe("bench.noop", 1.0)
    return (time.perf_counter() - start) / (2 * calls) * 1e9


def test_telemetry_overhead(report, tmp_path):
    blocks = [record.block for record in
              build_corpus(scale=0.0001, seed=3)]
    _profile_pass(blocks)  # warm parser/decomposer caches

    # The bench session enables telemetry globally (conftest); park
    # that state so the "off" mode is genuinely off, and restore the
    # session registry afterwards so its report stays intact.
    hub = telemetry.get_telemetry()
    saved_enabled, saved_registry = hub.enabled, hub.registry
    hub.disable()
    hub.registry = MetricsRegistry()
    try:
        off = _best(blocks)
        noop_ns = _noop_cost_ns()

        telemetry.enable()
        metrics_on = _best(blocks)
        telemetry.disable()

        hub.registry = MetricsRegistry()
        trace_path = str(tmp_path / "overhead_trace.ndjson")
        telemetry.enable(trace_path)
        exporting = _best(blocks)
        telemetry.disable()
        events = len(telemetry.read_ndjson(trace_path))
    finally:
        hub.registry = saved_registry
        hub.enabled = saved_enabled

    per_block_ms = off / len(blocks) * 1e3
    # Disabled-path cost the instrumentation adds to one block.
    disabled_overhead = (noop_ns * GUARD_CALLS_PER_BLOCK) \
        / (per_block_ms * 1e6)
    rows = [
        ("off", round(off, 3), round(len(blocks) / off, 1), "baseline"),
        ("metrics", round(metrics_on, 3),
         round(len(blocks) / metrics_on, 1),
         f"{metrics_on / off - 1:+.1%}"),
        ("exporting", round(exporting, 3),
         round(len(blocks) / exporting, 1),
         f"{exporting / off - 1:+.1%} ({events} events)"),
    ]
    report("telemetry_overhead", format_table(
        ["mode", "seconds", "blocks/s", "vs off"], rows,
        title=f"profiler throughput, {len(blocks)} blocks "
              f"(best of {BEST_OF}); disabled guard "
              f"{noop_ns:.0f} ns/call -> estimated "
              f"{disabled_overhead:.3%} per block"))

    # The budget: disabled instrumentation costs <5% of a block's
    # profiling time (guards are ~100ns, blocks are ~milliseconds).
    assert disabled_overhead < 0.05, \
        f"disabled telemetry overhead {disabled_overhead:.1%} >= 5%"
    # Sanity rather than precision (timing is noisy in CI): even the
    # heaviest mode must stay in the same ballpark as off.
    assert exporting < off * 1.5
    assert events > 0
