"""Learned triage: warm-cache re-profile speedup and bit-identity.

Profiles the golden regression corpus end to end three ways — triage
off, triage on against an empty store (the *cold* run, which journals
every accepted measurement and trains the surrogate), and triage on
again (the *warm* run, where surrogate-confirmed blocks replay their
journaled bytes instead of re-simulating) — and enforces the triage
contract:

* **Identity** — throughputs and the accept/drop funnel are
  byte-identical across all three runs.  Asserted on every timed run.
* **Routing budget** — on the warm run at most ``FALLTHROUGH_BUDGET``
  of the corpus may fall through to full simulation.  The golden
  corpus drops 2 of 46 blocks (never journaled, so never
  revalidatable); every accepted block must revalidate, keeping the
  fall-through at ~4.3%.
* **Speed** — the warm run must beat the triage-off run by at least
  ``SPEEDUP_FLOOR`` (3x) end to end, including store load, surrogate
  evaluation and the revalidation bookkeeping.

The store lives in a throwaway directory, so repeats are
self-contained.  Results land in ``reports/triage.{txt,json}`` plus a
repo-root ``BENCH_triage.json`` for the dashboard and the CI perf
gate (``repro bench check``).
"""

import json
import os
import shutil
import tempfile
import time

from repro.corpus.dataset import BlockRecord, Corpus
from repro.eval.reporting import format_table
from repro.eval.validation import profile_corpus_detailed
from repro.isa.parser import parse_block
from repro.triage import config, stage

from conftest import REPORT_DIR

DATA = os.path.join(os.path.dirname(__file__), "..", "tests", "data")
ROOT_JSON = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_triage.json")

UARCH = os.environ.get("REPRO_BENCH_TRIAGE_UARCH", "haswell")
SPEEDUP_FLOOR = 3.0
FALLTHROUGH_BUDGET = 0.05
REPEATS = int(os.environ.get("REPRO_BENCH_TRIAGE_REPEATS", "3"))


def _golden_corpus():
    with open(os.path.join(DATA, "golden_corpus.json")) as fh:
        doc = json.load(fh)
    records = [BlockRecord(block=parse_block(b["text"]),
                           application=b["application"],
                           frequency=b["frequency"],
                           block_id=b["block_id"])
               for b in doc["blocks"]]
    return doc["seed"], Corpus(records)


def _payload(profile) -> str:
    return json.dumps({"throughputs": profile.throughputs,
                       "funnel": profile.funnel})


def _timed(corpus, seed, triage_on):
    start = time.perf_counter()
    with config.forced(triage_on):
        profile = profile_corpus_detailed(corpus, UARCH, seed=seed)
    return time.perf_counter() - start, profile


def test_triage(report):
    seed, corpus = _golden_corpus()
    total = len(list(corpus))

    saved_cache = os.environ.get("REPRO_CACHE")
    tmp = tempfile.mkdtemp(prefix="bench_triage_")
    os.environ["REPRO_CACHE"] = tmp
    stage._STORES.clear()
    try:
        off_s, base = _timed(corpus, seed, triage_on=False)
        cold_s, cold = _timed(corpus, seed, triage_on=True)
        assert _payload(cold) == _payload(base), \
            "cold triage run diverged from the triage-off bytes"

        best_off, best_warm = off_s, None
        for _ in range(REPEATS):
            run_off_s, off = _timed(corpus, seed, triage_on=False)
            warm_s, warm = _timed(corpus, seed, triage_on=True)
            assert _payload(warm) == _payload(off) == _payload(base), \
                "warm triage run diverged from the triage-off bytes"
            best_off = min(best_off, run_off_s)
            best_warm = warm_s if best_warm is None \
                else min(best_warm, warm_s)

        revalidated = warm.info.get("triage_revalidated", 0)
        fall_through = (total - revalidated) / total
    finally:
        stage._STORES.clear()
        if saved_cache is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved_cache
        shutil.rmtree(tmp, ignore_errors=True)

    speedup = best_off / best_warm
    rows = [
        ("triage off", total, round(best_off, 4), "-", "baseline"),
        ("cold (journal+train)", total, round(cold_s, 4), "-",
         "recorded"),
        ("warm (revalidate)", total, round(best_warm, 4),
         f"{speedup:.2f}x", f">= {SPEEDUP_FLOOR}x enforced"),
    ]
    title = (f"{UARCH}, golden corpus, best of {REPEATS}; "
             f"outputs bit-identical in all runs; fall-through "
             f"{fall_through:.1%} (budget {FALLTHROUGH_BUDGET:.0%}, "
             f"{revalidated}/{total} revalidated)")
    report("triage", format_table(
        ["run", "blocks", "seconds", "speedup", "gate"], rows,
        title=title))

    doc = {"uarch": UARCH, "repeats": REPEATS,
           "floor": SPEEDUP_FLOOR, "identical_outputs": True,
           "fall_through": fall_through,
           "fall_through_budget": FALLTHROUGH_BUDGET,
           "warm": {"blocks": total, "off_s": best_off,
                    "warm_s": best_warm, "speedup": speedup,
                    "revalidated": revalidated,
                    "cold_s": cold_s}}
    for path in (os.path.join(REPORT_DIR, "triage.json"), ROOT_JSON):
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")

    assert revalidated == base.funnel["accepted"], (
        f"only {revalidated} of {base.funnel['accepted']} accepted "
        f"blocks revalidated — the surrogate or the journal regressed")
    assert fall_through <= FALLTHROUGH_BUDGET, (
        f"fall-through {fall_through:.1%} > {FALLTHROUGH_BUDGET:.0%}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm triage {speedup:.2f}x < {SPEEDUP_FLOOR}x on the golden "
        f"corpus — store load, surrogate eval or memo seeding "
        f"regressed")
