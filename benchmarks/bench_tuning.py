"""Model tuning with the suite's measured data (the paper's purpose).

"Our benchmark can be used to systematically evaluate and tune
performance models of x86-64 basic blocks" — this bench performs the
tuning workflow on the llvm-mca analogue's stale Skylake model and
shows the measured error moving back toward its Haswell level.
"""

from repro.eval.reporting import format_table
from repro.eval.tuning import tune
from repro.models import LlvmMcaModel


def test_tuning_llvm_mca_skylake(benchmark, experiment, report):
    measured = experiment.measured("skylake")
    records = [r for r in experiment.corpus
               if r.block_id in measured][:350]
    blocks = [r.block for r in records]
    values = [measured[r.block_id] for r in records]

    base = LlvmMcaModel()
    tuned, result = tune(base, blocks, values, "skylake",
                         max_classes=8)

    rows = [("llvm-mca (stale Skylake tables)", result.error_before),
            ("llvm-mca+tuned", result.error_after)]
    adjustment_rows = [(a.timing_class, f"x{a.factor:.2f}",
                        a.error_before, a.error_after)
                       for a in result.adjustments]
    text = format_table(["model", "avg error"], rows,
                        title="Tuning llvm-mca's Skylake model from "
                              "measured data")
    if adjustment_rows:
        text += "\n\n" + format_table(
            ["timing class", "correction", "err before", "err after"],
            adjustment_rows, title="per-class corrections")
    report("tuning_llvm_mca_skylake", text)

    assert result.error_after < result.error_before
    adjusted = {a.timing_class for a in result.adjustments}
    # The structural Skylake staleness (FP classes inherited from the
    # Haswell model) is what the data-driven pass repairs.
    assert adjusted & {"fp_add", "fp_mul", "fma", "cmov", "vec_int"}

    from repro.corpus import div_block
    benchmark(tuned.predict_safe, div_block(), "skylake")
