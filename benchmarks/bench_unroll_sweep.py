"""Unroll-factor stability (§III-B's "large enough" requirement).

Eq. 2's only requirement on (u, u') is reaching steady state; this
bench sweeps pairs and single factors on a latency-bound kernel to
show (a) pair-invariance of the two-factor derivation and (b) the
warm-up bias decay of Eq. 1 — the quantitative backing for the
suite's default factors.
"""

from repro.eval.reporting import format_table
from repro.eval.sweeps import sweep_naive_unroll, sweep_unroll_pairs
from repro.isa.parser import parse_block


def test_unroll_sweep(benchmark, report):
    block = parse_block("mulps %xmm0, %xmm1\nmulps %xmm1, %xmm2\n"
                        "mulps %xmm2, %xmm3")

    pair_points = sweep_unroll_pairs(
        block, [(4, 8), (8, 16), (12, 28), (16, 32), (24, 48)])
    naive_points = sweep_naive_unroll(block, [4, 8, 16, 32, 64, 100])

    rows = [(f"Eq.2 u={p.parameter}", p.throughput)
            for p in pair_points]
    rows += [(f"Eq.1 u={p.parameter[0]}", p.throughput)
             for p in naive_points]
    report("unroll_sweep", format_table(
        ["derivation", "throughput"], rows,
        title="Unroll-factor sweep on a 5-cycle FP chain "
              "(steady state = 5.0)"))

    pair_values = {p.throughput for p in pair_points}
    assert len(pair_values) == 1  # Eq. 2 is pair-invariant
    steady = pair_values.pop()

    naive_values = [p.throughput for p in naive_points]
    assert naive_values == sorted(naive_values, reverse=True)
    assert naive_values[0] > steady           # visible warm-up bias
    assert abs(naive_values[-1] - steady) < 0.2 * steady

    benchmark(sweep_naive_unroll, block, [16])
