"""Windowed-aggregation throughput and order-independence.

The live layer folds every profiled block into a sliding-window
reservoir (``repro.telemetry.window``); that fold sits on the hot
path of every telemetry-enabled run, so it has to be cheap and it has
to be deterministic.  This bench enforces both:

* **Speed** — a ``WindowAggregator`` must absorb observations at
  ``FLOOR`` kblocks/s or better (best of ``REPEATS``); the profiler
  itself tops out around 1 kblock/s, so a floor two orders of
  magnitude above that keeps the fold invisible.
* **Order-independence** — feeding the same observations in reverse
  and in an interleaved shard order must produce a byte-identical
  window series (the property that makes pooled runs match serial
  ones).

Results land in ``reports/windows.txt`` plus a repo-root
``BENCH_windows.json`` for ``repro bench check``.
"""

import json
import os
import time

from repro.eval.reporting import format_table
from repro.telemetry.window import WindowAggregator

from conftest import REPORT_DIR

ROOT_JSON = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_windows.json")

BLOCKS = 200_000
WINDOW_SIZE = 64
RESERVOIR = 1024
FLOOR = 100.0  # kblocks/s; measured ~400 on the reference machine
REPEATS = int(os.environ.get("REPRO_BENCH_WINDOWS_REPEATS", "3"))


def _observations(n):
    """Deterministic synthetic latencies; ~6% dropped blocks."""
    obs = []
    for i in range(n):
        if i % 17 == 0:
            obs.append((i, None))
        else:
            obs.append((i, 1.0 + (i * 37 % 101) / 10.0))
    return obs


def _series(obs, n):
    agg = WindowAggregator("bench", total=n, window_size=WINDOW_SIZE,
                          reservoir=RESERVOIR)
    for index, value in obs:
        agg.observe(index, value)
    return json.dumps(agg.finish())


def _timed_pass(obs, n):
    agg = WindowAggregator("bench", total=n, window_size=WINDOW_SIZE,
                          reservoir=RESERVOIR)
    start = time.perf_counter()
    for index, value in obs:
        agg.observe(index, value)
    agg.finish()
    return time.perf_counter() - start


def test_windows(report):
    obs = _observations(BLOCKS)

    # Order-independence: reversed and shard-interleaved feeds.
    forward = _series(obs, BLOCKS)
    reverse = _series(list(reversed(obs)), BLOCKS)
    shards = [obs[i::7] for i in range(7)]
    interleaved = _series([o for shard in shards for o in shard],
                          BLOCKS)
    assert forward == reverse == interleaved, \
        "window series depends on arrival order"

    best = min(_timed_pass(obs, BLOCKS) for _ in range(REPEATS))
    throughput = BLOCKS / best / 1e3
    windows = len(json.loads(forward))

    doc = {
        "blocks": BLOCKS,
        "window_size": WINDOW_SIZE,
        "reservoir": RESERVOIR,
        "floor": FLOOR,
        "identical_series": True,
        "aggregation": {
            "windows": windows,
            "secs": best,
            "throughput_kblocks_per_s": throughput,
        },
    }
    with open(ROOT_JSON, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")

    rows = [("aggregation", BLOCKS, windows, round(best, 4),
             round(throughput, 1))]
    report("windows", format_table(
        ["mode", "blocks", "windows", "secs", "kblocks/s"], rows,
        title=f"windowed aggregation (best of {REPEATS}); "
              f"floor {FLOOR} kblocks/s; series order-independent"))

    assert throughput >= FLOOR, \
        f"window aggregation {throughput:.0f} kblocks/s < {FLOOR}"
