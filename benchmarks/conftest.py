"""Shared fixtures for the benchmark/reproduction harness.

Every bench regenerates one of the paper's tables or figures, prints
it (run pytest with ``-s`` to see them live), and writes it to
``reports/<bench>.txt``.  The heavyweight pipeline artefacts (corpus,
measurements, trained models) are shared session-wide and disk-cached,
so only the first run pays the full simulation cost.

Scale: ``REPRO_SCALE`` (default 0.004 ≈ 1/250 of the paper's 358,561
blocks).  Raise it for tighter statistics, e.g.
``REPRO_SCALE=0.01 pytest benchmarks/``.
"""

import os

import pytest

from repro import telemetry
from repro.eval.pipeline import DEFAULT_SCALE, DEFAULT_SEED, Experiment

REPORT_DIR = os.path.join(os.path.dirname(__file__), "..", "reports")


@pytest.fixture(scope="session", autouse=True)
def bench_telemetry():
    """Collect telemetry for the whole bench session.

    Every bench run leaves ``reports/telemetry_bench_session.{json,txt}``
    behind: stage timings, cache hit/miss behaviour, and the coverage
    funnel for everything profiled during the session.  Disable with
    ``REPRO_TELEMETRY=0`` (e.g. when chasing peak numbers).
    """
    if os.environ.get("REPRO_TELEMETRY", "1") == "0":
        yield
        return
    telemetry.enable()
    yield
    os.makedirs(REPORT_DIR, exist_ok=True)
    session_report = telemetry.build_run_report(
        telemetry.registry(), name="telemetry_bench_session",
        meta={"scale": DEFAULT_SCALE, "seed": DEFAULT_SEED})
    telemetry.write_run_report(session_report, REPORT_DIR)
    telemetry.reset()


@pytest.fixture(scope="session")
def experiment():
    return Experiment(scale=DEFAULT_SCALE, seed=DEFAULT_SEED)


@pytest.fixture(scope="session")
def report():
    """Print a rendered table/figure and persist it under reports/."""
    os.makedirs(REPORT_DIR, exist_ok=True)

    def emit(name: str, text: str) -> str:
        print()
        print(f"===== {name} =====")
        print(text)
        path = os.path.join(REPORT_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return text

    return emit
