#!/usr/bin/env python3
"""Build the benchmark suite and classify it (paper §IV).

Synthesises the application corpora, maps every micro-op to its
execution-port combination, clusters blocks with LDA, and prints the
Table IV / Fig. 4 views.

Run:  python examples/classify_corpus.py [scale]
"""

import sys

from repro.classify import (CATEGORY_LABELS, category_shares_by_app,
                            classify_blocks)
from repro.corpus import build_corpus
from repro.eval.reporting import bar_chart, format_table


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    corpus = build_corpus(scale=scale, seed=0)
    print(f"synthesised {len(corpus)} blocks "
          f"(scale {scale} of the paper's 358,561)\n")

    result = classify_blocks(corpus.blocks)
    print(f"port-combination vocabulary "
          f"({len(result.vocabulary)} combos, paper reports 13): "
          f"{', '.join(result.vocabulary)}\n")

    counts = result.counts()
    rows = [(f"Category-{c}", CATEGORY_LABELS[c - 1], counts[c],
             f"{100 * counts[c] / len(corpus):.1f}%")
            for c in range(1, 7)]
    print(format_table(["Category", "Description", "#", "share"],
                       rows, title="Table IV — block categories"))

    print("\nexample block per category (Fig. 3):")
    for category, block in sorted(
            result.example_blocks(corpus.blocks).items()):
        print(f"\nCategory-{category} "
              f"({CATEGORY_LABELS[category - 1]}):")
        print("\n".join("    " + line
                        for line in block.text().splitlines()))

    print("\nFig. 4 — vectorized share per application "
          "(frequency-weighted categories 1+2):")
    shares = category_shares_by_app(corpus, result)
    vector_share = {app: dist[1] + dist[2]
                    for app, dist in sorted(shares.items())}
    print(bar_chart(vector_share, fmt="{:.2f}"))


if __name__ == "__main__":
    main()
