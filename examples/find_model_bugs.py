#!/usr/bin/env python3
"""Hunt cost-model bugs with the case-study blocks (paper §V).

Shows the three classes of model failure the paper dissects —
division-width confusion, unrecognised zero idioms, and fused load-op
mis-scheduling — including the side-by-side dispatch schedules of
Fig. 11.

Run:  python examples/find_model_bugs.py
"""

from repro.corpus import div_block, gzip_crc_block, zero_idiom_block
from repro.eval.reporting import schedule_diagram
from repro.models import IacaModel, LlvmMcaModel, OsacaModel
from repro.profiler import profile_block


def show(name, block, note):
    print(f"== {name}")
    print("\n".join("    " + line for line in block.text().splitlines()))
    measured = profile_block(block)
    value = (f"{measured.throughput:.2f} cycles/iter" if measured.ok
             else measured.failure.value)
    print(f"  measured: {value}")
    for model in (IacaModel(), LlvmMcaModel(), OsacaModel()):
        pred = model.predict_safe(block, "haswell")
        text = f"{pred.throughput:.2f}" if pred.ok else \
            f"failed ({pred.error})"
        print(f"  {model.name:9s}: {text}")
    print(f"  -> {note}\n")


def main() -> None:
    show("64/32-bit unsigned division", div_block(),
         "IACA and llvm-mca price this as the 128/64-bit divide "
         "(~90 cycles) and ignore the zeroed-rdx fast path; OSACA's "
         "flat table entry is optimistic.")

    show("vectorized zero idiom", zero_idiom_block(),
         "the hardware executes nothing (dependency broken at "
         "rename); IACA knows the idiom, llvm-mca and OSACA price a "
         "real XOR with a self-dependency.")

    show("gzip CRC inner loop", gzip_crc_block(),
         "llvm-mca dispatches the byte-xor's load only after the ALU "
         "operand is ready; the hardware (and IACA) hoist the "
         "independent load.  OSACA's parser rejects the "
         "index-without-base addressing form.")

    print("Fig. 11 — predicted dispatch schedules (3 iterations):\n")
    block = gzip_crc_block()
    for model in (IacaModel(), LlvmMcaModel()):
        trace = model.schedule_trace(block, "haswell", unroll=3)
        print(f"{model.name} (total {trace.cycles} cycles):")
        print(schedule_diagram(trace.records, len(block) * 3,
                               max_cycles=56))
        print()


if __name__ == "__main__":
    main()
