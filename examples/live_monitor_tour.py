#!/usr/bin/env python3
"""The live observability layer, narrated: windows, stitching, top.

Profiles a small corpus through the 2-worker pool with a run-scoped
trace, then replays what the live layer captured: the per-window
percentile series (byte-stable across serial and pooled runs), worker
spans stitched into the parent trace, the unified cache section, and
the same `repro top` screen you would see tailing the trace from
another terminal.

Run:  python examples/live_monitor_tour.py
"""

import json
import os
import tempfile

from repro import telemetry
from repro.corpus.dataset import build_application
from repro.parallel import profile_corpus_sharded
from repro.telemetry import live, window

COUNT = 48
WINDOW_SIZE = 8


def main() -> None:
    os.environ["REPRO_WINDOW"] = str(WINDOW_SIZE)
    corpus = build_application("openblas", count=COUNT, seed=11)
    trace_path = os.path.join(tempfile.gettempdir(),
                              "repro_live_tour.ndjson")

    # -- 1. a pooled, traced run ---------------------------------------
    telemetry.reset()
    telemetry.enable(telemetry.NdjsonSink(trace_path, autoflush=True))
    pooled = profile_corpus_sharded(corpus, "haswell", seed=11,
                                    jobs=2, shard_size=8,
                                    run_label="tour:haswell")
    trace_id = telemetry.get_telemetry().trace_id
    report = telemetry.build_run_report(telemetry.registry(),
                                        name="live_tour")
    telemetry.disable()

    print(f"profiled {len(pooled.throughputs)} blocks through a "
          f"2-worker pool; run trace {trace_id}\n")

    # -- 2. the windowed series ----------------------------------------
    print(f"== per-window series ({WINDOW_SIZE}-block windows, keyed "
          "to block index)")
    series = report["windows"]["tour:haswell"]
    for row in series:
        print(f"   window {row['window']}: blocks "
              f"{row['start']}..{row['start'] + row['blocks'] - 1}  "
              f"p50 {row['p50']:.1f}  p95 {row['p95']:.1f}  "
              f"sim_rate {row['sim_rate']:.1f} blk/kcyc")
    print("   (the same series, byte-identical, comes out of a serial "
          "or --no-fastpath run:\n    "
          "tests/telemetry/test_window_determinism.py proves it)\n")

    # -- 3. worker spans stitched into the parent trace ----------------
    records = telemetry.read_ndjson(trace_path)
    workers = [r for r in records if r.get("name") == "worker.shard"]
    print("== cross-process stitching")
    for rec in workers:
        print(f"   shard {rec['shard']}: worker span "
              f"{rec['dur_ms']:7.1f} ms  trace {rec.get('trace')}")
    print(f"   {len(workers)} worker spans carry the parent's trace "
          "ID; per-shard counters were folded into the registry.\n")

    # -- 4. the unified cache section ----------------------------------
    print("== unified caches (one CacheStats protocol)")
    for name, stats in sorted(report["caches"].items()):
        print(f"   {name:10s} hits {stats['hits']:5d}  "
              f"misses {stats['misses']:5d}  "
              f"hit_rate {stats['hit_rate']}")
    print()

    # -- 5. what `repro top` shows -------------------------------------
    print("== repro top " + trace_path)
    print(live.render_top(records))
    print("\n(run it against an in-flight trace with --follow for a "
          "refreshing view; add --heartbeat 5 to any traced command "
          "for periodic snapshots.)")
    telemetry.reset()


if __name__ == "__main__":
    main()
