#!/usr/bin/env python3
"""Why naive basic-block timing fails: the paper's Table II, narrated.

Walks one large vectorized TensorFlow-style inner loop through each of
the measurement techniques and shows what goes wrong without them.

Run:  python examples/measurement_pitfalls.py
"""

from repro.corpus import tensorflow_ablation_block
from repro.profiler import (BasicBlockProfiler, STAGES, STAGE_LABELS,
                            config_for_stage, relaxed)
from repro.uarch import Machine

STORY = {
    "None": "Agner-Fog-style timing: the block dereferences pointers "
            "it does not own -> SIGSEGV.",
    "Page mapping": "mapping every faulting page makes it run, but "
                    "the streaming working set misses the L1D and the "
                    "FP chain hits subnormal assists.",
    "Single physical page": "aliasing every virtual page onto ONE "
                            "frame keeps data L1-resident (VIPT), but "
                            "the subnormal assists remain.",
    "Disabling gradual underflow": "MXCSR FTZ+DAZ removes the ~100x "
                                   "assist stalls; at unroll=100 the "
                                   "code footprint still overflows "
                                   "the 32KB L1I.",
    "Using smaller unroll factor": "two smaller unroll factors fit "
                                   "the I-cache; the cycle DIFFERENCE "
                                   "cancels warm-up, giving the clean "
                                   "steady-state number.",
}


def main() -> None:
    block = tensorflow_ablation_block()
    print(f"block: {len(block)} instructions, "
          f"{block.byte_length} bytes encoded")
    print(f"unrolled 100x -> {block.byte_length * 100 / 1024:.1f} KiB "
          f"of code (L1I is 32 KiB)\n")

    for stage in STAGES:
        profiler = BasicBlockProfiler(
            Machine("haswell"), relaxed(config_for_stage(stage)))
        result = profiler.profile(block)
        label = STAGE_LABELS[stage]
        print(f"== {label}")
        print(f"   {STORY[label]}")
        if result.ok:
            m = result.measurements[0]
            print(f"   -> {result.throughput:8.1f} cycles/iter   "
                  f"(D-miss {m.l1d_read_misses + m.l1d_write_misses}, "
                  f"I-miss {m.l1i_misses})")
        else:
            print(f"   -> {result.failure.value}")
        print()

    # With invariants enforced (the real suite's configuration), every
    # stage before the last is REJECTED rather than silently wrong.
    print("with invariant enforcement on (the suite's default):")
    for stage in STAGES:
        profiler = BasicBlockProfiler(Machine("haswell"),
                                      config_for_stage(stage))
        result = profiler.profile(block)
        outcome = (f"{result.throughput:.1f} cycles/iter"
                   if result.ok else f"rejected: {result.failure.value}")
        print(f"  {STAGE_LABELS[stage]:28s} -> {outcome}")


if __name__ == "__main__":
    main()
