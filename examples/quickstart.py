#!/usr/bin/env python3
"""Quickstart: profile x86-64 basic blocks and query a cost model.

Run:  python examples/quickstart.py
"""

from repro import profile_block, parse_block
from repro.models import IacaModel


def main() -> None:
    # 1. Profile a basic block straight from assembly text (either
    #    AT&T or Intel syntax).  The harness maps every page the block
    #    touches onto one physical page (so it cannot crash and always
    #    hits the L1 cache), runs it at two unroll factors, and derives
    #    the steady-state throughput in cycles per iteration.
    crc_loop = """
        add $1, %rdi
        mov %edx, %eax
        shr $8, %rdx
        xor -1(%rdi), %al
        movzx %al, %eax
        xor 0x41108(, %rax, 8), %rdx
        cmp %rcx, %rdi
    """
    result = profile_block(crc_loop, uarch="haswell")
    print("gzip CRC inner loop (Haswell)")
    print(f"  measured throughput : {result.throughput:.2f} cycles/iter")
    print(f"  pages mapped        : {result.pages_mapped}")
    print(f"  faults intercepted  : {result.num_faults}")

    # 2. Blocks that cannot be measured fail gracefully, with the
    #    reason the paper's taxonomy would give them.
    bad = profile_block("xor %ecx, %ecx\nxor %edx, %edx\ndiv %ecx")
    print(f"\ndivide-by-zero block -> {bad.failure.value}")

    # 3. Ask a static cost model for its prediction and compare.
    model = IacaModel()
    block = parse_block(crc_loop)
    prediction = model.predict_safe(block, "haswell")
    error = abs(prediction.throughput - result.throughput) \
        / result.throughput
    print(f"\nIACA-style prediction : {prediction.throughput:.2f} "
          f"cycles/iter  (relative error {error:.1%})")

    # 4. The same block on different microarchitectures.
    print("\nacross microarchitectures:")
    for uarch in ("ivybridge", "haswell", "skylake"):
        r = profile_block(crc_loop, uarch=uarch)
        print(f"  {uarch:10s}: {r.throughput:.2f} cycles/iter")


if __name__ == "__main__":
    main()
