#!/usr/bin/env python3
"""The observability layer, narrated: spans, metrics, run reports.

Profiles a small corpus three ways — blind, with metrics, and with a
full NDJSON trace — and shows what each level of telemetry buys you:
the coverage funnel behind the paper's "2M+ blocks without user
intervention" claim, per-stage wall times, and a replayable event
stream.

Run:  python examples/telemetry_tour.py
"""

import os
import tempfile

from repro import telemetry
from repro.corpus import build_corpus
from repro.profiler import BasicBlockProfiler
from repro.uarch import Machine

SCALE = 0.0001  # ~50 of the paper's 358k blocks


def main() -> None:
    corpus = build_corpus(scale=SCALE, seed=11)
    blocks = [record.block for record in corpus]
    print(f"corpus: {len(blocks)} blocks "
          f"(scale={SCALE} of the paper's suite)\n")

    # -- 1. telemetry off (the default): profiling is blind ------------
    results = BasicBlockProfiler(Machine("haswell")).profile_many(blocks)
    ok = sum(1 for r in results if r.ok)
    print("== telemetry off (default)")
    print(f"   {ok}/{len(blocks)} profiled; the rest vanished — "
          "per-result objects are all you get.\n")

    # -- 2. metrics only: the funnel appears ---------------------------
    telemetry.enable()
    BasicBlockProfiler(Machine("haswell")).profile_many(blocks)
    counters = telemetry.registry().snapshot()["counters"]
    funnel = telemetry.funnel_from_counters(counters)
    print("== telemetry.enable(): the coverage funnel")
    print(f"   accepted {funnel['accepted']}/{funnel['total']}")
    for reason, n in sorted(funnel["dropped"].items(),
                            key=lambda kv: -kv[1]):
        print(f"   dropped {n:3d}  {reason}")
    latency = telemetry.registry() \
        .histogram("profiler.block_latency_ms")
    print(f"   per-block latency: p50 {latency.p50:.1f} ms, "
          f"p95 {latency.p95:.1f} ms, p99 {latency.p99:.1f} ms\n")
    telemetry.reset()

    # -- 3. NDJSON export: a replayable trace --------------------------
    trace_path = os.path.join(tempfile.gettempdir(),
                              "repro_telemetry_tour.ndjson")
    telemetry.enable(trace_path)
    with telemetry.span("tour.profile_pass", scale=SCALE):
        BasicBlockProfiler(Machine("haswell")).profile_many(blocks)
    report = telemetry.build_run_report(
        telemetry.registry(), name="telemetry_tour",
        meta={"scale": SCALE, "seed": 11, "uarch": "haswell"})
    telemetry.disable()

    print("== telemetry.enable(<path>): NDJSON trace + run report")
    for record in telemetry.read_ndjson(trace_path):
        indent = "   " + "  " * record.get("depth", 0)
        if record["kind"] == "span":
            print(f"{indent}span  {record['name']:24s} "
                  f"{record['dur_ms']:9.1f} ms")
        else:
            print(f"{indent}event {record['name']}")
    print(f"   trace: {trace_path}\n")

    print(telemetry.render_summary(report))
    print("\n(write_run_report(report) would persist this under "
          "reports/ — `python -m repro telemetry` does exactly that "
          "for the full validation pipeline.)")
    telemetry.reset()


if __name__ == "__main__":
    main()
