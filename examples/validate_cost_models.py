#!/usr/bin/env python3
"""Validate four cost models against measured ground truth — a small
live rendition of the paper's Table V pipeline.

Run:  python examples/validate_cost_models.py [uarch] [n_blocks]
"""

import sys

from repro.corpus import build_corpus
from repro.eval.reporting import format_table
from repro.eval.validation import validate
from repro.models import (IacaModel, IthemalModel, LlvmMcaModel,
                          OsacaModel)


def main() -> None:
    uarch = sys.argv[1] if len(sys.argv) > 1 else "haswell"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 400

    print(f"building a corpus slice (~{n} blocks) ...")
    corpus = build_corpus(scale=n / 358561.0, seed=0)
    print(f"  {len(corpus)} blocks from "
          f"{', '.join(corpus.applications())}")

    models = [IacaModel(), LlvmMcaModel(), IthemalModel(), OsacaModel()]
    print(f"profiling on simulated {uarch} and training the learned "
          f"model on half of the measurements ...")
    result = validate(corpus, uarch, models, seed=0)

    print(f"  {result.profiled_fraction:.1%} of blocks profiled "
          f"successfully; {len(result.rows)} held-out blocks "
          f"evaluated\n")

    rows = []
    for model in result.model_names:
        rows.append((model,
                     round(result.overall_error(model), 4),
                     round(result.weighted_overall_error(model), 4),
                     round(result.kendall_tau(model), 4),
                     f"{result.coverage(model):.0%}"))
    print(format_table(
        ["Model", "avg error", "weighted error", "Kendall tau",
         "coverage"],
        rows, title=f"model accuracy on {uarch} "
                    f"(paper Table V: IACA .18, llvm-mca .18, "
                    f"Ithemal .13, OSACA .39 on Haswell)"))

    print("\nper-application average error (weighted):")
    for model in result.model_names:
        per_app = result.per_application_error(model)
        cells = ", ".join(f"{app}={err:.3f}"
                          for app, err in per_app.items()
                          if err is not None)
        print(f"  {model:9s} {cells}")


if __name__ == "__main__":
    main()
