"""Setuptools shim.

Kept alongside pyproject.toml so the package installs in offline
environments that lack the ``wheel`` module (legacy ``pip install -e .
--no-use-pep517`` path).
"""

from setuptools import setup

setup()
