"""repro — a reproduction of BHive (IISWC 2019).

A benchmark suite and measurement framework for validating x86-64
basic-block performance models, rebuilt as a self-contained Python
library: the hardware is a simulated out-of-order core, the
measurement framework implements the paper's page-mapping +
two-unroll-factor technique faithfully, and four cost models (IACA,
llvm-mca, OSACA, Ithemal analogues) are evaluated against the
simulated ground truth.

Quickstart::

    from repro import profile_block, parse_block
    result = profile_block("xor %edx, %edx\\ndiv %ecx")
    print(result.throughput)       # cycles/iteration at steady state

See README.md for the architecture overview, DESIGN.md for the
system inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro import telemetry
from repro.errors import (ArithmeticFault, AsmSyntaxError,
                          InvalidAddressFault, MemoryFault, ModelError,
                          ProfilingFailure, ReproError,
                          UnknownOpcodeError,
                          UnsupportedInstructionError)
from repro.isa import (BasicBlock, Instruction, block_length,
                       format_block, parse_block, parse_instruction)
from repro.profiler import (BasicBlockProfiler, FailureReason,
                            ProfileResult, ProfilerConfig, profile_block)
from repro.uarch import Machine

__version__ = "1.0.0"

__all__ = [
    "BasicBlock", "Instruction", "Machine",
    "parse_block", "parse_instruction", "format_block", "block_length",
    "BasicBlockProfiler", "ProfilerConfig", "ProfileResult",
    "FailureReason", "profile_block",
    "ReproError", "AsmSyntaxError", "UnknownOpcodeError",
    "UnsupportedInstructionError", "MemoryFault", "InvalidAddressFault",
    "ArithmeticFault", "ProfilingFailure", "ModelError",
    "telemetry",
    "__version__",
]
