"""Basic-block classification: port combos -> LDA -> Table IV categories."""

from repro.classify.categories import (CATEGORY_LABELS, ClassifierResult,
                                       category_shares_by_app,
                                       classify_blocks)
from repro.classify.lda import LatentDirichletAllocation, LdaConfig
from repro.classify.portmap import PortMapper

__all__ = [
    "CATEGORY_LABELS", "ClassifierResult", "classify_blocks",
    "category_shares_by_app", "LatentDirichletAllocation", "LdaConfig",
    "PortMapper",
]
