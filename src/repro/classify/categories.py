"""Basic-block categorisation (Table IV / Fig. 3 / Fig. 4).

Pipeline: port-combination bags → LDA topics → one category per block
(the paper takes the most common micro-op category in the block, which
for mean-field LDA is the block's dominant topic).  LDA does not name
its topics; like the paper, the labels are attached afterwards by
inspecting each cluster — here with an automatic matcher over cluster
statistics (vector/load/store/scalar shares) solved as an assignment
problem, replicating the paper's Table IV names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.classify.lda import LatentDirichletAllocation, LdaConfig
from repro.classify.portmap import PortMapper
from repro.isa.instruction import BasicBlock
from repro.models.residual import block_mix

#: Table IV labels, index = category number - 1.
CATEGORY_LABELS = (
    "Mix of scalar and vectorized arithmetic",   # Category-1
    "Purely vector instructions",                # Category-2
    "Mix of loads and stores",                   # Category-3
    "Mostly stores",                             # Category-4
    "ALU ops sprinkled with loads and stores",   # Category-5
    "Mostly loads",                              # Category-6
)


@dataclass
class ClassifierResult:
    """Fitted classifier plus per-block assignments."""

    categories: List[int]            # 1-based category per block
    topic_of_category: Dict[int, int]
    vocabulary: List[str]
    lda: LatentDirichletAllocation
    mapper: PortMapper
    doc_topics: np.ndarray
    profiles: Dict[int, Dict[str, float]] = field(default_factory=dict)

    def counts(self) -> Dict[int, int]:
        out = {c: 0 for c in range(1, 7)}
        for c in self.categories:
            out[c] += 1
        return out

    def assign(self, blocks: Sequence[BasicBlock]) -> List[int]:
        """Categorise *new* blocks under the fitted topics.

        The paper fits one classifier and applies it to everything —
        including the Spanner/Dremel blocks of §V — so new corpora are
        folded into the existing topic space rather than re-clustered.
        Port combinations unseen during fitting are ignored.
        """
        index = {combo: i for i, combo in enumerate(self.vocabulary)}
        counts = np.zeros((len(blocks), len(self.vocabulary)))
        for d, block in enumerate(blocks):
            for combo in self.mapper.block_combos(block):
                if combo in index:
                    counts[d, index[combo]] += 1
        doc_topics = self.lda.transform(counts)
        category_of_topic = {t: c
                             for c, t in self.topic_of_category.items()}
        return [category_of_topic[int(t)]
                for t in doc_topics.argmax(axis=1)]

    def example_blocks(self, blocks: Sequence[BasicBlock],
                       max_len: int = 8) -> Dict[int, BasicBlock]:
        """One short, representative block per category (Fig. 3)."""
        best: Dict[int, BasicBlock] = {}
        strength: Dict[int, float] = {}
        for block, cat, weights in zip(blocks, self.categories,
                                       self.doc_topics):
            if len(block) > max_len:
                continue
            score = float(weights.max())
            if score > strength.get(cat, 0.0):
                strength[cat] = score
                best[cat] = block
        return best


def _cluster_profile(blocks: Sequence[BasicBlock],
                     members: Sequence[int]) -> Dict[str, float]:
    """Mean instruction-mix statistics of a cluster."""
    if not members:
        return {"load": 0, "store": 0, "vector": 0, "scalar": 0}
    loads = stores = vectors = scalars = total = 0
    for idx in members:
        for instr in blocks[idx]:
            total += 1
            if instr.loads_memory:
                loads += 1
            if instr.stores_memory:
                stores += 1
            if instr.info.vec:
                vectors += 1
            elif not instr.has_memory_access:
                scalars += 1
    total = max(total, 1)
    return {"load": loads / total, "store": stores / total,
            "vector": vectors / total, "scalar": scalars / total}


def _label_scores(profile: Dict[str, float]) -> List[float]:
    """Affinity of one cluster profile for each Table IV label.

    The assignment solver maximises total affinity, so only relative
    magnitudes matter; the terms encode the label semantics (e.g.
    "mix of loads and stores" needs *both* present).
    """
    load, store = profile["load"], profile["store"]
    vector, scalar = profile["vector"], profile["scalar"]
    return [
        # 1: mix of scalar and vectorized arithmetic
        5.0 * min(vector, scalar) + 0.5 * vector,
        # 2: purely vector
        3.0 * vector - 2.5 * scalar - 1.5 * store,
        # 3: mix of loads and stores
        5.0 * min(load, store) + 1.2 * (load + store)
        - 1.5 * vector - 0.8 * scalar,
        # 4: mostly stores
        3.5 * store - 1.5 * load - 1.2 * vector,
        # 5: ALU ops sprinkled with loads and stores
        2.0 * scalar + 0.8 * min(load + store, 0.5)
        - 2.5 * vector - 1.5 * store,
        # 6: mostly loads
        3.0 * load - 2.5 * store - 1.2 * vector - 0.8 * scalar,
    ]


def classify_blocks(blocks: Sequence[BasicBlock],
                    uarch: str = "haswell",
                    config: Optional[LdaConfig] = None,
                    n_restarts: int = 4) -> ClassifierResult:
    """Fit LDA over the blocks and assign Table IV categories.

    LDA is seed-sensitive (mean-field finds local optima); like any
    topic-model user we fit several restarts and keep the one whose
    clusters match the six label semantics best — the automated
    version of the paper's "manually labelled by inspection".
    """
    mapper = PortMapper(uarch)
    vocabulary = mapper.vocabulary(blocks)
    index = {combo: i for i, combo in enumerate(vocabulary)}
    counts = np.zeros((len(blocks), len(vocabulary)))
    for d, block in enumerate(blocks):
        for combo in mapper.block_combos(block):
            counts[d, index[combo]] += 1

    base = config or LdaConfig()
    best = None
    for restart in range(max(1, n_restarts)):
        cfg = LdaConfig(n_topics=base.n_topics, alpha=base.alpha,
                        beta=base.beta, max_iter=base.max_iter,
                        inner_iter=base.inner_iter, tol=base.tol,
                        seed=base.seed + 101 * restart)
        lda = LatentDirichletAllocation(cfg)
        doc_topics = lda.fit_transform(counts)
        dominant = doc_topics.argmax(axis=1)

        n_topics = doc_topics.shape[1]
        members: Dict[int, List[int]] = {t: [] for t in range(n_topics)}
        for i, topic in enumerate(dominant):
            members[int(topic)].append(i)
        profiles = {t: _cluster_profile(blocks, m)
                    for t, m in members.items()}
        score = np.array([_label_scores(profiles[t])
                          for t in range(n_topics)])
        topic_idx, label_idx = linear_sum_assignment(-score)
        total = float(score[topic_idx, label_idx].sum())
        if best is None or total > best[0]:
            best = (total, lda, doc_topics, dominant, profiles,
                    {int(t): int(label) + 1
                     for t, label in zip(topic_idx, label_idx)})

    _, lda, doc_topics, dominant, profiles, topic_to_category = best
    categories = [topic_to_category[int(t)] for t in dominant]
    return ClassifierResult(
        categories=categories,
        topic_of_category={c: t for t, c in topic_to_category.items()},
        vocabulary=vocabulary,
        lda=lda,
        mapper=mapper,
        doc_topics=doc_topics,
        profiles={topic_to_category[t]: p for t, p in profiles.items()},
    )


def category_shares_by_app(corpus, result: ClassifierResult,
                           weighted: bool = True
                           ) -> Dict[str, Dict[int, float]]:
    """Per-application category composition (Fig. 4 / Fig. 13).

    ``weighted=True`` weights blocks by execution frequency, matching
    the figures' "weighted by the frequency it is sampled" caption.
    """
    shares: Dict[str, Dict[int, float]] = {}
    for record, category in zip(corpus.records, result.categories):
        app = shares.setdefault(record.application,
                                {c: 0.0 for c in range(1, 7)})
        app[category] += record.frequency if weighted else 1.0
    for app, dist in shares.items():
        total = sum(dist.values()) or 1.0
        shares[app] = {c: v / total for c, v in dist.items()}
    return shares
