"""Latent Dirichlet Allocation via batch variational EM (numpy).

The paper clusters micro-ops with scikit-learn's stochastic
variational LDA (6 topics, α=1/6, β=1/13).  scikit-learn is not
available offline, so this is a from-scratch batch variational EM over
the document-term count matrix — the same model family, deterministic
given the seed.

Documents are basic blocks; terms are micro-op port combinations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.special import digamma


@dataclass
class LdaConfig:
    n_topics: int = 6
    #: Dirichlet prior on document-topic distributions (paper: 1/6).
    alpha: float = 1.0 / 6.0
    #: Dirichlet prior on topic-term distributions (paper: 1/13).
    beta: float = 1.0 / 13.0
    max_iter: int = 60
    #: Mean-field inner iterations per document batch.
    inner_iter: int = 25
    tol: float = 1e-3
    seed: int = 0


class LatentDirichletAllocation:
    """Batch variational-EM LDA over a count matrix."""

    def __init__(self, config: Optional[LdaConfig] = None):
        self.config = config if config is not None else LdaConfig()
        self.components_: Optional[np.ndarray] = None  # (K, V)
        self._exp_elog_beta: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def _e_step(self, counts: np.ndarray,
                exp_elog_beta: np.ndarray) -> tuple:
        """Mean-field update of per-document topic mixtures.

        Returns (gamma (D,K), sufficient statistics (K,V)).
        """
        cfg = self.config
        n_docs = counts.shape[0]
        rng = np.random.default_rng(cfg.seed + 1)
        gamma = rng.gamma(100.0, 0.01, size=(n_docs, cfg.n_topics))
        exp_elog_theta = np.exp(digamma(gamma)
                                - digamma(gamma.sum(1, keepdims=True)))
        for _ in range(cfg.inner_iter):
            # phi_{dvk} ∝ exp_elog_theta_{dk} * exp_elog_beta_{kv}
            norm = exp_elog_theta @ exp_elog_beta + 1e-100  # (D, V)
            gamma = cfg.alpha + exp_elog_theta * \
                ((counts / norm) @ exp_elog_beta.T)
            exp_elog_theta = np.exp(
                digamma(gamma) - digamma(gamma.sum(1, keepdims=True)))
        norm = exp_elog_theta @ exp_elog_beta + 1e-100
        stats = exp_elog_beta * (exp_elog_theta.T @ (counts / norm))
        return gamma, stats

    def fit(self, counts: np.ndarray) -> "LatentDirichletAllocation":
        """Fit topics on a (documents × vocabulary) count matrix."""
        counts = np.asarray(counts, dtype=np.float64)
        cfg = self.config
        n_vocab = counts.shape[1]
        rng = np.random.default_rng(cfg.seed)
        lam = rng.gamma(100.0, 0.01, size=(cfg.n_topics, n_vocab))
        previous = None
        for _ in range(cfg.max_iter):
            exp_elog_beta = np.exp(
                digamma(lam) - digamma(lam.sum(1, keepdims=True)))
            _, stats = self._e_step(counts, exp_elog_beta)
            lam = cfg.beta + stats
            if previous is not None and \
                    np.abs(lam - previous).mean() < cfg.tol:
                break
            previous = lam.copy()
        self.components_ = lam
        self._exp_elog_beta = np.exp(
            digamma(lam) - digamma(lam.sum(1, keepdims=True)))
        return self

    def transform(self, counts: np.ndarray) -> np.ndarray:
        """Per-document topic distributions (rows sum to 1)."""
        if self.components_ is None:
            raise RuntimeError("fit() first")
        counts = np.asarray(counts, dtype=np.float64)
        gamma, _ = self._e_step(counts, self._exp_elog_beta)
        return gamma / gamma.sum(1, keepdims=True)

    def fit_transform(self, counts: np.ndarray) -> np.ndarray:
        return self.fit(counts).transform(counts)

    @property
    def topic_word_(self) -> np.ndarray:
        """Normalised topic-term distributions (K, V)."""
        if self.components_ is None:
            raise RuntimeError("fit() first")
        return self.components_ / \
            self.components_.sum(1, keepdims=True)
