"""Instruction → port-combination featurisation (§IV-B).

The paper maps each instruction to the port combinations of its
micro-ops using Abel & Reineke's reverse-engineered tables (13
combinations cover all user-level instructions on Haswell) and treats
a basic block as a bag of micro-op port combinations.  Our equivalent
mapping comes from the ground-truth Haswell decomposer: same role,
same notation (``p0156``, ``p23``, ...).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.isa.instruction import BasicBlock, Instruction
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer

#: Synthetic combos for micro-ops that never reach the execution
#: ports; the paper's mapping has no such entries, but rename-stage
#: idioms still occupy a slot and carry classification signal.
RENAME_COMBO = "none"


class PortMapper:
    """Maps instructions to per-uop port-combination labels."""

    def __init__(self, uarch: str = "haswell"):
        desc, table, div = get_uarch(uarch)
        self.uarch = uarch
        self._decomposer = Decomposer(desc, table, div)
        self._cache: Dict[Instruction, Tuple[str, ...]] = {}

    def instruction_combos(self, instr: Instruction) -> Tuple[str, ...]:
        """Port-combination label of every micro-op of ``instr``."""
        combos = self._cache.get(instr)
        if combos is None:
            if instr.info.unsupported:
                # Unprofileable instructions never reach measurement,
                # but classification must not choke on a corpus that
                # contains them (the paper classifies, then profiles).
                combos = (RENAME_COMBO,)
            else:
                decomposed = self._decomposer.decompose(instr)
                if decomposed.uops:
                    combos = tuple(uop.combo for uop in decomposed.uops)
                else:
                    combos = (RENAME_COMBO,)
            self._cache[instr] = combos
        return combos

    def block_combos(self, block: BasicBlock) -> List[str]:
        """The block as a bag of micro-op port combinations."""
        out: List[str] = []
        for instr in block:
            out.extend(self.instruction_combos(instr))
        return out

    def vocabulary(self, blocks) -> List[str]:
        """All combinations observed across ``blocks`` (sorted)."""
        seen = set()
        for block in blocks:
            seen.update(self.block_combos(block))
        return sorted(seen)
