"""Port-usage inference by measurement (Abel & Reineke, §II).

The paper's classifier consumes Abel & Reineke's reverse-engineered
instruction→port mappings.  This module reproduces the *method* those
mappings come from, against our simulated machine as the black box:
saturate a candidate port set with single-port "blocker" instructions,
add copies of the instruction under test, and watch whether the
combined throughput grows.  If the instruction's micro-op can escape
to an unblocked port, the blockers hide it; if every port it can use
is saturated, each copy costs a full issue slot on the blocked ports.

The search walks candidate port sets smallest-first, so the inferred
set is minimal — exactly the A&R construction (their uops.info tables
were built from the same experiment on silicon).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.parser import parse_instruction
from repro.profiler.harness import BasicBlockProfiler
from repro.uarch.machine import Machine

#: Single-port blocker instructions, one list per saturated port.
#: Chosen to be (a) single-port on every modelled uarch, (b) free of
#: dependency chains (write-only destinations, disjoint from the
#: test-copy register pool), so the baseline is purely port-bound —
#: A&R's construction needs exactly this property.
BLOCKERS: Dict[int, List[str]] = {
    0: [f"movmskps %xmm9, %r{r}d" for r in (8, 9, 10)] * 3,
    1: [f"imul $3, %rbp, %r{r}" for r in (10, 11, 12, 13)] * 2,
    5: [f"pshufd $0x1b, %xmm9, %xmm{r}" for r in (6, 7, 8)] * 3,
}

#: All-ALU fallback when no blockable subset explains the behaviour.
FULL_ALU = {"haswell": (0, 1, 5, 6), "skylake": (0, 1, 5, 6),
            "ivybridge": (0, 1, 5)}


@dataclass(frozen=True)
class PortProbeResult:
    """Inferred port usage for one instruction."""

    instruction: str
    ports: Tuple[int, ...]
    #: Per-candidate-set measured slowdown (cycles per added copy).
    evidence: Tuple[Tuple[Tuple[int, ...], float], ...]

    @property
    def combo(self) -> str:
        return "p" + "".join(str(p) for p in self.ports)


class PortProber:
    """Infers port mappings from throughput measurements alone."""

    #: Test copies added on top of the saturated ports.
    N_TESTS = 4
    #: Confinement threshold, scaled by blocked-set size: a confined
    #: single-occupancy micro-op adds ~1/|S| cycles per copy when all
    #: |S| of its ports are saturated, ~0 when it can escape.
    THRESHOLD = 0.5

    def __init__(self, uarch: str = "haswell", seed: int = 0):
        self.uarch = uarch
        self.profiler = BasicBlockProfiler(Machine(uarch, seed=seed))
        self._blockers = BLOCKERS

    # ------------------------------------------------------------------

    def _blocker_instrs(self, port: int) -> List[Instruction]:
        return [parse_instruction(text)
                for text in self._blockers[port]]

    def _test_instrs(self, instr: Instruction, count: int
                     ) -> List[Instruction]:
        """Independent copies: registers rotated so the copies do not
        chain (a serial chain would hide port behaviour behind
        latency)."""
        return [self._rotate_registers(instr, k) for k in range(count)]

    @staticmethod
    def _rotate_registers(instr: Instruction, k: int) -> Instruction:
        from repro.isa.registers import lookup
        from repro.isa.operands import is_reg

        def rotate(op):
            if not is_reg(op):
                return op
            if op.is_vector:
                idx = int(op.base[3:])
                name = ("ymm" if op.width == 256 else "xmm") \
                    + str(12 + (idx + k) % 4)
                return lookup(name)
            if op.kind == "gpr" and op.width >= 32:
                pool = ("rax", "rbx", "rcx", "rdx", "r14", "r15")
                idx = pool.index(op.base) if op.base in pool else 0
                base = pool[(idx + k) % len(pool)]
                return lookup(base if op.width == 64
                              else {"rax": "eax", "rbx": "ebx",
                                    "rcx": "ecx", "rdx": "edx",
                                    "r14": "r14d", "r15": "r15d"}[base])
            return op

        return Instruction(instr.mnemonic,
                           tuple(rotate(op) for op in instr.operands))

    def _cycles(self, instrs: Sequence[Instruction]) -> Optional[float]:
        result = self.profiler.profile(BasicBlock(instrs,
                                                  source="port-probe"))
        return result.throughput if result.ok else None

    def slowdown(self, instr: Instruction,
                 ports: Sequence[int]) -> Optional[float]:
        """Extra cycles per test copy when ``ports`` are saturated."""
        blockers: List[Instruction] = []
        for port in ports:
            blockers.extend(self._blocker_instrs(port))
        base = self._cycles(blockers)
        combined = self._cycles(blockers
                                + self._test_instrs(instr, self.N_TESTS))
        if base is None or combined is None:
            return None
        return (combined - base) / self.N_TESTS

    # ------------------------------------------------------------------

    def infer(self, instruction) -> PortProbeResult:
        """Infer the (minimal blockable) port set of an instruction.

        Only compute micro-ops of register-operand instructions are
        probed (loads/stores would need p23/p4 blockers; the paper's
        tables cover those separately).
        """
        if isinstance(instruction, str):
            instruction = parse_instruction(instruction)
        candidates: List[Tuple[int, ...]] = []
        ports = sorted(self._blockers)
        for size in range(1, len(ports) + 1):
            candidates.extend(combinations(ports, size))

        evidence: List[Tuple[Tuple[int, ...], float]] = []
        found: Optional[Tuple[int, ...]] = None
        for candidate in candidates:
            delta = self.slowdown(instruction, candidate)
            if delta is None:
                continue
            evidence.append((candidate, round(delta, 3)))
            if found is None and delta >= self.THRESHOLD / len(candidate):
                found = candidate
        if found is None:
            found = FULL_ALU[self.uarch]
        return PortProbeResult(
            instruction=str(instruction),
            ports=tuple(found),
            evidence=tuple(evidence))

    def infer_many(self, instructions) -> List[PortProbeResult]:
        return [self.infer(i) for i in instructions]
