"""Command-line interface.

The real BHive ships shell tools around its harness; this module
provides the equivalents::

    python -m repro profile  block.s --uarch haswell
    python -m repro predict  block.s --model iaca --model llvm-mca
    python -m repro timings  add imul mulps --uarch skylake
    python -m repro ports    "mulps %xmm13, %xmm12"
    python -m repro corpus   --scale 0.002 --out suite.csv --measure
    python -m repro validate --scale 0.001 --uarch haswell
    python -m repro telemetry --scale 0.0005 --uarch haswell
    python -m repro top      trace.ndjson --follow
    python -m repro bench    check --tolerance 0.15
    python -m repro envvars

``block.s`` may be ``-`` for stdin.  Blocks are AT&T or Intel syntax,
auto-detected.

Every command accepts ``--trace FILE``: telemetry is enabled for the
run and the span/event stream is exported as NDJSON to ``FILE``
(autoflushed per record, so ``repro top FILE`` can watch the run
live; see docs/observability.md for the schema).  ``--heartbeat S``
adds a periodic progress snapshot event to the trace.  Corpus-scale
commands (``corpus --measure``, ``validate``, ``telemetry``) accept
``--jobs N`` to profile across N worker processes (default: every
core, or ``REPRO_JOBS``); results are bit-identical to ``--jobs 1``
(see docs/parallel.md) — including the per-window series ``--window``
/ ``REPRO_WINDOW`` cuts the run into.  ``--profile`` (corpus /
validate / telemetry) wraps each pipeline phase in cProfile and
reports the top cumulative hotspots.

Resilience flags (docs/robustness.md): ``--chaos SPEC`` arms seeded
deterministic fault injection; ``--strict`` / ``--salvage`` choose
whether quarantines fail the run or degrade; ``--resume`` (corpus /
validate) measures through the journaled shard cache so a killed run
continues from its completed shards.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.isa.parser import parse_block

_MODEL_NAMES = ("iaca", "llvm-mca", "osaca")


def _read_block(path: str):
    text = sys.stdin.read() if path == "-" else open(path).read()
    return parse_block(text)


def _resolve_jobs(args) -> int:
    """--jobs N, else REPRO_JOBS, else every core the host offers."""
    if getattr(args, "jobs", None):
        return max(1, args.jobs)
    from repro.parallel import default_jobs
    return default_jobs()


def _measured_resumable(args, corpus, jobs: int):
    """Measure through the journaled shard cache (``--resume``).

    Routes measurement through :class:`repro.eval.pipeline.Experiment`,
    whose shard cache + run journal make a killed run continue from
    its completed shards with byte-identical output.
    """
    from repro.eval.pipeline import Experiment
    experiment = Experiment(scale=args.scale, seed=args.seed,
                            jobs=jobs)
    return experiment.measured(args.uarch, corpus=corpus)


def _make_model(name: str):
    from repro.models import IacaModel, LlvmMcaModel, OsacaModel
    return {"iaca": IacaModel, "llvm-mca": LlvmMcaModel,
            "osaca": OsacaModel}[name]()


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def cmd_profile(args) -> int:
    from repro.profiler import profile_block
    block = _read_block(args.block)
    result = profile_block(block, uarch=args.uarch, seed=args.seed)
    if not result.ok:
        print(f"unprofileable: {result.failure.value}"
              + (f" ({result.detail})" if result.detail else ""))
        return 1
    print(f"throughput: {result.throughput:.2f} cycles/iteration "
          f"({args.uarch})")
    print(f"pages mapped: {result.pages_mapped}   "
          f"faults intercepted: {result.num_faults}")
    for m in result.measurements:
        print(f"  unroll={m.unroll}: {m.cycles} cycles, "
              f"{m.clean_runs}/{m.total_runs} clean runs")
    return 0


def cmd_predict(args) -> int:
    block = _read_block(args.block)
    names = args.model or list(_MODEL_NAMES)
    for name in names:
        model = _make_model(name)
        pred = model.predict_safe(block, args.uarch)
        if pred.ok:
            print(f"{model.name:9s} {pred.throughput:.2f}")
        else:
            print(f"{model.name:9s} -  ({pred.error})")
    return 0


def cmd_timings(args) -> int:
    from repro.profiler.latency import InstructionBenchmark
    bench = InstructionBenchmark(args.uarch, seed=args.seed)
    print(f"{'mnemonic':14s} {'latency':>8s} {'rthroughput':>12s}")
    for mnemonic in args.mnemonics:
        t = bench.measure(mnemonic)
        lat = "-" if t.latency is None else f"{t.latency:.2f}"
        rtp = "-" if t.reciprocal_throughput is None \
            else f"{t.reciprocal_throughput:.2f}"
        print(f"{mnemonic:14s} {lat:>8s} {rtp:>12s}")
    return 0


def cmd_ports(args) -> int:
    from repro.classify.portprobe import PortProber
    prober = PortProber(args.uarch, seed=args.seed)
    for text in args.instructions:
        result = prober.infer(text)
        print(f"{text:32s} -> {result.combo}")
        if args.verbose:
            for ports, delta in result.evidence:
                label = "p" + "".join(map(str, ports))
                print(f"    blocked {label:6s}: "
                      f"+{delta:.2f} cycles/copy")
    return 0


def _print_profile() -> None:
    """Dump collected ``--profile`` hotspots to stdout."""
    from repro.telemetry import profiling
    for name, data in sorted(profiling.profiles().items()):
        print(f"\nprofile: {name} ({data['total_ms']} ms, top "
              f"{len(data['top'])} by cumulative time)")
        for row in data["top"][:10]:
            print(f"  {row['cumtime_ms']:>10.1f} ms  "
                  f"{row['calls']:>8}  {row['function']}")


def _sample_fraction(args) -> Optional[float]:
    """--sample FRAC, else $REPRO_SAMPLE, else None (full corpus)."""
    from repro.corpus import sampling
    if getattr(args, "sample", None) is not None:
        fraction = args.sample
        if not 0.0 < fraction <= 1.0:
            raise SystemExit(f"error: --sample {fraction}: fraction "
                             "must be in (0, 1]")
        return fraction
    return sampling.sample_fraction()


def _stream_corpus_cmd(args) -> int:
    """``repro corpus --stream``: generate -> shard -> profile -> write
    without ever materialising the corpus.

    Records flow straight from the lazy generators through the
    streamed engine into an incremental writer; ``--sample`` threads
    an order-blind stratified filter into the stream; ``--resume``
    journals against a corpus *spec* digest (scale/seed/apps), since a
    stream cannot digest records it has not generated yet.
    """
    from repro.corpus import sampling, streaming
    from repro.corpus.io import StreamCsvWriter, StreamJsonWriter
    from repro.telemetry import profiling

    fraction = _sample_fraction(args)

    def source():
        records = streaming.iter_corpus(scale=args.scale,
                                        seed=args.seed)
        if fraction and fraction < 1.0:
            records = sampling.sample_stream(records, fraction,
                                             seed=args.seed)
        return records

    if args.out.endswith(".json"):
        writer = StreamJsonWriter(args.out, args.scale)
    else:
        writer = StreamCsvWriter(args.out, measured=args.measure)

    if not args.measure:
        blocks = 0
        with profiling.phase("corpus_stream"), writer:
            for record in source():
                writer.add(record)
                blocks += 1
        print(f"streamed {blocks} blocks")
        print(f"wrote {writer.written} blocks to {args.out}")
        if profiling.is_enabled():
            _print_profile()
        return 0

    jobs = _resolve_jobs(args)
    cache = journal = journal_meta = None
    if args.resume:
        from repro.eval.pipeline import JOURNAL_NAME, _shard_cache_dir
        from repro.parallel import ShardCache
        from repro.resilience.journal import RunJournal
        cache = ShardCache(_shard_cache_dir("stream", args.uarch,
                                            args.seed))
        journal = RunJournal(os.path.join(cache.directory,
                                          JOURNAL_NAME))
        journal_meta = {
            "uarch": args.uarch, "seed": args.seed,
            "stream": streaming.corpus_spec_digest(args.scale,
                                                   args.seed),
            "sample": fraction or 1.0,
        }

    totals = {"blocks": 0, "measured": 0}

    def on_shard(shard, profile) -> None:
        for record in shard.records:
            throughput = profile.throughputs.get(record.block_id)
            writer.add(record, throughput)
            totals["blocks"] += 1
            if throughput is not None:
                totals["measured"] += 1

    from repro.parallel import profile_corpus_streamed
    with profiling.phase(f"measure:stream:{args.uarch}"), writer:
        profile_corpus_streamed(
            source(), args.uarch, seed=args.seed, jobs=jobs,
            cache=cache, journal=journal, journal_meta=journal_meta,
            run_label=f"stream:{args.uarch}", on_shard=on_shard)
    print(f"measured {totals['measured']}/{totals['blocks']} blocks "
          f"on {args.uarch} ({jobs} jobs, streamed)")
    print(f"wrote {writer.written} blocks to {args.out}")
    if profiling.is_enabled():
        _print_profile()
    return 0


def cmd_corpus(args) -> int:
    from repro.corpus import build_corpus, sampling
    from repro.corpus.io import save_csv, save_json
    from repro.telemetry import profiling
    if getattr(args, "stream", False) \
            or os.environ.get("REPRO_STREAM", "").strip() == "1":
        return _stream_corpus_cmd(args)
    with profiling.phase("corpus_build"):
        corpus = build_corpus(scale=args.scale, seed=args.seed)
    fraction = _sample_fraction(args)
    if fraction and fraction < 1.0:
        corpus = sampling.sample_corpus(corpus, fraction,
                                        seed=args.seed)
        print(f"stratified sample: {len(corpus)} blocks "
              f"({fraction:.0%} per stratum)")
    measured = None
    if args.measure:
        jobs = _resolve_jobs(args)
        if args.resume:
            measured = _measured_resumable(args, corpus, jobs)
        else:
            from repro.parallel import profile_corpus_sharded
            with profiling.phase(f"measure:main:{args.uarch}"):
                measured = profile_corpus_sharded(
                    corpus, args.uarch, seed=args.seed,
                    jobs=jobs).throughputs
        print(f"measured {len(measured)}/{len(corpus)} blocks "
              f"on {args.uarch} ({jobs} jobs)")
    if args.out.endswith(".json"):
        save_json(args.out, corpus, measured)
        written = len(corpus)
    else:
        written = save_csv(args.out, corpus, measured)
    print(f"wrote {written} blocks to {args.out}")
    if profiling.is_enabled():
        _print_profile()
    return 0


def cmd_validate(args) -> int:
    from repro.corpus import build_corpus, sampling
    from repro.eval.reporting import format_table
    from repro.eval.validation import validate
    from repro.models import (IacaModel, IthemalModel, LlvmMcaModel,
                              OsacaModel)
    from repro.telemetry import profiling
    with profiling.phase("corpus_build"):
        corpus = build_corpus(scale=args.scale, seed=args.seed)
    # --sample FRAC: profile a stratified sample only, then project
    # the full-corpus error tables with bootstrap CIs.  The stratum
    # census below is cheap — it never profiles anything.
    fraction = _sample_fraction(args)
    full_counts = None
    if fraction and fraction < 1.0:
        with profiling.phase("corpus_sample"):
            full_counts = sampling.stratum_counts(corpus)
            corpus = sampling.sample_corpus(corpus, fraction,
                                            seed=args.seed)
    models = [IacaModel(), LlvmMcaModel(), IthemalModel(), OsacaModel()]
    jobs = _resolve_jobs(args)
    measured = None
    if args.resume:
        measured = _measured_resumable(args, corpus, jobs)
    elif jobs > 1:
        from repro.parallel import profile_corpus_sharded
        with profiling.phase(f"measure:main:{args.uarch}"):
            measured = profile_corpus_sharded(
                corpus, args.uarch, seed=args.seed,
                jobs=jobs).throughputs
    with profiling.phase(f"validate:{args.uarch}"):
        result = validate(corpus, args.uarch, models, seed=args.seed,
                          measured=measured)
    rows = [(m, round(result.overall_error(m), 4),
             round(result.weighted_overall_error(m), 4),
             round(result.kendall_tau(m), 4))
            for m in result.model_names]
    title = f"{args.uarch}: {len(result.rows)} blocks evaluated, " \
            f"{result.profiled_fraction:.1%} profiled"
    if full_counts is not None:
        title += f" ({fraction:.0%} stratified sample)"
    print(format_table(
        ["model", "avg error", "weighted", "tau"], rows, title=title))
    if full_counts is not None:
        projection = sampling.project_validation(
            result, corpus.records, full_counts, seed=args.seed)
        print()
        print(sampling.render_projection(projection))
    if profiling.is_enabled():
        _print_profile()
    return 0


def cmd_telemetry(args) -> int:
    """Instrumented pipeline run -> run report under reports/."""
    import json as json_mod

    from repro import telemetry
    from repro.eval.pipeline import Experiment
    if not telemetry.is_enabled():
        telemetry.enable()
    experiment = Experiment(scale=args.scale, seed=args.seed,
                            jobs=_resolve_jobs(args))
    experiment.validation(args.uarch)
    report = experiment.write_run_report(args.uarch,
                                         directory=args.report_dir)
    directory = args.report_dir or telemetry.default_report_dir()
    path = os.path.join(directory, report["report"] + ".json")
    if args.format == "json":
        print(json_mod.dumps(report, indent=2, sort_keys=True,
                             default=str))
    else:
        print(telemetry.render_summary(report))
        print(f"\nreport: {path}")
    return 0


def cmd_top(args) -> int:
    """Render (and optionally follow) a live NDJSON trace."""
    import time as time_mod

    from repro.telemetry import live
    if not args.follow:
        records, _ = live.read_records(args.trace_file)
        print(live.render_top(records))
        return 0
    follower = live.TraceFollower(args.trace_file)
    records, _ = follower.poll()
    try:
        while True:
            # Clear screen + home, like top(1).
            print("\x1b[2J\x1b[H" + live.render_top(records),
                  flush=True)
            time_mod.sleep(args.interval)
            fresh, restarted = follower.poll()
            if restarted:
                # Rotated/truncated trace: the accumulated view
                # describes a file that no longer exists.
                records = []
            records.extend(fresh)
    except KeyboardInterrupt:
        return 0


def cmd_serve(args) -> int:
    """Run the profiling daemon (see docs/service.md)."""
    from repro import telemetry
    from repro.serve.config import ServeConfig
    from repro.serve.daemon import run_daemon
    if bool(args.socket) == (args.port is not None):
        print("error: exactly one of --socket PATH / --port N "
              "is required", file=sys.stderr)
        return 2
    if not telemetry.get_telemetry().enabled:
        # Metrics-only collection so /v1/stats and the window metrics
        # work without --trace; --trace upgrades this to a full
        # NDJSON export (wired in main()).
        telemetry.enable()
    config = ServeConfig.from_env(
        socket=args.socket, port=args.port, host=args.host,
        jobs=_resolve_jobs(args),
        queue_size=args.queue, deadline_ms=args.deadline_ms,
        rate=args.rate, burst=args.burst, batch_size=args.batch,
        coalesce_ms=args.coalesce_ms, breaker_threshold=args.breaker,
        breaker_cooldown_s=args.breaker_cooldown, drain_s=args.drain,
        state_dir=args.state)
    run_daemon(config)
    return 0


def cmd_bench_check(args) -> int:
    """Gate benchmark JSONs against their floors (and a baseline)."""
    import json as json_mod

    from repro.telemetry import benchgate
    paths = args.files or benchgate.discover_bench_files()
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 2
    report = benchgate.run_gate(paths, tolerance=args.tolerance,
                                baseline_dir=args.against)
    if args.format == "json":
        print(json_mod.dumps(report, indent=2, sort_keys=True))
    else:
        print(benchgate.render_gate(report))
    return 0 if report["ok"] else 1


def cmd_envvars(args) -> int:
    """Print the REPRO_* environment-variable registry."""
    from repro import envvars
    return envvars.main(
        (["--group", args.group] if args.group else [])
        + ["--format", args.format])


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BHive reproduction: profile and predict x86-64 "
                    "basic block throughput on simulated machines.")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--uarch", default="haswell",
                       choices=("ivybridge", "haswell", "skylake"))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="enable telemetry and export the NDJSON "
                            "event stream to FILE (tail it live with "
                            "'repro top FILE')")
        p.add_argument("--heartbeat", type=float, metavar="SECS",
                       default=None,
                       help="with --trace: emit a progress snapshot "
                            "event every SECS seconds")
        p.add_argument("--no-fastpath", action="store_true",
                       help="disable the simulation-core fast path "
                            "(same results, slower; use with --trace "
                            "to debug a suspected divergence)")
        p.add_argument("--no-blockplan", action="store_true",
                       help="disable compiled block plans and run the "
                            "historical per-instruction interpreter "
                            "(same results, slower)")
        p.add_argument("--no-lanes", action="store_true",
                       help="disable batch-lane vectorized profiling "
                            "and profile every block scalar "
                            "(same results, slower)")
        p.add_argument("--triage", nargs="?", const="1", default=None,
                       metavar="TOL",
                       help="enable learned triage: blocks whose "
                            "surrogate prediction confirms their "
                            "journaled cached measurement (within "
                            "relative tolerance TOL, default 0.25) "
                            "replay the exact cached bytes instead of "
                            "re-simulating; novel/disagreeing blocks "
                            "run the full pipeline (also "
                            "$REPRO_TRIAGE / $REPRO_TRIAGE_TOL; see "
                            "docs/performance.md)")
        p.add_argument("--chaos", metavar="SPEC", default=None,
                       help="arm deterministic fault injection, e.g. "
                            "'42:worker_crash=0.2,disk_full=0.1' or "
                            "'7:all=0.05' (see docs/robustness.md; "
                            "also $REPRO_CHAOS)")
        mode = p.add_mutually_exclusive_group()
        mode.add_argument("--strict", action="store_true",
                          help="promote quarantines (corrupt cache "
                               "files, poisoned blocks, failed "
                               "writes) into run failures")
        mode.add_argument("--salvage", action="store_true",
                          help="degrade and continue on quarantines "
                               "(the default; overrides an inherited "
                               "$REPRO_STRICT)")

    def jobs_arg(p):
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for profiling (default: "
                            "os.cpu_count(), or $REPRO_JOBS); results "
                            "are bit-identical to --jobs 1")
        p.add_argument("--stream", action="store_true",
                       help="constant-memory pipeline: generate -> "
                            "shard -> profile -> fold -> discard with "
                            "a bounded prefetch queue (also "
                            "$REPRO_STREAM; results are bit-identical "
                            "to batch — see docs/performance.md)")
        p.add_argument("--resume", action="store_true",
                       help="measure through the journaled shard "
                            "cache: a previous run of the same "
                            "(scale, seed, uarch) killed mid-flight "
                            "continues from its completed shards, "
                            "with byte-identical output")
        p.add_argument("--window", type=int, default=None, metavar="N",
                       help="blocks per live-telemetry window "
                            "(default: 64, or $REPRO_WINDOW); the "
                            "per-window series is identical whatever "
                            "--jobs is")
        p.add_argument("--profile", action="store_true",
                       help="cProfile each pipeline phase and report "
                            "the top cumulative hotspots")

    p = sub.add_parser("profile", help="measure a basic block")
    p.add_argument("block", help="assembly file, or - for stdin")
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("predict", help="run cost models on a block")
    p.add_argument("block")
    p.add_argument("--model", action="append",
                   choices=_MODEL_NAMES)
    common(p)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("timings",
                       help="per-instruction latency/throughput")
    p.add_argument("mnemonics", nargs="+")
    common(p)
    p.set_defaults(func=cmd_timings)

    p = sub.add_parser("ports", help="infer port usage by measurement")
    p.add_argument("instructions", nargs="+")
    p.add_argument("-v", "--verbose", action="store_true")
    common(p)
    p.set_defaults(func=cmd_ports)

    def sample_arg(p):
        p.add_argument("--sample", type=float, default=None,
                       metavar="FRAC",
                       help="profile a deterministic stratified "
                            "sample (app x block category, seeded, "
                            "order-blind) of FRAC of the corpus; "
                            "validate projects full-corpus error "
                            "tables with bootstrap confidence "
                            "intervals (also $REPRO_SAMPLE)")

    p = sub.add_parser("corpus", help="synthesise the benchmark suite")
    p.add_argument("--scale", type=float, default=0.001)
    p.add_argument("--out", default="bhive.csv")
    p.add_argument("--measure", action="store_true",
                   help="profile every block and include throughputs")
    common(p)
    jobs_arg(p)
    sample_arg(p)
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("validate", help="run the Table V pipeline")
    p.add_argument("--scale", type=float, default=0.001)
    common(p)
    jobs_arg(p)
    sample_arg(p)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("telemetry",
                       help="run an instrumented pipeline and write a "
                            "run report")
    p.add_argument("--scale", type=float, default=0.0005)
    p.add_argument("--report-dir", default=None,
                   help="where to write the report "
                        "(default: reports/, or $REPRO_REPORT_DIR)")
    p.add_argument("--format", choices=("text", "json"),
                   default="text",
                   help="print the run report as a summary (text) or "
                        "as the full JSON document")
    common(p)
    jobs_arg(p)
    p.set_defaults(func=cmd_telemetry)

    p = sub.add_parser("top",
                       help="render a live view of an NDJSON trace "
                            "(phase, windowed throughput, cache hit "
                            "rates, ETA)")
    p.add_argument("trace_file",
                   help="NDJSON trace being written by --trace "
                        "(autoflushed, so in-flight runs render)")
    p.add_argument("-f", "--follow", action="store_true",
                   help="keep re-rendering as records arrive "
                        "(Ctrl-C to stop)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="refresh period for --follow (seconds)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("serve",
                       help="run the profiling daemon: accept block "
                            "requests over HTTP (Unix socket or TCP), "
                            "coalesce them into content-addressed "
                            "batches, answer from the shared shard "
                            "cache (see docs/service.md)")
    listen = p.add_mutually_exclusive_group(required=True)
    listen.add_argument("--socket", metavar="PATH", default=None,
                        help="listen on a Unix-domain socket at PATH")
    listen.add_argument("--port", type=int, metavar="N", default=None,
                        help="listen on TCP port N (loopback by "
                             "default; see --bind)")
    p.add_argument("--bind", dest="host", default="127.0.0.1",
                   metavar="ADDR",
                   help="TCP bind address for --port "
                        "(default 127.0.0.1)")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes per batch (default: "
                        "os.cpu_count(), or $REPRO_JOBS); results are "
                        "bit-identical whatever N is")
    p.add_argument("--queue", type=int, default=None, metavar="N",
                   help="admission queue capacity; a full queue sheds "
                        "with 429 + retry-after (default 64, or "
                        "$REPRO_SERVE_QUEUE)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   metavar="MS",
                   help="default per-request deadline when the client "
                        "sends none (default 30000, or "
                        "$REPRO_SERVE_DEADLINE_MS)")
    p.add_argument("--rate", type=float, default=None, metavar="R",
                   help="per-client token-bucket refill rate in "
                        "requests/second; 0 disables rate limits "
                        "(default 0, or $REPRO_SERVE_RATE)")
    p.add_argument("--burst", type=int, default=None, metavar="N",
                   help="token-bucket burst capacity (default 16, or "
                        "$REPRO_SERVE_BURST)")
    p.add_argument("--batch", type=int, default=None, metavar="N",
                   help="max requests coalesced into one engine batch "
                        "(default 64, or $REPRO_SERVE_BATCH)")
    p.add_argument("--coalesce-ms", type=float, default=None,
                   metavar="MS",
                   help="how long the batcher lingers for more "
                        "requests to coalesce (default 5, or "
                        "$REPRO_SERVE_COALESCE_MS)")
    p.add_argument("--breaker", type=int, default=None, metavar="N",
                   help="consecutive worker-trouble batches before "
                        "the circuit breaker opens and batches run "
                        "scalar (default 3, or $REPRO_SERVE_BREAKER)")
    p.add_argument("--breaker-cooldown", type=float, default=None,
                   metavar="SECS",
                   help="seconds the breaker stays open before a "
                        "half-open probe (default 5, or "
                        "$REPRO_SERVE_BREAKER_COOLDOWN_S)")
    p.add_argument("--drain", type=float, default=None, metavar="SECS",
                   help="ceiling on the graceful SIGTERM drain "
                        "(default 10, or $REPRO_SERVE_DRAIN_S)")
    p.add_argument("--state", metavar="DIR", default=None,
                   help="state directory: request journal + per-uarch "
                        "shard caches (default <cache>/serve, or "
                        "$REPRO_SERVE_STATE)")
    common(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("bench", help="benchmark-result tooling")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    p = bench_sub.add_parser(
        "check",
        help="perf-regression gate over committed BENCH_*.json")
    p.add_argument("files", nargs="*",
                   help="benchmark JSONs to gate (default: "
                        "./BENCH_*.json)")
    p.add_argument("--tolerance", type=float, default=0.10,
                   help="relative drop allowed before failing "
                        "(default 0.10)")
    p.add_argument("--against", metavar="DIR", default=None,
                   help="directory of baseline BENCH_*.json to "
                        "compare per-metric against")
    p.add_argument("--format", choices=("text", "json"),
                   default="text")
    p.set_defaults(func=cmd_bench_check, command="bench")

    p = sub.add_parser("envvars",
                       help="print the REPRO_* environment-variable "
                            "registry (the docs' tables are generated "
                            "from it)")
    p.add_argument("--group", default=None,
                   choices=("pipeline", "performance", "robustness",
                            "observability", "serve", "bench"))
    p.add_argument("--format", choices=("table", "json"),
                   default="table")
    p.set_defaults(func=cmd_envvars)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro import telemetry
    args = build_parser().parse_args(argv)
    if getattr(args, "no_fastpath", False):
        # Exported (not set programmatically) so worker processes
        # spawned by --jobs inherit the setting.
        os.environ["REPRO_NO_FASTPATH"] = "1"
    if getattr(args, "no_blockplan", False):
        os.environ["REPRO_NO_BLOCKPLAN"] = "1"
    if getattr(args, "no_lanes", False):
        os.environ["REPRO_NO_LANES"] = "1"
    if getattr(args, "stream", False):
        # Exported so pool workers and nested engine calls (e.g. the
        # Experiment behind --resume) all take the streamed path.
        os.environ["REPRO_STREAM"] = "1"
    if getattr(args, "triage", None) is not None:
        # Exported so pool workers route (and journal) consistently
        # with the parent.
        if args.triage != "1":
            try:
                tol = float(args.triage)
            except ValueError:
                tol = -1.0
            if tol <= 0.0:
                print(f"error: --triage {args.triage!r}: tolerance "
                      "must be a positive number", file=sys.stderr)
                return 2
            os.environ["REPRO_TRIAGE_TOL"] = args.triage
        os.environ["REPRO_TRIAGE"] = "1"
    if getattr(args, "chaos", None):
        from repro.resilience import ChaosPolicy, ChaosSpecError
        try:
            ChaosPolicy.parse(args.chaos)  # fail fast on a bad spec
        except ChaosSpecError as exc:
            print(f"error: --chaos {args.chaos!r}: {exc}",
                  file=sys.stderr)
            return 2
        os.environ["REPRO_CHAOS"] = args.chaos
    if getattr(args, "strict", False):
        os.environ["REPRO_STRICT"] = "1"
    elif getattr(args, "salvage", False):
        os.environ["REPRO_STRICT"] = "0"
    if getattr(args, "window", None):
        # Exported so pool workers and the window aggregator agree.
        os.environ["REPRO_WINDOW"] = str(max(1, args.window))
    if getattr(args, "profile", False):
        from repro.telemetry import profiling
        profiling.enable()
    trace = getattr(args, "trace", None)
    heartbeat = None
    if trace:
        # Autoflush so `repro top FILE` can watch the run in flight.
        telemetry.enable(telemetry.NdjsonSink(trace, autoflush=True))
        if getattr(args, "heartbeat", None):
            from repro.telemetry import live
            heartbeat = live.Heartbeat(args.heartbeat).start()
    try:
        with telemetry.span(f"cli.{args.command}"):
            return args.func(args)
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if trace:
            telemetry.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
