"""The benchmark suite: synthetic application corpora + known blocks."""

from repro.corpus.appspec import PATHOLOGICAL, TEMPLATES, ApplicationSpec
from repro.corpus.dataset import (DEFAULT_APPS, GOOGLE_APPS, TABLE3_APPS,
                                  BlockRecord, Corpus, build_application,
                                  build_corpus, build_google_corpus,
                                  get_spec)
from repro.corpus.known_blocks import (div_block, gzip_crc_block,
                                       tensorflow_ablation_block,
                                       zero_idiom_block)
from repro.corpus.sampling import (block_category, project_validation,
                                   sample_corpus, sample_stream,
                                   stratum, stratum_counts)
from repro.corpus.streaming import (corpus_spec_digest, default_prefetch,
                                    iter_application, iter_corpus,
                                    stream_enabled)
from repro.corpus.synthesis import BlockSynthesizer
from repro.corpus.tracing import assign_frequencies

__all__ = [
    "ApplicationSpec", "TEMPLATES", "PATHOLOGICAL",
    "BlockRecord", "Corpus", "BlockSynthesizer",
    "build_application", "build_corpus", "build_google_corpus",
    "get_spec", "assign_frequencies",
    "DEFAULT_APPS", "GOOGLE_APPS", "TABLE3_APPS",
    "div_block", "gzip_crc_block", "tensorflow_ablation_block",
    "zero_idiom_block",
    # streaming generation + stratified sampling
    "iter_application", "iter_corpus", "corpus_spec_digest",
    "stream_enabled", "default_prefetch",
    "block_category", "stratum", "stratum_counts",
    "sample_stream", "sample_corpus", "project_validation",
]
