"""Application workload specifications.

The paper extracts blocks from nine open-source applications (plus
OpenSSL, and Spanner/Dremel for the production case study) with
DynamoRIO.  We cannot run those binaries here, so each application is
described by an :class:`ApplicationSpec` — a statistical profile of
its basic blocks (instruction-mix weights over synthesis templates,
block-length distribution, share of register-only blocks, share of
pathological blocks) — and blocks are synthesised from the profile
with a seeded generator.

The profiles were set from the paper's own observations: general
purpose C/C++ code (LLVM, Redis, SQLite, Gzip) is memory-heavy and
non-vectorized; OpenBLAS/TensorFlow/Eigen/Embree/FFmpeg carry
hand-optimised vector kernels with long unrolled bodies; OpenSSL and
Gzip are bit-manipulation heavy; Spanner and Dremel spend ~40–50% of
their time in load-dominated blocks with more vectorised code than the
OSS general-purpose apps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Synthesis template names understood by
#: :class:`repro.corpus.synthesis.BlockSynthesizer`.
TEMPLATES: Tuple[str, ...] = (
    "alu", "mov_rr", "mov_imm", "lea", "load", "store", "store_burst",
    "load_burst", "copy", "rmw", "load_alu", "bitmanip", "mul", "div",
    "cmov_set", "stack", "zero_idiom", "table_lookup", "pointer_walk",
    "vec_scalar_fp", "vec_fp", "vec_fp_avx", "fma", "vec_int",
    "vec_int_avx", "shuffle", "cvt", "vec_load", "vec_store",
    "compare",
)

#: Rare pathological templates (injected at block level, not drawn
#: from the mix).
PATHOLOGICAL: Tuple[str, ...] = (
    "unsupported", "invalid_mem", "page_stride", "div_zero",
    "subnormal_kernel", "misaligned_vec",
)


@dataclass(frozen=True)
class ApplicationSpec:
    """Statistical profile of one source application."""

    name: str
    domain: str
    #: Block count reported in the paper's Table III (0 when the app is
    #: outside that table, e.g. OpenSSL / Spanner / Dremel).
    paper_blocks: int
    #: Template -> weight; normalised at synthesis time.
    mix: Dict[str, float]
    #: Block count to synthesise (before scaling) for apps outside
    #: Table III; ignored when ``paper_blocks`` is set.
    nominal_blocks: int = 0
    #: Log-normal block length parameters (of instruction count).
    length_mu: float = 1.6
    length_sigma: float = 0.55
    min_length: int = 1
    max_length: int = 24
    #: Fraction of blocks synthesised with no memory templates at all.
    register_only_fraction: float = 0.15
    #: Fraction of long "unrolled kernel" blocks (these are what breaks
    #: naive 100x unrolling in Table I).
    long_kernel_fraction: float = 0.0
    long_kernel_length: Tuple[int, int] = (70, 140)
    #: Per-pathology injection probabilities.
    pathology: Dict[str, float] = field(default_factory=dict)
    #: Zipf exponent for execution-frequency assignment.
    zipf_exponent: float = 1.4
    #: Extra execution-frequency weight for vector-heavy blocks: in
    #: kernel applications (OpenBLAS, TensorFlow, Embree) the hot inner
    #: loops *are* the vector kernels, so dynamic-frequency weighting
    #: must concentrate on them (Fig. 4's "TensorFlow and OpenBLAS
    #: spent most of time executing vectorized basic blocks").
    hot_kernel_bias: float = 0.0

    def normalized_mix(self) -> Dict[str, float]:
        unknown = set(self.mix) - set(TEMPLATES)
        if unknown:
            raise ValueError(f"{self.name}: unknown templates {unknown}")
        total = sum(self.mix.values())
        return {k: v / total for k, v in self.mix.items()}

    def memory_free_mix(self) -> Dict[str, float]:
        """The mix restricted to register-only templates."""
        memory_templates = {
            "load", "store", "store_burst", "load_burst", "copy", "rmw",
            "load_alu", "stack", "table_lookup", "pointer_walk",
            "vec_load", "vec_store",
        }
        mix = {k: v for k, v in self.normalized_mix().items()
               if k not in memory_templates}
        if not mix:
            mix = {"alu": 1.0}
        total = sum(mix.values())
        return {k: v / total for k, v in mix.items()}
