"""Corpus assembly: the benchmark suite itself.

``build_corpus`` synthesises every application's blocks at a chosen
scale of the paper's counts (Table III: 358,561 blocks across nine
applications — full scale is feasible but slow in a pure-Python
simulator, so benches default to ``scale≈1/100``) and attaches
execution frequencies from the simulated dynamic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.corpus.appspec import ApplicationSpec
from repro.isa.instruction import BasicBlock

#: Table III applications in paper order.
TABLE3_APPS: Tuple[str, ...] = (
    "openblas", "redis", "sqlite", "gzip", "tensorflow", "llvm",
    "eigen", "embree", "ffmpeg",
)

#: Applications included in the default corpus (Table III + OpenSSL,
#: which the paper collects and shows in its figures).
DEFAULT_APPS: Tuple[str, ...] = TABLE3_APPS + ("openssl",)

#: Google production applications (§V case study).
GOOGLE_APPS: Tuple[str, ...] = ("spanner", "dremel")


def get_spec(name: str) -> ApplicationSpec:
    """Look up an application spec by name."""
    import importlib
    module = importlib.import_module(f"repro.corpus.generators.{name}")
    return module.SPEC


@dataclass(frozen=True)
class BlockRecord:
    """One corpus entry: a block plus its provenance and frequency."""

    block: BasicBlock
    application: str
    frequency: int
    block_id: int


@dataclass
class Corpus:
    """An ordered collection of block records."""

    records: List[BlockRecord] = field(default_factory=list)
    scale: float = 1.0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx) -> BlockRecord:
        return self.records[idx]

    @property
    def blocks(self) -> List[BasicBlock]:
        return [r.block for r in self.records]

    def applications(self) -> List[str]:
        seen: Dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.application, None)
        return list(seen)

    def by_application(self) -> Dict[str, List[BlockRecord]]:
        grouped: Dict[str, List[BlockRecord]] = {}
        for r in self.records:
            grouped.setdefault(r.application, []).append(r)
        return grouped

    def counts(self) -> Dict[str, int]:
        return {app: len(records)
                for app, records in self.by_application().items()}

    def subset(self, applications: Iterable[str]) -> "Corpus":
        wanted = set(applications)
        return Corpus([r for r in self.records
                       if r.application in wanted], scale=self.scale)

    def top_by_frequency(self, k: int) -> "Corpus":
        """The k most frequently executed blocks (the §V protocol)."""
        ordered = sorted(self.records, key=lambda r: -r.frequency)
        return Corpus(ordered[:k], scale=self.scale)


def _target_count(spec: ApplicationSpec, scale: float) -> int:
    base = spec.paper_blocks or spec.nominal_blocks
    return max(8, int(round(base * scale)))


def build_application(name: str, scale: float = 0.01,
                      seed: int = 0,
                      count: Optional[int] = None) -> Corpus:
    """Synthesise one application's blocks with frequencies.

    A thin wrapper around :func:`repro.corpus.streaming.iter_application`
    — batch and streamed pipelines consume the same records in the
    same order by construction.
    """
    from repro.corpus.streaming import iter_application
    return Corpus(list(iter_application(name, scale=scale, seed=seed,
                                        count=count)), scale=scale)


def build_corpus(scale: float = 0.01, seed: int = 0,
                 applications: Sequence[str] = DEFAULT_APPS) -> Corpus:
    """Synthesise the full benchmark suite at ``scale`` of Table III.

    A thin wrapper around :func:`repro.corpus.streaming.iter_corpus`;
    see there for the lazy counterpart a ``--stream`` run consumes.
    """
    from repro.corpus.streaming import iter_corpus
    return Corpus(list(iter_corpus(scale=scale, seed=seed,
                                   applications=applications)),
                  scale=scale)


def build_google_corpus(scale: float = 0.01,
                        seed: int = 0) -> Dict[str, Corpus]:
    """Spanner and Dremel corpora (the paper profiles the 100k most
    frequently executed blocks of each; scaled here)."""
    result = {}
    for name in GOOGLE_APPS:
        app = build_application(name, scale=scale, seed=seed)
        top_k = max(16, int(round(100_000 * scale)))
        result[name] = app.top_by_frequency(top_k)
    return result
