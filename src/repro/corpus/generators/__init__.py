"""Per-application workload specifications (one module per app)."""
