"""Dremel: Google's interactive ad-hoc query system (production).

Proprietary — synthesised from the composition the paper reports
(Fig. 13): ~50% of (frequency-weighted) time in load-dominated blocks
(columnar scans), plus partially-vectorised predicate/aggregation code.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="dremel",
    domain="Query Engine",
    paper_blocks=0,
    nominal_blocks=100000,
    mix={
        "alu": 0.12, "compare": 0.05, "mov_rr": 0.04, "mov_imm": 0.025,
        "lea": 0.04, "load": 0.28, "load_burst": 0.075, "store": 0.035,
        "store_burst": 0.02, "copy": 0.03, "rmw": 0.012, "load_alu": 0.05,
        "bitmanip": 0.04, "mul": 0.006, "div": 0.002,
        "cmov_set": 0.03, "stack": 0.015, "zero_idiom": 0.018,
        "table_lookup": 0.04, "pointer_walk": 0.055,
        "vec_scalar_fp": 0.03, "vec_fp": 0.05, "vec_int": 0.04,
        "shuffle": 0.012, "cvt": 0.012, "vec_load": 0.02,
        "vec_store": 0.008,
    },
    length_mu=1.55, length_sigma=0.6, max_length=24,
    register_only_fraction=0.11,
    long_kernel_fraction=0.01,
    pathology={"unsupported": 0.012, "invalid_mem": 0.01,
               "page_stride": 0.012, "div_zero": 0.003,
               "misaligned_vec": 0.0054},
    zipf_exponent=1.55,
    hot_kernel_bias=2.5,
)
