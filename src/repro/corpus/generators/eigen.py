"""Eigen: C++ template scientific computing.

Evaluated by the paper on sparse kernels (SPMM/SPMV): index-indirect
loads (gather-style through integer index arrays) mixed with vector
arithmetic — plus expression-template scalar glue.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="eigen",
    domain="Scientific Computing",
    paper_blocks=4545,
    mix={
        "alu": 0.12, "compare": 0.04, "mov_rr": 0.04, "mov_imm": 0.02,
        "lea": 0.05, "load": 0.09, "store": 0.04, "rmw": 0.01,
        "bitmanip": 0.02, "cmov_set": 0.015, "zero_idiom": 0.02,
        "table_lookup": 0.09, "pointer_walk": 0.05,
        "vec_scalar_fp": 0.09, "vec_fp": 0.12, "vec_fp_avx": 0.06,
        "fma": 0.07, "shuffle": 0.04, "cvt": 0.025,
        "vec_load": 0.07, "vec_store": 0.03,
    },
    length_mu=1.8, length_sigma=0.6, max_length=36,
    register_only_fraction=0.12,
    long_kernel_fraction=0.06,
    pathology={"unsupported": 0.01, "invalid_mem": 0.01,
               "page_stride": 0.014, "div_zero": 0.002,
               "misaligned_vec": 0.0060, "subnormal_kernel": 0.003},
    zipf_exponent=1.7,
    hot_kernel_bias=3.0,
)
