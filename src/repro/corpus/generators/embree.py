"""Embree: ray tracing (ispc).

ispc compiles to wide SIMD: almost everything is vectorised — packed
FP arithmetic, masks/blends, shuffles, gather-style lookups for BVH
traversal.  Purely-vector blocks (category 2) largely come from here
and from OpenBLAS/TensorFlow.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="embree",
    domain="Ray Tracing",
    paper_blocks=12602,
    mix={
        "alu": 0.07, "compare": 0.025, "mov_rr": 0.03, "mov_imm": 0.015,
        "lea": 0.03, "load": 0.025, "store": 0.02, "zero_idiom": 0.02,
        "table_lookup": 0.03, "pointer_walk": 0.03,
        "vec_scalar_fp": 0.05, "vec_fp": 0.16, "vec_fp_avx": 0.12,
        "fma": 0.1, "vec_int": 0.07, "vec_int_avx": 0.02,
        "shuffle": 0.1, "cvt": 0.03, "vec_load": 0.08,
        "vec_store": 0.04,
    },
    length_mu=1.9, length_sigma=0.6, max_length=40,
    register_only_fraction=0.10,
    long_kernel_fraction=0.06,
    pathology={"unsupported": 0.009, "invalid_mem": 0.009,
               "page_stride": 0.012, "div_zero": 0.001,
               "misaligned_vec": 0.0075, "subnormal_kernel": 0.002},
    zipf_exponent=1.75,
    hot_kernel_bias=5.0,
)
