"""FFmpeg: multimedia (C + handwritten SIMD assembly).

Pixel pipelines: packed *integer* SIMD (SAD, averaging, saturation),
byte shuffles, strided loads over image rows, and scalar bitstream
parsing; the handwritten assembly also contributes unusual instruction
forms (some of which trip OSACA's parser).
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="ffmpeg",
    domain="Multimedia",
    paper_blocks=17150,
    mix={
        "alu": 0.13, "compare": 0.04, "mov_rr": 0.05, "mov_imm": 0.03,
        "lea": 0.04, "load": 0.09, "store": 0.05, "store_burst": 0.02, "copy": 0.05,
        "rmw": 0.015, "load_alu": 0.03, "bitmanip": 0.07, "mul": 0.01,
        "div": 0.003, "cmov_set": 0.02, "stack": 0.015,
        "zero_idiom": 0.025, "table_lookup": 0.04,
        "pointer_walk": 0.05, "vec_scalar_fp": 0.015, "vec_fp": 0.03,
        "vec_int": 0.13, "vec_int_avx": 0.02, "shuffle": 0.07,
        "cvt": 0.015, "vec_load": 0.05, "vec_store": 0.025,
    },
    length_mu=1.75, length_sigma=0.6, max_length=36,
    register_only_fraction=0.13,
    long_kernel_fraction=0.05,
    pathology={"unsupported": 0.02, "invalid_mem": 0.011,
               "page_stride": 0.014, "div_zero": 0.004,
               "misaligned_vec": 0.0105, "subnormal_kernel": 0.001},
    zipf_exponent=1.6,
    hot_kernel_bias=2.0,
)
