"""Gzip: compression (C).

Bit-manipulation dominated — shift/mask chains for Huffman coding and
the CRC table lookups of the paper's motivating example.  Small blocks
with table lookups and byte loads.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="gzip",
    domain="Compression",
    paper_blocks=2272,
    mix={
        "alu": 0.2, "compare": 0.07, "mov_rr": 0.07, "mov_imm": 0.04,
        "lea": 0.04, "load": 0.08, "store": 0.06, "store_burst": 0.03,
        "rmw": 0.02, "load_alu": 0.05, "bitmanip": 0.27,
        "mul": 0.005, "cmov_set": 0.02, "stack": 0.02,
        "zero_idiom": 0.02, "table_lookup": 0.05,
        "pointer_walk": 0.045,
    },
    length_mu=1.55, length_sigma=0.55, max_length=18,
    register_only_fraction=0.16,
    pathology={"unsupported": 0.012, "invalid_mem": 0.01,
               "page_stride": 0.014, "div_zero": 0.004,
               "misaligned_vec": 0.0045},
    zipf_exponent=1.6,
)
