"""Clang/LLVM: the corpus's largest source (compiler, C++).

General-purpose code: heavy scalar ALU and pointer traffic, virtually
no vectorisation, many small blocks (visitor patterns, switch
dispatch), frequent stores from object construction/spills.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="llvm",
    domain="Compiler",
    paper_blocks=212758,
    mix={
        "alu": 0.15, "compare": 0.07, "mov_rr": 0.08, "mov_imm": 0.05,
        "lea": 0.07, "load": 0.155, "load_burst": 0.05, "store": 0.06,
        "store_burst": 0.05, "copy": 0.04, "rmw": 0.02, "load_alu": 0.04,
        "bitmanip": 0.04, "mul": 0.012, "div": 0.004,
        "cmov_set": 0.035, "stack": 0.035, "zero_idiom": 0.03,
        "table_lookup": 0.025, "pointer_walk": 0.03,
        "vec_scalar_fp": 0.008, "vec_load": 0.004, "cvt": 0.003,
    },
    length_mu=1.55, length_sigma=0.6, max_length=22,
    register_only_fraction=0.20,
    long_kernel_fraction=0.0,
    pathology={"unsupported": 0.025, "invalid_mem": 0.018,
               "page_stride": 0.023, "div_zero": 0.006,
               "misaligned_vec": 0.0051, "subnormal_kernel": 0.0005},
    zipf_exponent=1.35,
)
