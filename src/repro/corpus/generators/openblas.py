"""OpenBLAS: scientific computing (hand-written assembly kernels).

GEMM/GEMV inner loops: long unrolled bodies of packed FP multiply-add
with streaming vector loads — the blocks whose 100x-unrolled footprint
overflows L1I and motivates the paper's two-unroll-factor technique.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="openblas",
    domain="Scientific Computing",
    paper_blocks=19032,
    mix={
        "alu": 0.06, "compare": 0.02, "mov_rr": 0.02, "mov_imm": 0.01,
        "lea": 0.03, "load": 0.035, "store": 0.02, "rmw": 0.005,
        "bitmanip": 0.01, "zero_idiom": 0.02, "pointer_walk": 0.05,
        "vec_scalar_fp": 0.06, "vec_fp": 0.17, "vec_fp_avx": 0.13,
        "fma": 0.15, "vec_int": 0.02, "shuffle": 0.06, "cvt": 0.02,
        "vec_load": 0.11, "vec_store": 0.05,
    },
    length_mu=2.0, length_sigma=0.7, max_length=48,
    register_only_fraction=0.10,
    long_kernel_fraction=0.12,
    long_kernel_length=(70, 150),
    pathology={"unsupported": 0.008, "invalid_mem": 0.008,
               "page_stride": 0.012, "div_zero": 0.001,
               "misaligned_vec": 0.0090, "subnormal_kernel": 0.004},
    zipf_exponent=1.9,
    hot_kernel_bias=5.0,
)
