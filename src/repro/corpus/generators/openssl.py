"""OpenSSL: cryptography (C + handwritten assembly).

Rotate/xor/shift-heavy rounds (SHA, ChaCha) with long register-only
stretches — the paper notes IACA is consistently accurate here, and
Fig. 4 shows Gzip/OpenSSL dominated by bit-manipulation categories.
Not part of Table III's nine rows; included for the figures.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="openssl",
    domain="Cryptography",
    paper_blocks=0,          # outside Table III
    nominal_blocks=14000,
    mix={
        "alu": 0.27, "compare": 0.04, "mov_rr": 0.08, "mov_imm": 0.05,
        "lea": 0.035, "load": 0.06, "load_burst": 0.01, "store": 0.045,
        "store_burst": 0.02, "rmw": 0.015, "load_alu": 0.035,
        "bitmanip": 0.31, "mul": 0.015, "cmov_set": 0.015,
        "stack": 0.015, "zero_idiom": 0.02, "table_lookup": 0.025,
        "pointer_walk": 0.02, "vec_int": 0.025,
    },
    length_mu=1.9, length_sigma=0.55, max_length=28,
    register_only_fraction=0.35,
    long_kernel_fraction=0.01,
    pathology={"unsupported": 0.012, "invalid_mem": 0.008,
               "page_stride": 0.01, "div_zero": 0.002,
               "misaligned_vec": 0.0030},
    zipf_exponent=1.7,
)
