"""Redis: in-memory database (C).

Pointer-chasing through dict/skiplist structures, string handling
(byte loads, bit tests), moderate stores; no vector code to speak of.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="redis",
    domain="Database",
    paper_blocks=9343,
    mix={
        "alu": 0.2, "compare": 0.08, "mov_rr": 0.07, "mov_imm": 0.05,
        "lea": 0.06, "load": 0.17, "load_burst": 0.05, "store": 0.07,
        "store_burst": 0.06, "copy": 0.05, "rmw": 0.03, "load_alu": 0.05,
        "bitmanip": 0.045, "mul": 0.01, "div": 0.004,
        "cmov_set": 0.03, "stack": 0.03, "zero_idiom": 0.025,
        "table_lookup": 0.03, "pointer_walk": 0.045,
    },
    length_mu=1.5, length_sigma=0.6, max_length=20,
    register_only_fraction=0.13,
    pathology={"unsupported": 0.016, "invalid_mem": 0.012,
               "page_stride": 0.018, "div_zero": 0.005,
               "misaligned_vec": 0.0054},
    zipf_exponent=1.45,
)
