"""Spanner: Google's globally distributed database (production).

Proprietary — synthesised from the composition the paper reports
(Fig. 13): ~40% of (frequency-weighted) time in load-dominated blocks
(category 6), noticeably more partially-vectorised code (category 1)
than open-source general-purpose applications.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="spanner",
    domain="Distributed Database",
    paper_blocks=0,
    nominal_blocks=100000,
    mix={
        "alu": 0.14, "compare": 0.05, "mov_rr": 0.05, "mov_imm": 0.03,
        "lea": 0.05, "load": 0.23, "load_burst": 0.06, "store": 0.045,
        "store_burst": 0.025, "copy": 0.03, "rmw": 0.015, "load_alu": 0.05,
        "bitmanip": 0.035, "mul": 0.008, "div": 0.002,
        "cmov_set": 0.025, "stack": 0.02, "zero_idiom": 0.02,
        "table_lookup": 0.04, "pointer_walk": 0.05,
        "vec_scalar_fp": 0.04, "vec_fp": 0.055, "vec_int": 0.035,
        "shuffle": 0.015, "cvt": 0.01, "vec_load": 0.025,
        "vec_store": 0.01,
    },
    length_mu=1.6, length_sigma=0.6, max_length=26,
    register_only_fraction=0.12,
    long_kernel_fraction=0.01,
    pathology={"unsupported": 0.012, "invalid_mem": 0.01,
               "page_stride": 0.012, "div_zero": 0.003,
               "misaligned_vec": 0.0054},
    zipf_exponent=1.5,
    hot_kernel_bias=2.5,
)
