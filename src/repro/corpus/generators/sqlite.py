"""SQLite: embedded database (C).

Its VDBE bytecode interpreter gives dense load/compare/branch-feeding
blocks; B-tree code adds pointer walks and record (de)serialisation
stores.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="sqlite",
    domain="Database",
    paper_blocks=8871,
    mix={
        "alu": 0.19, "compare": 0.09, "mov_rr": 0.07, "mov_imm": 0.06,
        "lea": 0.05, "load": 0.17, "load_burst": 0.05, "store": 0.07,
        "store_burst": 0.06, "copy": 0.05, "rmw": 0.025, "load_alu": 0.05,
        "bitmanip": 0.04, "mul": 0.012, "div": 0.006,
        "cmov_set": 0.035, "stack": 0.03, "zero_idiom": 0.02,
        "table_lookup": 0.035, "pointer_walk": 0.04,
    },
    length_mu=1.5, length_sigma=0.58, max_length=20,
    register_only_fraction=0.13,
    pathology={"unsupported": 0.015, "invalid_mem": 0.013,
               "page_stride": 0.016, "div_zero": 0.007,
               "misaligned_vec": 0.0054},
    zipf_exponent=1.4,
)
