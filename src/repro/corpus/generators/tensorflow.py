"""TensorFlow: machine learning (C++ + Eigen + hand-tuned kernels).

The paper's CNN training benchmark: convolution/GEMM inner loops
(FMA-dense, AVX2), im2col-style shuffles and streaming loads, plus a
large body of general C++ graph-execution code — so the mix spans both
worlds.  Table II's ablation block is one of its critical inner loops.
"""

from repro.corpus.appspec import ApplicationSpec

SPEC = ApplicationSpec(
    name="tensorflow",
    domain="Machine Learning",
    paper_blocks=71988,
    mix={
        "alu": 0.12, "compare": 0.04, "mov_rr": 0.05, "mov_imm": 0.03,
        "lea": 0.045, "load": 0.08, "store": 0.045, "store_burst": 0.035, "copy": 0.02,
        "rmw": 0.01, "load_alu": 0.02, "bitmanip": 0.02, "mul": 0.008,
        "div": 0.002, "cmov_set": 0.015, "stack": 0.015,
        "zero_idiom": 0.025, "table_lookup": 0.025,
        "pointer_walk": 0.04, "vec_scalar_fp": 0.04, "vec_fp": 0.09,
        "vec_fp_avx": 0.08, "fma": 0.1, "vec_int": 0.02,
        "vec_int_avx": 0.015, "shuffle": 0.045, "cvt": 0.02,
        "vec_load": 0.07, "vec_store": 0.035,
    },
    length_mu=1.8, length_sigma=0.65, max_length=40,
    register_only_fraction=0.12,
    long_kernel_fraction=0.08,
    long_kernel_length=(70, 140),
    pathology={"unsupported": 0.012, "invalid_mem": 0.01,
               "page_stride": 0.015, "div_zero": 0.003,
               "misaligned_vec": 0.0060, "subnormal_kernel": 0.003},
    zipf_exponent=1.8,
    hot_kernel_bias=5.0,
)
