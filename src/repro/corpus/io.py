"""Dataset serialization.

The real BHive publishes its benchmark suite as CSV files of
(machine-code hex, measured throughput) rows.  Our equivalent persists
blocks as assembly text plus provenance and measurements, in both a
CSV (two-column, BHive-style) and a richer JSON format, so corpora and
ground-truth measurements can be shipped and reloaded without re-running
the simulator.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, Optional

from repro.corpus.dataset import BlockRecord, Corpus
from repro.isa.parser import parse_block

#: Separator used to keep a block's instructions on one CSV line.
_LINE_SEP = "; "


def block_to_field(block) -> str:
    """One-line representation of a block (AT&T, ';'-separated)."""
    return _LINE_SEP.join(block.text().splitlines())


def block_from_field(field: str):
    return parse_block(field.replace(_LINE_SEP, "\n"),
                       source="imported")


# ---------------------------------------------------------------------------
# CSV (BHive-style two/three column)
# ---------------------------------------------------------------------------

def save_csv(path: str, corpus: Corpus,
             measured: Optional[Dict[int, float]] = None) -> int:
    """Write ``block, [throughput]`` rows; returns rows written.

    With ``measured`` given, only successfully measured blocks are
    written — mirroring the published BHive dataset, which contains
    only blocks that survived the paper's filters.
    """
    written = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        for record in corpus:
            if measured is not None:
                if record.block_id not in measured:
                    continue
                writer.writerow([block_to_field(record.block),
                                 f"{measured[record.block_id]:.2f}"])
            else:
                writer.writerow([block_to_field(record.block)])
            written += 1
    return written


def load_csv(path: str):
    """Yield (block, throughput-or-None) pairs from a CSV dataset."""
    with open(path, newline="") as fh:
        for row in csv.reader(fh):
            if not row:
                continue
            block = block_from_field(row[0])
            throughput = float(row[1]) if len(row) > 1 else None
            yield block, throughput


# ---------------------------------------------------------------------------
# JSON (full corpus round-trip)
# ---------------------------------------------------------------------------

def save_json(path: str, corpus: Corpus,
              measured: Optional[Dict[int, float]] = None) -> None:
    """Persist a corpus (and optional measurements) losslessly."""
    payload = {
        "scale": corpus.scale,
        "records": [
            {
                "id": record.block_id,
                "application": record.application,
                "frequency": record.frequency,
                "asm": block_to_field(record.block),
                "throughput": (measured or {}).get(record.block_id),
            }
            for record in corpus
        ],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)


class StreamCsvWriter:
    """Incremental counterpart of :func:`save_csv`.

    The streamed pipeline writes rows as shards fold instead of
    materialising the corpus first; for the same records the output
    bytes equal a :func:`save_csv` call.  ``measured=True`` switches
    to the two-column BHive-style format and skips rows added without
    a throughput (exactly :func:`save_csv`'s ``measured`` semantics).
    """

    def __init__(self, path: str, measured: bool = False):
        self._fh = open(path, "w", newline="")
        self._writer = csv.writer(self._fh)
        self.measured = measured
        self.written = 0

    def add(self, record: BlockRecord,
            throughput: Optional[float] = None) -> bool:
        if self.measured:
            if throughput is None:
                return False
            self._writer.writerow([block_to_field(record.block),
                                   f"{throughput:.2f}"])
        else:
            self._writer.writerow([block_to_field(record.block)])
        self.written += 1
        return True

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "StreamCsvWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class StreamJsonWriter:
    """Incremental counterpart of :func:`save_json`.

    Emits the exact bytes ``json.dump(payload, fh, indent=1)`` would
    for the same records — the record array is streamed one element
    at a time, so a corpus of any length serialises without ever
    being held in memory.
    """

    def __init__(self, path: str, scale: float):
        self._fh = open(path, "w")
        self._fh.write('{\n "scale": ' + json.dumps(scale)
                       + ',\n "records": [')
        self.written = 0

    def add(self, record: BlockRecord,
            throughput: Optional[float] = None) -> None:
        item = {
            "id": record.block_id,
            "application": record.application,
            "frequency": record.frequency,
            "asm": block_to_field(record.block),
            "throughput": throughput,
        }
        body = json.dumps(item, indent=1)
        indented = "\n".join("  " + line for line in body.splitlines())
        self._fh.write(("\n" if self.written == 0 else ",\n")
                       + indented)
        self.written += 1

    def close(self) -> None:
        self._fh.write("]\n}" if self.written == 0 else "\n ]\n}")
        self._fh.close()

    def __enter__(self) -> "StreamJsonWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def load_json(path: str):
    """Returns (corpus, measured dict) from :func:`save_json` output."""
    with open(path) as fh:
        payload = json.load(fh)
    records = []
    measured: Dict[int, float] = {}
    for item in payload["records"]:
        block = block_from_field(item["asm"])
        records.append(BlockRecord(block=block,
                                   application=item["application"],
                                   frequency=item["frequency"],
                                   block_id=item["id"]))
        if item.get("throughput") is not None:
            measured[item["id"]] = item["throughput"]
    return Corpus(records, scale=payload.get("scale", 1.0)), measured
