"""The paper's literal example blocks.

These are quoted verbatim from the paper (figures and case-study
tables) and drive the per-block benches: the Gzip updcrc motivating
example (Fig. 1 / case study 3), the unsigned-division block (case
study 1), the zero-idiom block (case study 2), and a reconstruction of
the Table II TensorFlow CNN inner-loop block with every property the
ablation narrative needs (large body → I-cache overflow at 100x
unroll; several streaming pointers → data working set beyond one page;
an FP chain that goes subnormal without FTZ).
"""

from __future__ import annotations

from repro.isa.instruction import BasicBlock
from repro.isa.parser import parse_block

#: Fig. 1 / case study 3 — inner loop body of ``updcrc`` from Gzip,
#: exactly as printed in the paper.
GZIP_CRC_TEXT = """
    add $1, %rdi
    mov %edx, %eax
    shr $8, %rdx
    xor -1(%rdi), %al
    movzx %al, %eax
    xor 0x4110a(, %rax, 8), %rdx
    cmp %rcx, %rdi
"""

#: Measurable variant: the paper's displacement 0x4110a makes every
#: eighth table access span a cache line, which the suite's own
#: MISALIGNED_MEM_REFERENCE filter would drop; gzip's real crc_32_tab
#: is 8-byte aligned, so the measurable form aligns the displacement.
#: (Documented in EXPERIMENTS.md.)
GZIP_CRC_ALIGNED_TEXT = GZIP_CRC_TEXT.replace("0x4110a", "0x41108")

#: Case study 1 — bottlenecked by 64-bit-by-32-bit unsigned division.
DIV_BLOCK_TEXT = """
xor edx, edx
div ecx
test edx, edx
"""

#: Case study 2 — a dependency-breaking zero idiom.
ZERO_IDIOM_TEXT = "vxorps xmm2, xmm2, xmm2"


def gzip_crc_block(aligned: bool = True) -> BasicBlock:
    text = GZIP_CRC_ALIGNED_TEXT if aligned else GZIP_CRC_TEXT
    return parse_block(text, source="gzip")


def div_block() -> BasicBlock:
    return parse_block(DIV_BLOCK_TEXT, source="case-study")


def zero_idiom_block() -> BasicBlock:
    return parse_block(ZERO_IDIOM_TEXT, source="case-study")


def tensorflow_ablation_block() -> BasicBlock:
    """The Table II block: a large vectorized CNN inner-loop body.

    Reconstructed (the paper prints only its measurements):

    * ~96 instructions, ≈500 encoded bytes → a 100x unroll is ~50 KB,
      far beyond the 32 KB L1I (the 35-I-miss row);
    * eight streaming input pointers advancing 64 B per iteration →
      with one physical frame per virtual page the working set defeats
      the L1D (the 956-miss row); one frame total keeps it cache-hot;
    * an FP accumulation chain seeded from the canonical memory
      pattern that underflows into f32 subnormals → 20x-style assist
      stalls unless MXCSR FTZ is set.
    """
    lines = []
    pointers = ["rbx", "rsi", "rdi", "rbp", "r8", "r9", "r10", "r11"]
    # Subnormal seed: dividing the tiny loaded pattern float by the
    # int-converted pattern twice lands in the f32 subnormal range.
    lines += [
        "movss (%rbx), %xmm0",
        "cvtsi2ss %eax, %xmm1",
        "divss %xmm1, %xmm0",
        "divss %xmm1, %xmm0",
    ]
    # Register roles (all registers the loop writes are disjoint from
    # the read-only seeds xmm0/ymm12): ymm4-7 streaming loads,
    # ymm2/ymm3 products, ymm13/ymm14 vector accumulators, xmm8 the
    # scalar accumulator whose multiply chain rides on the subnormal
    # seed — 8 assisted multiplies per iteration when FTZ is off.
    for k, ptr in enumerate(pointers):
        lines.append(f"vmovups {k * 8192}(%{ptr}), %ymm{k % 4 + 4}")
        lines.append(f"vmulps %ymm{k % 4 + 4}, %ymm12, %ymm2")
        lines.append(f"vaddps %ymm2, %ymm13, %ymm13")
        lines.append(f"mulss %xmm0, %xmm{8 + k % 2}")
        lines.append(f"vmovups {k * 8192 + 256}(%{ptr}), %ymm{k % 4 + 4}")
        lines.append(f"vmulps %ymm{k % 4 + 4}, %ymm12, %ymm3")
        lines.append(f"vaddps %ymm3, %ymm14, %ymm14")
        lines.append(f"shufps $0x1b, %xmm{k % 4 + 8}, %xmm{k % 4 + 8}")
    for ptr in pointers:
        lines.append(f"add $64, %{ptr}")
    lines += [
        "vaddps %ymm13, %ymm14, %ymm15",
        "add $1, %r12",
        "cmp %r13, %r12",
    ]
    return parse_block("\n".join(lines), source="tensorflow")
