"""Deterministic stratified corpus sampling and error projection.

Profiling the full corpus is the expensive half of the pipeline; at
validation scales a stratified sample answers "what would the Table
III error columns look like?" at a fraction of the cost, with honest
uncertainty attached.  Three pieces:

* **Strata.**  Blocks are stratified by ``application x category``
  where the category is a cheap *per-block* structural class derived
  from the instruction mix (:func:`block_category`) — unlike the
  corpus-global LDA clustering it needs no second pass, so it works
  on a stream.
* **Deterministic, order-blind sampling.**  Whether a block is kept
  depends only on ``(seed, stratum, block text)`` via a CRC-32 keyed
  threshold — never on arrival order or on the rest of the corpus —
  so a streamed sample (:func:`sample_stream`) and a materialised
  sample agree, and re-runs are exactly reproducible.
  :func:`sample_corpus` additionally enforces *exact* per-stratum
  quotas by hash rank (the estimator's variance is then the
  classical stratified one).
* **Projection.**  :func:`project_validation` post-stratifies a
  sample's validation rows: per-stratum mean relative errors are
  recombined with *full-corpus* stratum weights, yielding projected
  overall and per-application error tables with seeded bootstrap
  percentile confidence intervals.  The CI covers sampling noise
  only — blocks not sampled contribute through their stratum's
  weight, which is why stratification (not uniform sampling) is what
  makes small fractions usable.

``$REPRO_SAMPLE`` sets the default fraction for the CLI.
"""

from __future__ import annotations

import os
import random
import zlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.corpus.dataset import BlockRecord, Corpus

__all__ = ["CATEGORIES", "block_category", "stratum",
           "stratum_counts", "sample_fraction", "sample_stream",
           "sample_corpus", "project_validation", "render_projection"]

#: Every category :func:`block_category` can produce, in report order.
CATEGORIES = ("vector", "load_store", "load_heavy", "store_heavy",
              "mixed", "scalar")

#: Default bootstrap replicates for projection CIs.
DEFAULT_BOOTSTRAP = 200


def sample_fraction() -> Optional[float]:
    """``$REPRO_SAMPLE`` as a fraction in (0, 1], or ``None``."""
    env = os.environ.get("REPRO_SAMPLE", "").strip()
    if not env:
        return None
    fraction = float(env)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"REPRO_SAMPLE must be in (0, 1], "
                         f"got {fraction}")
    return fraction


def block_category(block) -> str:
    """Cheap structural class of one block, from its instruction mix.

    Thresholds on :func:`repro.models.residual.block_mix` fractions —
    the same mix the residual model weights by — chosen so the strata
    line up with the difficulty classes the paper reports (vectorised
    hardest, store-dominated easiest).  Pure per-block: usable on a
    stream, unlike the corpus-global LDA categories.
    """
    from repro.models.residual import block_mix
    mix = block_mix(block)
    if mix["vector"] >= 0.5:
        return "vector"
    if mix["load"] >= 0.25 and mix["store"] >= 0.25:
        return "load_store"
    if mix["load"] >= 0.25:
        return "load_heavy"
    if mix["store"] >= 0.25:
        return "store_heavy"
    if mix["vector"] > 0 or mix["bitmanip"] > 0:
        return "mixed"
    return "scalar"


def stratum(record: BlockRecord) -> Tuple[str, str]:
    """The ``(application, category)`` cell a record belongs to."""
    return record.application, block_category(record.block)


def stratum_counts(records: Iterable[BlockRecord]
                   ) -> Dict[Tuple[str, str], int]:
    """Population count per stratum (one streaming pass)."""
    counts: Dict[Tuple[str, str], int] = {}
    for record in records:
        cell = stratum(record)
        counts[cell] = counts.get(cell, 0) + 1
    return counts


def _keep_key(seed: int, app: str, category: str, text: str) -> float:
    """Deterministic per-block sampling key in [0, 1).

    CRC-32 of ``seed | stratum | block text`` — content-addressed, so
    the keep decision is identical whatever order blocks arrive in
    and whatever else is in the corpus (``PYTHONHASHSEED``-immune,
    like the shard digests).
    """
    crc = zlib.crc32(f"{seed}|{app}|{category}|".encode())
    crc = zlib.crc32(text.encode(), crc)
    return crc / 2.0 ** 32


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"sample fraction must be in (0, 1], "
                         f"got {fraction}")


def sample_stream(records: Iterable[BlockRecord], fraction: float,
                  seed: int = 0) -> Iterator[BlockRecord]:
    """Lazily keep ~``fraction`` of a record stream, per stratum.

    Order-blind thresholding: each block is kept iff its content key
    falls below ``fraction``, so the kept *set* is a pure function of
    the blocks themselves.  Per-stratum counts are binomial (not
    exact); use :func:`sample_corpus` when exact quotas matter more
    than constant memory.
    """
    _check_fraction(fraction)
    for record in records:
        app, category = stratum(record)
        if _keep_key(seed, app, category,
                     record.block.text()) < fraction:
            yield record


def sample_corpus(corpus: Iterable[BlockRecord], fraction: float,
                  seed: int = 0) -> Corpus:
    """Exact-quota stratified sample of a materialised corpus.

    Each stratum contributes ``round(fraction * n_s)`` blocks (never
    fewer than one), chosen by ascending content key — the same key
    :func:`sample_stream` thresholds on, so the two samplers agree in
    expectation and both are deterministic and order-blind.  Corpus
    order is preserved in the output.
    """
    _check_fraction(fraction)
    records = list(corpus)
    cells: Dict[Tuple[str, str],
                List[Tuple[float, int, BlockRecord]]] = {}
    for record in records:
        app, category = stratum(record)
        key = _keep_key(seed, app, category, record.block.text())
        cells.setdefault((app, category), []).append(
            (key, record.block_id, record))
    keep_ids = set()
    for cell in sorted(cells):
        ranked = sorted(cells[cell], key=lambda kr: (kr[0], kr[1]))
        quota = max(1, int(round(fraction * len(ranked))))
        for _, block_id, _ in ranked[:quota]:
            keep_ids.add(block_id)
    scale = getattr(corpus, "scale", None)
    kept = [r for r in records if r.block_id in keep_ids]
    return Corpus(kept, scale=scale) if scale is not None \
        else Corpus(kept)


# ---------------------------------------------------------------------------
# Projection: sample errors -> full-corpus error tables with CIs
# ---------------------------------------------------------------------------

def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return float("nan")
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _post_stratified(cell_errors: Dict[Tuple[str, str], List[float]],
                     full_counts: Dict[Tuple[str, str], int],
                     means: Dict[Tuple[str, str], float]
                     ) -> Optional[float]:
    """``sum_s W_s * mean_s`` over covered strata, W renormalised."""
    covered = [cell for cell in cell_errors if cell in means]
    weight_total = sum(full_counts.get(cell, 0) for cell in covered)
    if not weight_total:
        return None
    return sum(full_counts.get(cell, 0) / weight_total * means[cell]
               for cell in sorted(covered))


def project_validation(result, sample_records: Iterable[BlockRecord],
                       full_counts: Dict[Tuple[str, str], int], *,
                       models: Optional[List[str]] = None,
                       bootstrap: int = DEFAULT_BOOTSTRAP,
                       seed: int = 0,
                       confidence: float = 0.95) -> Dict:
    """Project full-corpus error tables from a sampled validation.

    ``result`` is the :class:`~repro.eval.validation.ValidationResult`
    of validating the *sample*; ``sample_records`` maps its rows back
    to strata; ``full_counts`` is :func:`stratum_counts` over the full
    corpus (cheap — it never profiles anything).  Per model, the
    projected overall and per-application mean relative errors are
    post-stratified estimates with seeded per-stratum bootstrap
    percentile intervals, so re-running with the same seed reproduces
    every digit.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), "
                         f"got {confidence}")
    strata_by_id = {record.block_id: stratum(record)
                    for record in sample_records}
    model_names = models or list(result.model_names)
    alpha = (1.0 - confidence) / 2.0
    projection: Dict = {
        "uarch": result.uarch,
        "confidence": confidence,
        "bootstrap": int(bootstrap),
        "seed": seed,
        "sampled_rows": len(result.rows),
        "full_blocks": sum(full_counts.values()),
        "models": {},
    }

    for model in model_names:
        cell_errors: Dict[Tuple[str, str], List[float]] = {}
        for row in result.rows:
            cell = strata_by_id.get(row.block_id)
            predicted = row.predictions.get(model)
            if cell is None or predicted is None or row.measured <= 0:
                continue
            error = abs(predicted - row.measured) / row.measured
            cell_errors.setdefault(cell, []).append(error)
        for errors in cell_errors.values():
            errors.sort()  # fixed accumulation order

        means = {cell: sum(errors) / len(errors)
                 for cell, errors in cell_errors.items()}
        estimate = _post_stratified(cell_errors, full_counts, means)

        # Seeded per-stratum bootstrap: resample each stratum's
        # errors with replacement, recombine with the same weights.
        rng = random.Random(f"{seed}|{result.uarch}|{model}")
        replicates: List[float] = []
        for _ in range(max(0, int(bootstrap))):
            boot_means = {}
            for cell in sorted(cell_errors):
                errors = cell_errors[cell]
                boot = [errors[rng.randrange(len(errors))]
                        for _ in errors]
                boot_means[cell] = sum(boot) / len(boot)
            replicate = _post_stratified(cell_errors, full_counts,
                                         boot_means)
            if replicate is not None:
                replicates.append(replicate)
        replicates.sort()

        per_app: Dict[str, Dict] = {}
        apps = sorted({app for app, _ in cell_errors})
        for app in apps:
            app_cells = {cell: errors
                         for cell, errors in cell_errors.items()
                         if cell[0] == app}
            app_means = {cell: means[cell] for cell in app_cells}
            app_estimate = _post_stratified(app_cells, full_counts,
                                            app_means)
            if app_estimate is not None:
                per_app[app] = {
                    "estimate": app_estimate,
                    "sampled": sum(len(v)
                                   for v in app_cells.values()),
                }

        projection["models"][model] = {
            "overall": {
                "estimate": estimate,
                "low": _percentile(replicates, alpha),
                "high": _percentile(replicates, 1.0 - alpha),
                "sampled": sum(len(v) for v in cell_errors.values()),
            },
            "per_application": per_app,
            "strata": {
                f"{app}/{category}": {
                    "weight": full_counts.get((app, category), 0),
                    "sampled": len(cell_errors[(app, category)]),
                    "mean_error": means[(app, category)],
                }
                for app, category in sorted(cell_errors)
            },
        }
    return projection


def render_projection(projection: Dict) -> str:
    """The ``repro validate --sample`` table, as text."""
    pct = int(round(projection["confidence"] * 100))
    lines = [
        f"projected error tables ({projection['uarch']}): "
        f"{projection['sampled_rows']} sampled rows -> "
        f"{projection['full_blocks']} blocks, {pct}% CI "
        f"({projection['bootstrap']} bootstrap replicates, "
        f"seed {projection['seed']})",
    ]
    for model, tables in sorted(projection["models"].items()):
        overall = tables["overall"]
        if overall["estimate"] is None:
            lines.append(f"  {model:<12} no usable rows")
            continue
        lines.append(
            f"  {model:<12} overall {overall['estimate']:7.2%}  "
            f"[{overall['low']:.2%}, {overall['high']:.2%}]  "
            f"(n={overall['sampled']})")
        for app, cell in sorted(tables["per_application"].items()):
            lines.append(f"    {app:<14} {cell['estimate']:7.2%}  "
                         f"(n={cell['sampled']})")
    return "\n".join(lines)
