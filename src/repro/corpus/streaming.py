"""Constant-memory corpus generation: lazy record streams.

The batch builders in :mod:`repro.corpus.dataset` materialise every
block before anything downstream runs, so memory — not CPU — caps the
corpus size.  This module provides the lazy counterparts:

* :func:`iter_application` / :func:`iter_corpus` yield
  :class:`~repro.corpus.dataset.BlockRecord` objects one at a time,
  producing the **same records in the same order** as
  ``build_application`` / ``build_corpus`` — by construction, because
  the batch builders are thin ``list(...)`` wrappers around these
  iterators.
* :func:`repro.parallel.sharding.stream_shards` cuts any record
  iterator into the same deterministic shards ``shard_corpus``
  produces from the materialised list
  (``tests/corpus/test_streaming.py`` holds both equalities with
  hypothesis).

A streamed pipeline composes them as ``generate → digest → shard →
profile → fold → discard``: the only per-block state that survives a
shard's fold is its measured throughput.  The one allocation that
cannot be made lazy is each application's frequency table —
``assign_frequencies`` rank-shuffles and smooths over the whole app —
so peak memory is O(one app's frequency ints + in-flight shards), not
O(corpus).

``REPRO_STREAM=1`` (or the CLI's ``--stream``) routes
``profile_corpus_sharded`` through the streamed fold path globally;
``REPRO_STREAM_PREFETCH`` bounds how many shards may be in flight
(generated or profiled but not yet folded) per worker.
"""

from __future__ import annotations

import os
import zlib
from typing import Iterator, Optional, Sequence

from repro.corpus.dataset import (DEFAULT_APPS, BlockRecord, get_spec,
                                  _target_count)
from repro.corpus.synthesis import BlockSynthesizer
from repro.corpus.tracing import assign_frequencies

__all__ = ["iter_application", "iter_corpus", "stream_enabled",
           "default_prefetch", "stream_epoch_blocks",
           "corpus_spec_digest", "DEFAULT_PREFETCH_PER_JOB",
           "DEFAULT_EPOCH_BLOCKS"]

#: Shards that may be in flight (submitted to the pool, or completed
#: but not yet foldable because an earlier index is still running) per
#: worker.  2 keeps every worker busy while the parent folds.
DEFAULT_PREFETCH_PER_JOB = 2

#: Blocks a streamed profiler may retain dedup/plan state for before
#: the engine drops and rebuilds it.  Profile results and compiled
#: plans are pure functions of (block text, machine, config), so the
#: reset never changes bytes — it only bounds the per-run caches that
#: would otherwise grow linearly with corpus length.
DEFAULT_EPOCH_BLOCKS = 512


def stream_enabled() -> bool:
    """``REPRO_STREAM=1``: route batch entry points through the
    streamed fold path (byte-identical output, constant memory)."""
    return os.environ.get("REPRO_STREAM", "").strip() == "1"


def default_prefetch(jobs: int) -> int:
    """Bound on in-flight shards: ``REPRO_STREAM_PREFETCH`` per job if
    set, else :data:`DEFAULT_PREFETCH_PER_JOB` per job."""
    env = os.environ.get("REPRO_STREAM_PREFETCH", "").strip()
    per_job = int(env) if env else DEFAULT_PREFETCH_PER_JOB
    return max(1, per_job) * max(1, jobs)


def stream_epoch_blocks() -> int:
    """Streamed-mode retained-state bound, in blocks.

    Every this-many profiled blocks the streamed engine discards its
    profiler (whose corpus-level dedup memo grows with every distinct
    block) and the compiled-plan cache, in the parent for serial runs
    and inside each pool worker for pooled ones.  ``0`` disables the
    reset (batch-identical retention).  Tune with
    ``REPRO_STREAM_EPOCH``.
    """
    env = os.environ.get("REPRO_STREAM_EPOCH", "").strip()
    epoch = int(env) if env else DEFAULT_EPOCH_BLOCKS
    return max(0, epoch)


def iter_application(name: str, scale: float = 0.01, seed: int = 0,
                     count: Optional[int] = None,
                     id_base: int = 0) -> Iterator[BlockRecord]:
    """Yield one application's records lazily, in builder order.

    Blocks come off the synthesizer one at a time; the only per-app
    allocation is the frequency table (``assign_frequencies`` needs
    the app's block count up front to rank-shuffle and smooth), which
    is discarded when the app is exhausted.  ``id_base`` offsets the
    ``block_id`` sequence so :func:`iter_corpus` can assign global ids
    without materialising anything.
    """
    spec = get_spec(name)
    n = count if count is not None else _target_count(spec, scale)
    synthesizer = BlockSynthesizer(spec, seed=seed)
    frequencies = assign_frequencies(n, spec.zipf_exponent, seed=seed)
    bias = spec.hot_kernel_bias
    if bias:
        from repro.models.residual import block_mix
    for i in range(n):
        block = synthesizer.block()
        frequency = frequencies[i]
        if bias:
            frequency = max(1, int(
                frequency
                * (1.0 + bias * block_mix(block)["vector"]) ** 2))
        yield BlockRecord(block=block, application=name,
                          frequency=frequency, block_id=id_base + i)


def iter_corpus(scale: float = 0.01, seed: int = 0,
                applications: Sequence[str] = DEFAULT_APPS
                ) -> Iterator[BlockRecord]:
    """Yield the full suite lazily with global sequential block ids —
    the exact records ``build_corpus`` materialises."""
    next_id = 0
    for name in applications:
        for record in iter_application(name, scale=scale, seed=seed,
                                       id_base=next_id):
            yield record
            next_id = record.block_id + 1


def corpus_spec_digest(scale: float, seed: int,
                       applications: Sequence[str] = DEFAULT_APPS,
                       shard_size: int = 32) -> str:
    """Stable identity of a generated stream for journal pinning.

    A batch run journals a CRC over every shard digest; a stream of
    unknown length cannot, so it pins the *generator spec* instead —
    same scale, seed, app list and shard size means the same shards.
    """
    spec = f"{scale!r}|{seed}|{','.join(applications)}|{shard_size}"
    return f"{zlib.crc32(spec.encode()):08x}"
