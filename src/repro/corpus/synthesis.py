"""Basic-block synthesis from application profiles.

The synthesiser maintains the discipline a compiler's register
allocator would: a few *pointer* registers only ever hold valid,
mappable addresses (they start at the profiler's init constant and are
advanced by small strides), while *scratch* registers absorb arbitrary
arithmetic.  This mirrors real blocks — and guarantees the interesting
failure modes (invalid addresses, page-stride walks, divide faults)
appear exactly where the pathology knobs inject them, not at random.

All randomness comes from one seeded ``random.Random``; the corpus is
fully reproducible.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List

from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import Imm, Mem
from repro.isa.registers import Register, lookup
from repro.corpus.appspec import ApplicationSpec

_POINTER_POOL = ("rbx", "rsi", "rdi", "rbp", "r8", "r9")
_SCRATCH_POOL = ("rax", "rcx", "rdx", "r10", "r11", "r12", "r13",
                 "r14", "r15")

_GPR32 = {"rax": "eax", "rcx": "ecx", "rdx": "edx", "r10": "r10d",
          "r11": "r11d", "r12": "r12d", "r13": "r13d", "r14": "r14d",
          "r15": "r15d"}
_GPR8 = {"rax": "al", "rcx": "cl", "rdx": "dl", "r10": "r10b",
         "r11": "r11b", "r12": "r12b", "r13": "r13b", "r14": "r14b",
         "r15": "r15b"}


def _i(mnemonic: str, *operands) -> Instruction:
    return Instruction(mnemonic, tuple(operands))


class BlockSynthesizer:
    """Generates basic blocks matching one application's profile."""

    def __init__(self, spec: ApplicationSpec, seed: int = 0):
        self.spec = spec
        self.rng = random.Random(f"{spec.name}:{seed}")
        self._mix = spec.normalized_mix()
        self._regfree_mix = spec.memory_free_mix()
        self._emitters: Dict[str, Callable[..., List[Instruction]]] = {
            name: getattr(self, f"_emit_{name}")
            for name in set(self._mix) | {"compare"}}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def block(self) -> BasicBlock:
        """Synthesise one basic block."""
        rng = self.rng
        pathology = self._pick_pathology()
        register_only = pathology is None and \
            rng.random() < self.spec.register_only_fraction
        long_kernel = pathology is None and not register_only and \
            rng.random() < self.spec.long_kernel_fraction

        if long_kernel:
            length = rng.randint(*self.spec.long_kernel_length)
        else:
            length = int(round(rng.lognormvariate(
                self.spec.length_mu, self.spec.length_sigma)))
            length = max(self.spec.min_length,
                         min(self.spec.max_length, length))

        ctx = _BlockContext(rng, register_only=register_only)
        instructions: List[Instruction] = []
        mix = self._regfree_mix if register_only else self._mix
        names = list(mix)
        weights = [mix[n] for n in names]
        while len(instructions) < length:
            template = rng.choices(names, weights)[0]
            instructions.extend(self._emitters[template](ctx))
        instructions = instructions[:max(length, 1)]
        if not register_only and \
                not any(i.has_memory_access for i in instructions):
            # The register-only share is an explicit profile knob; a
            # "memory" block that happened to sample no memory template
            # gets one load so the split stays calibrated (the paper:
            # "most [blocks] contain memory accesses").
            instructions[-1:] = self._emit_load(ctx)

        if pathology is not None:
            instructions = self._inject_pathology(pathology, ctx,
                                                  instructions)
        return BasicBlock(instructions, source=self.spec.name)

    def blocks(self, count: int) -> List[BasicBlock]:
        return [self.block() for _ in range(count)]

    # ------------------------------------------------------------------
    # Pathology injection
    # ------------------------------------------------------------------

    def _pick_pathology(self) -> str:
        roll = self.rng.random()
        acc = 0.0
        for name, probability in self.spec.pathology.items():
            acc += probability
            if roll < acc:
                return name
        return None

    def _inject_pathology(self, name: str, ctx: "_BlockContext",
                          instructions: List[Instruction]
                          ) -> List[Instruction]:
        extra = getattr(self, f"_emit_{name}")(ctx)
        where = self.rng.randrange(len(instructions) + 1)
        return instructions[:where] + extra + instructions[where:]

    # ------------------------------------------------------------------
    # Template emitters — ordinary code
    # ------------------------------------------------------------------

    def _emit_alu(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("add", "sub", "and", "or", "xor",
                             "add", "and"))
        dst = ctx.scratch()
        if ctx.rng.random() < 0.4:
            return [_i(op, dst, Imm(ctx.rng.randint(1, 4096)))]
        src = ctx.scratch(exclude=dst)
        return [_i(op, dst, src)]

    def _emit_compare(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("cmp", "test"))
        a = ctx.scratch()
        if ctx.rng.random() < 0.5:
            return [_i(op, a, Imm(ctx.rng.randint(0, 255)))]
        return [_i(op, a, ctx.scratch(exclude=a))]

    def _emit_mov_rr(self, ctx) -> List[Instruction]:
        dst = ctx.scratch()
        src = ctx.scratch(exclude=dst)
        if ctx.rng.random() < 0.3:
            return [_i("mov", lookup(_GPR32[dst.name]),
                       lookup(_GPR32[src.name]))]
        return [_i("mov", dst, src)]

    def _emit_mov_imm(self, ctx) -> List[Instruction]:
        return [_i("mov", ctx.scratch(),
                   Imm(ctx.rng.randint(1, 1 << 20)))]

    def _emit_lea(self, ctx) -> List[Instruction]:
        base = ctx.pointer()
        if ctx.rng.random() < 0.4:
            mem = Mem(base=base, index=ctx.scratch(),
                      scale=ctx.rng.choice((1, 2, 4, 8)),
                      disp=ctx.rng.randint(0, 64), width=8)
        else:
            mem = Mem(base=base, disp=ctx.rng.randint(-64, 256), width=8)
        return [_i("lea", ctx.scratch(), mem)]

    def _emit_load(self, ctx) -> List[Instruction]:
        width = ctx.rng.choice((1, 2, 4, 8, 8))
        mem = ctx.mem(width)
        dst = ctx.scratch()
        if width == 8:
            return [_i("mov", dst, mem)]
        if width == 4:
            return [_i("mov", lookup(_GPR32[dst.name]), mem)]
        return [_i("movzx", lookup(_GPR32[dst.name]), mem)]

    def _emit_store(self, ctx) -> List[Instruction]:
        width = ctx.rng.choice((4, 8, 8))
        mem = ctx.mem(width)
        if ctx.rng.random() < 0.3:
            return [_i("mov", mem, Imm(ctx.rng.randint(0, 1 << 16)))]
        src = ctx.scratch()
        return [_i("mov", mem,
                   src if width == 8 else lookup(_GPR32[src.name]))]

    def _emit_store_burst(self, ctx) -> List[Instruction]:
        base = ctx.pointer()
        out = []
        offset = ctx.rng.randrange(0, 64, 8)
        for k in range(ctx.rng.randint(2, 4)):
            src = ctx.scratch()
            out.append(_i("mov", Mem(base=base, disp=offset + 8 * k,
                                     width=8), src))
        return out

    def _emit_load_burst(self, ctx) -> List[Instruction]:
        base = ctx.pointer()
        out = []
        offset = ctx.rng.randrange(0, 64, 8)
        for k in range(ctx.rng.randint(2, 4)):
            out.append(_i("mov", ctx.scratch(),
                          Mem(base=base, disp=offset + 8 * k, width=8)))
        return out

    def _emit_copy(self, ctx) -> List[Instruction]:
        """memcpy/memmove-style load-store pairs (the paper's
        category-3 "mix of loads and stores" blocks)."""
        src_base = ctx.pointer()
        dst_base = ctx.pointer()
        out = []
        offset = ctx.rng.randrange(0, 64, 8)
        for k in range(ctx.rng.randint(2, 4)):
            tmp = ctx.scratch()
            out.append(_i("mov", tmp,
                          Mem(base=src_base, disp=offset + 8 * k,
                              width=8)))
            out.append(_i("mov",
                          Mem(base=dst_base, disp=offset + 8 * k + 256,
                              width=8), tmp))
        return out

    def _emit_rmw(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("add", "sub", "or", "and", "xor"))
        mem = ctx.mem(8)
        if ctx.rng.random() < 0.45:  # imm->mem: OSACA parser bug 1
            return [_i(op, mem, Imm(ctx.rng.randint(1, 127)))]
        return [_i(op, mem, ctx.scratch())]

    def _emit_load_alu(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("add", "sub", "and", "or", "xor"))
        return [_i(op, ctx.scratch(), ctx.mem(8))]

    def _emit_bitmanip(self, ctx) -> List[Instruction]:
        kind = ctx.rng.random()
        dst = ctx.scratch()
        if kind < 0.55:
            op = ctx.rng.choice(("shl", "shr", "sar", "rol", "ror"))
            return [_i(op, dst, Imm(ctx.rng.randint(1, 31)))]
        if kind < 0.75:
            op = ctx.rng.choice(("popcnt", "bsf", "bsr", "tzcnt"))
            return [_i(op, dst, ctx.scratch(exclude=dst))]
        if kind < 0.9:
            return [_i("bswap", dst)]
        return [_i("shld", dst, ctx.scratch(exclude=dst),
                   Imm(ctx.rng.randint(1, 31)))]

    def _emit_mul(self, ctx) -> List[Instruction]:
        dst = ctx.scratch()
        if ctx.rng.random() < 0.3:
            return [_i("imul", dst, ctx.scratch(exclude=dst),
                       Imm(ctx.rng.randint(2, 1000)))]
        return [_i("imul", dst, ctx.scratch(exclude=dst))]

    def _emit_div(self, ctx) -> List[Instruction]:
        divisor = ctx.scratch(exclude_names=("rax", "rdx"))
        edx = lookup("edx")
        return [
            _i("mov", lookup(_GPR32[divisor.name]),
               Imm(ctx.rng.randint(3, 1 << 20))),
            _i("xor", edx, edx),
            _i("div", lookup(_GPR32[divisor.name])),
        ]

    def _emit_cmov_set(self, ctx) -> List[Instruction]:
        cc = ctx.rng.choice(("e", "ne", "l", "g", "b", "a"))
        a = ctx.scratch()
        out = [_i("cmp", a, Imm(ctx.rng.randint(0, 255)))]
        if ctx.rng.random() < 0.5:
            out.append(_i(f"cmov{cc}", ctx.scratch(exclude=a), a))
        else:
            dst = ctx.scratch(exclude=a)
            out.append(_i(f"set{cc}", lookup(_GPR8[dst.name])))
        return out

    def _emit_stack(self, ctx) -> List[Instruction]:
        reg = ctx.scratch()
        if ctx.rng.random() < 0.5:
            return [_i("push", reg)]
        return [_i("pop", reg)]

    def _emit_zero_idiom(self, ctx) -> List[Instruction]:
        if ctx.rng.random() < 0.6:
            reg = lookup(_GPR32[ctx.scratch().name])
            return [_i("xor", reg, reg)]
        x = ctx.vec(128)
        return [_i("pxor", x, x)]

    def _emit_table_lookup(self, ctx) -> List[Instruction]:
        idx = ctx.scratch()
        base = ctx.pointer()
        out = [_i("movzx", lookup(_GPR32[idx.name]),
                  Mem(base=base, disp=ctx.rng.randint(0, 64), width=1))]
        scale = ctx.rng.choice((4, 8))
        dst = ctx.scratch(exclude=idx)
        mem = Mem(base=ctx.pointer(), index=idx, scale=scale,
                  disp=ctx.rng.randrange(0, 256, scale), width=scale)
        # Element width matches the table's element size, like a real
        # lookup table — an 8-byte load off a 4-byte-strided table
        # would split cache lines.
        out.append(_i("mov", dst if scale == 8
                      else lookup(_GPR32[dst.name]), mem))
        return out

    def _emit_pointer_walk(self, ctx) -> List[Instruction]:
        # Strides are whole cache lines: the same pointer may feed
        # 16/32-byte vector accesses later in the block, and sub-line
        # strides would drift them across line boundaries (tripping
        # the misaligned-access filter far more often than real code).
        ptr = ctx.pointer()
        stride = ctx.rng.choice((64, 64, 128, 256))
        return [
            _i("mov", ctx.scratch(), Mem(base=ptr, width=8)),
            _i("add", ptr, Imm(stride)),
        ]

    # -- vector templates ----------------------------------------------------

    def _emit_vec_scalar_fp(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("addss", "mulss", "subss", "addsd",
                             "mulsd", "maxss"))
        dst = ctx.vec(128)
        return [_i(op, dst, ctx.vec(128, exclude=dst))]

    def _emit_vec_fp(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("addps", "mulps", "subps", "minps",
                             "maxps", "addpd", "mulpd"))
        dst = ctx.vec(128)
        return [_i(op, dst, ctx.vec(128, exclude=dst))]

    def _emit_vec_fp_avx(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("vaddps", "vmulps", "vsubps", "vminps",
                             "vaddpd", "vmulpd"))
        dst = ctx.vec(256)
        a = ctx.vec(256, exclude=dst)
        b = ctx.vec(256, exclude=dst)
        return [_i(op, dst, a, b)]

    def _emit_fma(self, ctx) -> List[Instruction]:
        width = 256 if ctx.rng.random() < 0.6 else 128
        op = ctx.rng.choice(("vfmadd231ps", "vfmadd213ps",
                             "vfmadd231pd", "vfnmadd231ps"))
        dst = ctx.vec(width)
        a = ctx.vec(width, exclude=dst)
        b = ctx.vec(width, exclude=dst)
        return [_i(op, dst, a, b)]

    def _emit_vec_int(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("paddd", "psubd", "pand", "por",
                             "pcmpeqd", "pmaxsd", "paddw", "pslld"))
        dst = ctx.vec(128)
        if op == "pslld":
            return [_i(op, dst, Imm(ctx.rng.randint(1, 15)))]
        return [_i(op, dst, ctx.vec(128, exclude=dst))]

    def _emit_vec_int_avx(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("vpaddd", "vpsubd", "vpand", "vpor"))
        dst = ctx.vec(256)
        a = ctx.vec(256, exclude=dst)
        b = ctx.vec(256, exclude=dst)
        return [_i(op, dst, a, b)]

    def _emit_shuffle(self, ctx) -> List[Instruction]:
        kind = ctx.rng.random()
        dst = ctx.vec(128)
        src = ctx.vec(128, exclude=dst)
        if kind < 0.4:
            return [_i("pshufd", dst, src,
                       Imm(ctx.rng.randint(0, 255)))]
        if kind < 0.7:
            return [_i("shufps", dst, src,
                       Imm(ctx.rng.randint(0, 255)))]
        return [_i(ctx.rng.choice(("unpcklps", "unpckhps",
                                   "punpckldq")), dst, src)]

    def _emit_cvt(self, ctx) -> List[Instruction]:
        kind = ctx.rng.random()
        if kind < 0.5:
            return [_i("cvtsi2ss", ctx.vec(128),
                       lookup(_GPR32[ctx.scratch().name]))]
        if kind < 0.8:
            dst = ctx.vec(128)
            return [_i("cvtdq2ps", dst, ctx.vec(128, exclude=dst))]
        return [_i("cvttss2si", lookup(_GPR32[ctx.scratch().name]),
                   ctx.vec(128))]

    def _emit_vec_load(self, ctx) -> List[Instruction]:
        if ctx.rng.random() < 0.25:
            dst = ctx.vec(256)
            return [_i("vmovups", dst,
                       ctx.mem(32, align=32))]
        op = ctx.rng.choice(("movaps", "movups", "movdqa", "movss",
                             "movsd"))
        width = {"movss": 4, "movsd": 8}.get(op, 16)
        return [_i(op, ctx.vec(128), ctx.mem(width, align=width))]

    def _emit_vec_store(self, ctx) -> List[Instruction]:
        op = ctx.rng.choice(("movaps", "movups", "movss"))
        width = 4 if op == "movss" else 16
        return [_i(op, ctx.mem(width, align=width), ctx.vec(128))]

    # ------------------------------------------------------------------
    # Template emitters — pathologies
    # ------------------------------------------------------------------

    def _emit_unsupported(self, ctx) -> List[Instruction]:
        return [_i(ctx.rng.choice(("syscall", "cpuid", "rdtsc",
                                   "mfence", "rep_movsb")))]

    def _emit_invalid_mem(self, ctx) -> List[Instruction]:
        # Absolute address below the first mappable page (or far above
        # user space): isValidAddr() fails, mapping gives up.
        bad = ctx.rng.choice((0x40, 0x200, (1 << 47) + 0x1000))
        return [_i("mov", ctx.scratch(), Mem(disp=bad, width=8))]

    def _emit_page_stride(self, ctx) -> List[Instruction]:
        # Three page-granular pointer walks: the mapping stage would
        # need hundreds of mappings — exceeds maxNumFaults.
        out = []
        for _ in range(3):
            ptr = ctx.pointer()
            out.append(_i("mov", ctx.scratch(), Mem(base=ptr, width=8)))
            out.append(_i("add", ptr, Imm(4096)))
        return out

    def _emit_div_zero(self, ctx) -> List[Instruction]:
        ecx = lookup("ecx")
        edx = lookup("edx")
        return [_i("xor", ecx, ecx), _i("xor", edx, edx), _i("div", ecx)]

    def _emit_subnormal_kernel(self, ctx) -> List[Instruction]:
        # Produces genuinely subnormal f32 values from the canonical
        # init pattern: dividing the tiny loaded float (~5.7e-28) by
        # the int-converted pattern (~3.1e8) twice lands in the f32
        # subnormal range — a microcode assist unless FTZ is set.
        x, y, z = lookup("xmm0"), lookup("xmm1"), lookup("xmm2")
        return [
            _i("movss", x, ctx.mem(4, align=4)),
            _i("cvtsi2ss", y, lookup(_GPR32[ctx.scratch().name])),
            _i("divss", x, y),
            _i("divss", x, y),
            _i("mulss", z, x),
        ]

    def _emit_misaligned_vec(self, ctx) -> List[Instruction]:
        # Offset 60 mod 64: a 16-byte access always crosses a line.
        base = ctx.pointer()
        return [_i("movups", ctx.vec(128),
                   Mem(base=base, disp=60, width=16))]


class _BlockContext:
    """Per-block register discipline."""

    def __init__(self, rng: random.Random, register_only: bool):
        self.rng = rng
        self.register_only = register_only
        self.pointers = rng.sample(_POINTER_POOL,
                                   k=rng.randint(2, 4))
        self.scratches = rng.sample(_SCRATCH_POOL,
                                    k=rng.randint(4, len(_SCRATCH_POOL)))
        self.vecs = rng.sample(range(16), k=rng.randint(4, 10))

    def pointer(self) -> Register:
        return lookup(self.rng.choice(self.pointers))

    def scratch(self, exclude: Register = None,
                exclude_names=()) -> Register:
        names = [n for n in self.scratches
                 if n not in exclude_names
                 and (exclude is None or n != exclude.base)]
        return lookup(self.rng.choice(names))

    def vec(self, width: int, exclude: Register = None) -> Register:
        prefix = "ymm" if width == 256 else "xmm"
        choices = [i for i in self.vecs
                   if exclude is None or f"{prefix}{i}" != exclude.name]
        return lookup(f"{prefix}{self.rng.choice(choices)}")

    def mem(self, width: int, align: int = 0) -> Mem:
        align = align or width
        disp = self.rng.randrange(0, 512, max(align, 1))
        base = self.pointer()
        return Mem(base=base, disp=disp, width=width)
