"""Execution-frequency assignment (the DynamoRIO stand-in).

The paper records blocks *dynamically*, so every block carries an
execution frequency; per-application error figures and the production
case study weight blocks by it.  We simulate the dynamic run with a
random walk over a synthetic control-flow structure: blocks are
arranged into loop nests whose trip counts follow the application's
Zipf exponent, concentrating execution in a few hot inner loops —
the defining property of real profiles.
"""

from __future__ import annotations

import random
from typing import List, Sequence


def assign_frequencies(n_blocks: int, zipf_exponent: float,
                       seed: int = 0,
                       total_visits: int = 1_000_000) -> List[int]:
    """Frequencies for ``n_blocks`` blocks from a simulated trace.

    A random walk visits "functions" of consecutive blocks; inner
    loops re-execute with geometric trip counts whose mass follows a
    Zipf(``zipf_exponent``) rank distribution.  Every block is
    executed at least once (it was *recorded*, after all).
    """
    if n_blocks <= 0:
        return []
    rng = random.Random(f"trace:{seed}:{n_blocks}:{zipf_exponent}")
    # Zipf rank weights over blocks, with ranks shuffled so hot blocks
    # are scattered through the corpus like real hot loops.
    ranks = list(range(1, n_blocks + 1))
    rng.shuffle(ranks)
    weights = [1.0 / (rank ** zipf_exponent) for rank in ranks]
    total_weight = sum(weights)
    frequencies = [
        max(1, int(round(total_visits * w / total_weight)))
        for w in weights
    ]
    # Hot loops execute their whole body: smooth frequencies within
    # small runs of consecutive blocks (a loop body spans a few
    # blocks, all executed together).
    smoothed = list(frequencies)
    i = 0
    while i < n_blocks:
        span = min(rng.randint(1, 4), n_blocks - i)
        body_max = max(frequencies[i:i + span])
        for j in range(i, i + span):
            smoothed[j] = max(1, int(body_max
                                     * rng.uniform(0.6, 1.0)))
        i += span
    return smoothed


def weighted_choice(items: Sequence, frequencies: Sequence[int],
                    k: int, seed: int = 0) -> List:
    """Sample ``k`` items proportionally to frequency (with repeats)."""
    rng = random.Random(f"wchoice:{seed}:{k}")
    return rng.choices(list(items), weights=list(frequencies), k=k)
