"""The single source of truth for ``REPRO_*`` environment variables.

Three docs used to carry hand-maintained copies of the env-var table
(README.md, docs/performance.md, docs/robustness.md) and they drifted.
Now every variable is declared here once, the docs embed generated
tables between ``<!-- envvars:begin ... -->`` / ``<!-- envvars:end -->``
markers, ``tests/test_envvars.py`` asserts the embedded tables match
this registry byte-for-byte, and ``repro envvars`` prints the registry
(``--format json`` for machines).

Adding a variable: declare it here, then re-run
``python -m repro.envvars --update README.md docs/*.md`` (or paste the
output of ``repro envvars --group <g>``) to refresh the doc blocks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["EnvVar", "REGISTRY", "by_group", "markdown_table",
           "update_doc", "doc_blocks"]


@dataclass(frozen=True)
class EnvVar:
    """One documented environment variable."""

    name: str
    default: str
    description: str
    #: Doc-table grouping: pipeline | performance | robustness |
    #: observability | bench.
    group: str


REGISTRY: List[EnvVar] = [
    # -- pipeline shape ---------------------------------------------------
    EnvVar("REPRO_SCALE", "`0.004`",
           "corpus size relative to the paper's 358,561 blocks",
           "pipeline"),
    EnvVar("REPRO_SEED", "`0`",
           "base seed for corpus synthesis and simulated noise",
           "pipeline"),
    EnvVar("REPRO_JOBS", "`1` (CLI: `os.cpu_count()`)",
           "worker-pool size for `--jobs`-aware commands and benches",
           "pipeline"),
    EnvVar("REPRO_SHARD_SIZE", "`32`",
           "blocks per content-addressed measurement-cache shard",
           "pipeline"),
    EnvVar("REPRO_CACHE", "`.cache/`",
           "measurement-cache directory", "pipeline"),
    EnvVar("REPRO_REPORT_DIR", "`reports/`",
           "where benches and telemetry write reports", "pipeline"),
    EnvVar("REPRO_STREAM", "unset",
           "`1` routes profiling through the constant-memory "
           "streamed pipeline (same bytes as batch; "
           "[docs/performance.md](docs/performance.md))", "pipeline"),
    EnvVar("REPRO_STREAM_PREFETCH", "`2`",
           "streamed-mode prefetch depth per worker: at most "
           "`prefetch x jobs` shards are in flight", "pipeline"),
    EnvVar("REPRO_STREAM_EPOCH", "`512`",
           "blocks between streamed-mode retained-state resets "
           "(dedup memo + plan cache; same bytes, bounds RSS; "
           "`0` retains like batch)", "pipeline"),
    EnvVar("REPRO_SAMPLE", "unset",
           "default `--sample` fraction: profile a stratified sample "
           "and project full-corpus error tables with bootstrap CIs",
           "pipeline"),
    # -- performance toggles ----------------------------------------------
    EnvVar("REPRO_NO_FASTPATH", "unset",
           "`1` disables the simulation-core fast path "
           "(same bytes, slower)", "performance"),
    EnvVar("REPRO_NO_BLOCKPLAN", "unset",
           "`1` disables compiled block plans (same bytes, slower)",
           "performance"),
    EnvVar("REPRO_NO_LANES", "unset",
           "`1` disables batch-lane vectorized profiling "
           "(same bytes, slower)", "performance"),
    EnvVar("REPRO_LANE_WIDTH", "`16`",
           "max same-shape blocks per vectorized lane "
           "(`1` degenerates to the scalar path)", "performance"),
    EnvVar("REPRO_TRIAGE", "unset",
           "`1` enables learned triage: surrogate-confirmed cached "
           "measurements replay instead of re-simulating "
           "([docs/performance.md](docs/performance.md))",
           "performance"),
    EnvVar("REPRO_TRIAGE_TOL", "`0.25`",
           "relative surrogate-vs-cached agreement band for triage "
           "revalidation (routing only — never changes measured "
           "bytes)", "performance"),
    # -- robustness knobs -------------------------------------------------
    EnvVar("REPRO_CHAOS", "unset",
           "arm deterministic fault injection "
           "(`<seed>[:point=rate,...]`, [docs/robustness.md]"
           "(docs/robustness.md))", "robustness"),
    EnvVar("REPRO_STRICT", "unset (salvage)",
           "`1` makes quarantine decisions raise instead of degrade",
           "robustness"),
    EnvVar("REPRO_STEP_BUDGET", "`8000000`",
           "per-block dynamic-instruction watchdog budget",
           "robustness"),
    EnvVar("REPRO_SHARD_TIMEOUT", "`600`",
           "seconds before a pooled shard is declared hung and rescued",
           "robustness"),
    # -- observability ----------------------------------------------------
    EnvVar("REPRO_WINDOW", "`64`",
           "blocks per live-telemetry aggregation window",
           "observability"),
    EnvVar("REPRO_TELEMETRY", "`1` (benches)",
           "`0` lets the bench suites skip telemetry collection "
           "when chasing peak numbers", "observability"),
    # -- serve daemon -----------------------------------------------------
    EnvVar("REPRO_SERVE_QUEUE", "`64`",
           "admission queue capacity; a full queue sheds with "
           "429 + retry-after ([docs/service.md](docs/service.md))",
           "serve"),
    EnvVar("REPRO_SERVE_DEADLINE_MS", "`30000`",
           "default per-request deadline when the client sends none; "
           "expired queued work is cancelled and counted, never "
           "silently dropped", "serve"),
    EnvVar("REPRO_SERVE_RATE", "`0` (unlimited)",
           "per-client token-bucket refill rate in requests/second",
           "serve"),
    EnvVar("REPRO_SERVE_BURST", "`16`",
           "per-client token-bucket burst capacity", "serve"),
    EnvVar("REPRO_SERVE_BATCH", "`64`",
           "max requests coalesced into one content-addressed engine "
           "batch", "serve"),
    EnvVar("REPRO_SERVE_COALESCE_MS", "`5`",
           "how long the batcher lingers for concurrent requests to "
           "coalesce before executing", "serve"),
    EnvVar("REPRO_SERVE_BREAKER", "`3`",
           "consecutive worker-trouble batches before the circuit "
           "breaker opens and batches run scalar", "serve"),
    EnvVar("REPRO_SERVE_BREAKER_COOLDOWN_S", "`5`",
           "seconds the open breaker waits before a half-open pool "
           "probe", "serve"),
    EnvVar("REPRO_SERVE_WINDOW", "`32`",
           "finished requests per serve-metrics window "
           "(p50/p95/p99 latency, jitter, deadline-miss rate)",
           "serve"),
    EnvVar("REPRO_SERVE_DRAIN_S", "`10`",
           "ceiling on the graceful SIGTERM drain before forced "
           "shutdown", "serve"),
    EnvVar("REPRO_SERVE_STATE", "`<cache>/serve`",
           "daemon state directory: CRC-self-checked request journal "
           "plus per-(uarch, seed) shard caches", "serve"),
]

#: Order groups render in when a table spans several.
GROUP_ORDER = ("pipeline", "performance", "robustness",
               "observability", "serve", "bench")


def by_group(group: Optional[str] = None) -> List[EnvVar]:
    """Registry entries for one group (or all, in group order)."""
    if group is not None:
        return [v for v in REGISTRY if v.group == group]
    ordered = []
    for g in GROUP_ORDER:
        ordered.extend(v for v in REGISTRY if v.group == g)
    return ordered


def markdown_table(group: Optional[str] = None) -> str:
    """The generated markdown table for ``group`` (or everything)."""
    rows = by_group(group)
    lines = ["| variable | default | meaning |",
             "| --- | --- | --- |"]
    lines += [f"| `{v.name}` | {v.default} | {v.description} |"
              for v in rows]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Doc-block embedding
# ---------------------------------------------------------------------------

_BLOCK = re.compile(
    r"<!-- envvars:begin(?: group=(?P<group>[a-z,]+))? -->"
    r"(?P<body>.*?)"
    r"<!-- envvars:end -->", re.S)


def _render_groups(spec: Optional[str]) -> str:
    if not spec:
        return markdown_table()
    rows: List[EnvVar] = []
    for g in spec.split(","):
        rows.extend(by_group(g))
    lines = ["| variable | default | meaning |",
             "| --- | --- | --- |"]
    lines += [f"| `{v.name}` | {v.default} | {v.description} |"
              for v in rows]
    return "\n".join(lines)


def doc_blocks(text: str) -> List[Dict]:
    """Every envvars block in a doc: its group spec, body, expected."""
    blocks = []
    for match in _BLOCK.finditer(text):
        blocks.append({
            "group": match.group("group"),
            "body": match.group("body").strip("\n"),
            "expected": _render_groups(match.group("group")),
        })
    return blocks


def update_doc(text: str) -> str:
    """Rewrite every marker block in ``text`` with generated tables."""
    def _sub(match: "re.Match") -> str:
        spec = match.group("group")
        begin = "<!-- envvars:begin" + \
            (f" group={spec}" if spec else "") + " -->"
        return f"{begin}\n{_render_groups(spec)}\n<!-- envvars:end -->"
    return _BLOCK.sub(_sub, text)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.envvars [--update FILE...]``."""
    import argparse
    parser = argparse.ArgumentParser(
        description="print or re-embed the REPRO_* env-var registry")
    parser.add_argument("--group", choices=GROUP_ORDER, default=None)
    parser.add_argument("--format", choices=("table", "json"),
                        default="table")
    parser.add_argument("--update", nargs="+", metavar="FILE",
                        help="rewrite marker blocks in these docs")
    args = parser.parse_args(argv)
    if args.update:
        for path in args.update:
            with open(path) as fh:
                text = fh.read()
            updated = update_doc(text)
            if updated != text:
                with open(path, "w") as fh:
                    fh.write(updated)
                print(f"updated {path}")
        return 0
    if args.format == "json":
        import json
        print(json.dumps([v.__dict__ for v in by_group(args.group)],
                         indent=2))
    else:
        print(markdown_table(args.group))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
