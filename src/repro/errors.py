"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class AsmSyntaxError(ReproError):
    """The assembly text could not be parsed.

    Attributes:
        text: the offending source line (or fragment).
    """

    def __init__(self, message: str, text: str = ""):
        super().__init__(message if not text else f"{message}: {text!r}")
        self.text = text


class UnknownOpcodeError(ReproError):
    """An instruction uses a mnemonic the ISA tables do not define."""

    def __init__(self, mnemonic: str):
        super().__init__(f"unknown opcode: {mnemonic!r}")
        self.mnemonic = mnemonic


class UnsupportedInstructionError(ReproError):
    """The instruction is recognised but cannot be executed or timed.

    This mirrors real basic blocks containing privileged or otherwise
    unprofileable instructions (``syscall``, ``cpuid``, ...).
    """


class MemoryFault(ReproError):
    """A (simulated) access touched an unmapped virtual page.

    This is the analogue of SIGSEGV in the paper's ptrace-based harness;
    :mod:`repro.profiler.mapping` intercepts it to build page mappings.
    """

    def __init__(self, address: int, *, is_write: bool = False):
        kind = "write" if is_write else "read"
        super().__init__(f"fault: {kind} access to unmapped address {address:#x}")
        self.address = address
        self.is_write = is_write


class InvalidAddressFault(MemoryFault):
    """The faulting address can never be mapped (non-canonical / kernel).

    Fig. 2's ``isValidAddr`` check fails for these, so the monitor gives
    up on the block instead of creating a mapping.
    """


class ArithmeticFault(ReproError):
    """The executed code raised #DE (divide error) — simulated SIGFPE.

    Blocks whose execution divides by zero under the profiler's
    canonical initialisation can never be measured; they count toward
    the unprofileable residue of Table I.
    """

    def __init__(self, detail: str = "divide error"):
        super().__init__(detail)


class ProfilingFailure(ReproError):
    """A basic block could not be successfully profiled.

    Carries a machine-readable ``reason`` used by the ablation benches.
    """

    def __init__(self, reason: str, detail: str = ""):
        super().__init__(f"profiling failed ({reason})" + (f": {detail}" if detail else ""))
        self.reason = reason


class ChaosFault(ReproError):
    """A failure injected by the deterministic chaos framework.

    Raised at the ``block_poison`` fault point
    (:mod:`repro.resilience.chaos`) to simulate an arbitrary bug
    surfacing mid-simulation; the harness quarantines the block
    instead of letting the run die.
    """

    def __init__(self, point: str, key: str = ""):
        super().__init__(f"chaos fault injected at {point!r}"
                         + (f" (key {key!r})" if key else ""))
        self.point = point
        self.key = key


class StepBudgetExceeded(ReproError):
    """The executor's per-block step-budget watchdog tripped.

    A pathological block (or an injected hang) would otherwise stall a
    worker until the coarse shard deadline; the watchdog converts it
    into a quarantinable failure at a deterministic dynamic position.
    """

    def __init__(self, steps: int, budget: int):
        super().__init__(
            f"block exceeded the step budget ({steps} > {budget})")
        self.steps = steps
        self.budget = budget


class StrictModeViolation(ReproError):
    """A quarantine occurred while ``--strict`` mode was active.

    In salvage mode (the default) quarantines degrade gracefully —
    blocks land in the ``quarantined`` funnel bucket and corrupt cache
    files are moved aside.  Strict mode promotes any of those events
    into this exception so CI can fail fast.
    """

    def __init__(self, what: str, detail: str = ""):
        super().__init__(f"strict mode: {what}"
                         + (f": {detail}" if detail else ""))
        self.what = what
        self.detail = detail


class ModelError(ReproError):
    """A cost model could not analyse the given block.

    The paper reports OSACA crashing on unrecognised instruction forms;
    those crashes surface as this exception (rendered as ``-`` in the
    case-study table).
    """
