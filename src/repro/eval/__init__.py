"""Evaluation: metrics, validation protocol, cached pipeline, reports."""

from repro.eval.metrics import (average_error, kendall_tau,
                                relative_error, weighted_error)
from repro.eval.pipeline import (DEFAULT_SCALE, DEFAULT_SEED, UARCHES,
                                 Experiment, default_experiment)
from repro.eval.reporting import (bar_chart, format_table,
                                  grouped_bar_chart, schedule_diagram,
                                  side_by_side)
from repro.eval.sweeps import (SweepPoint, stability_table,
                                sweep_naive_unroll, sweep_unroll_pairs)
from repro.eval.tuning import TunedModel, TuningReport, tune
from repro.eval.validation import (ValidationResult, ValidationRow,
                                   profile_corpus, validate)

__all__ = [
    "relative_error", "average_error", "weighted_error", "kendall_tau",
    "Experiment", "default_experiment", "DEFAULT_SCALE", "DEFAULT_SEED",
    "UARCHES", "ValidationResult", "ValidationRow", "profile_corpus",
    "validate", "format_table", "bar_chart", "grouped_bar_chart",
    "schedule_diagram", "side_by_side",
    "tune", "TunedModel", "TuningReport",
    "SweepPoint", "stability_table",
    "sweep_naive_unroll", "sweep_unroll_pairs",
]
