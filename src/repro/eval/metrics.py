"""Accuracy metrics (§V).

The paper scores predictors by *relative error* — absolute error of
the predicted throughput normalised by the measured throughput — plus,
for the production case study, frequency-weighted error and Kendall's
tau (the fraction of pairwise throughput orderings a model preserves).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from scipy import stats


def relative_error(predicted: float, measured: float) -> float:
    """|predicted - measured| / measured (the paper's error metric)."""
    if measured <= 0:
        raise ValueError("measured throughput must be positive")
    return abs(predicted - measured) / measured


def average_error(pairs: Iterable[Tuple[float, float]]) -> Optional[float]:
    """Unweighted mean relative error over (predicted, measured)."""
    errors = [relative_error(p, m) for p, m in pairs]
    if not errors:
        return None
    return sum(errors) / len(errors)


def weighted_error(triples: Iterable[Tuple[float, float, float]]
                   ) -> Optional[float]:
    """Frequency-weighted mean relative error.

    ``triples`` are (predicted, measured, weight); the paper weights a
    block's error by its runtime execution frequency.
    """
    total = 0.0
    weight_sum = 0.0
    for predicted, measured, weight in triples:
        total += relative_error(predicted, measured) * weight
        weight_sum += weight
    if weight_sum == 0:
        return None
    return total / weight_sum


def kendall_tau(predicted: Sequence[float],
                measured: Sequence[float]) -> Optional[float]:
    """Kendall's tau-b between predicted and measured throughputs.

    Measures the fraction of pairwise orderings preserved — the paper
    reports it because a model that ranks blocks correctly is useful
    to an optimising compiler even when its absolute scale is off.
    """
    if len(predicted) != len(measured):
        raise ValueError("length mismatch")
    if len(predicted) < 2:
        return None
    tau, _pvalue = stats.kendalltau(predicted, measured)
    return float(tau)
