"""End-to-end experiment pipeline with caching.

Every bench and example needs the same expensive artefacts: a corpus,
its classification, per-uarch ground-truth measurements, and model
predictions.  ``Experiment`` builds them once per (scale, seed) —
memoised in-process and, for the measurements (the slow part, ~20 ms a
block), on disk under ``.cache/`` keyed by a corpus content hash so
repeated bench runs are fast and edits to the generators invalidate
cleanly.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.classify.categories import ClassifierResult, classify_blocks
from repro.corpus.dataset import Corpus, build_corpus, build_google_corpus
from repro.eval.validation import (ValidationResult, profile_corpus,
                                   validate)
from repro.models.base import CostModel
from repro.models.iaca import IacaModel
from repro.models.ithemal import IthemalModel
from repro.models.llvm_mca import LlvmMcaModel
from repro.models.osaca import OsacaModel

#: Default scale for benches: 1/250 of the paper's 358k blocks.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.004"))
DEFAULT_SEED = int(os.environ.get("REPRO_SEED", "0"))

UARCHES = ("ivybridge", "haswell", "skylake")


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CACHE",
                          os.path.join(os.path.dirname(__file__),
                                       "..", "..", "..", ".cache"))
    path = os.path.abspath(root)
    os.makedirs(path, exist_ok=True)
    return path


def _corpus_digest(corpus: Corpus) -> int:
    crc = 0
    for record in corpus:
        crc = zlib.crc32(record.block.text().encode(), crc)
    return crc


@dataclass
class Experiment:
    """Shared lazy artefacts for one (scale, seed) configuration."""

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    _corpus: Optional[Corpus] = field(default=None, repr=False)
    _classification: Optional[ClassifierResult] = field(default=None,
                                                        repr=False)
    _measured: Dict[str, Dict[int, float]] = field(default_factory=dict,
                                                   repr=False)
    _validations: Dict[str, ValidationResult] = field(
        default_factory=dict, repr=False)
    _models: Optional[List[CostModel]] = field(default=None, repr=False)
    _google: Optional[Dict[str, Corpus]] = field(default=None, repr=False)

    # ------------------------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            self._corpus = build_corpus(scale=self.scale, seed=self.seed)
        return self._corpus

    @property
    def google_corpora(self) -> Dict[str, Corpus]:
        if self._google is None:
            self._google = build_google_corpus(scale=self.scale,
                                               seed=self.seed)
        return self._google

    @property
    def classification(self) -> ClassifierResult:
        if self._classification is None:
            self._classification = classify_blocks(self.corpus.blocks)
        return self._classification

    @property
    def models(self) -> List[CostModel]:
        """The paper's four predictors (Ithemal trained lazily)."""
        if self._models is None:
            self._models = [IacaModel(), LlvmMcaModel(), IthemalModel(),
                            OsacaModel()]
        return self._models

    # ------------------------------------------------------------------

    def measured(self, uarch: str,
                 corpus: Optional[Corpus] = None,
                 tag: str = "main") -> Dict[int, float]:
        """Ground-truth throughputs (disk-cached)."""
        key = f"{tag}:{uarch}"
        if key in self._measured:
            return self._measured[key]
        corpus = corpus if corpus is not None else self.corpus
        digest = _corpus_digest(corpus)
        path = os.path.join(
            _cache_dir(),
            f"measured_{tag}_{uarch}_{self.seed}_{digest:08x}.json")
        if os.path.exists(path):
            with open(path) as fh:
                data = {int(k): v for k, v in json.load(fh).items()}
        else:
            data = profile_corpus(corpus, uarch, seed=self.seed)
            with open(path, "w") as fh:
                json.dump(data, fh)
        self._measured[key] = data
        return data

    def validation(self, uarch: str) -> ValidationResult:
        """Full §V validation for one microarchitecture (cached)."""
        if uarch not in self._validations:
            categories = {
                record.block_id: category
                for record, category in zip(self.corpus.records,
                                            self.classification.categories)
            }
            self._validations[uarch] = validate(
                self.corpus, uarch, self.models,
                categories=categories, seed=self.seed,
                measured=self.measured(uarch))
        return self._validations[uarch]

    def validations(self, uarches: Sequence[str] = UARCHES
                    ) -> Dict[str, ValidationResult]:
        return {uarch: self.validation(uarch) for uarch in uarches}

    def google_validation(self, app: str,
                          uarch: str = "haswell") -> ValidationResult:
        """§V case study: validate models on Spanner/Dremel blocks.

        Like the paper, the models arrive pre-built (Ithemal trained on
        the main suite's measurements) and are evaluated on the
        production application's most frequently executed blocks.
        OSACA is excluded ("due to licensing issues").
        """
        self.validation(uarch)  # ensures Ithemal is trained
        corpus = self.google_corpora[app]
        models = [m for m in self.models if m.name != "OSACA"]
        return validate(corpus, uarch, models, seed=self.seed,
                        measured=self.measured(uarch, corpus=corpus,
                                               tag=app),
                        train_fraction=0.0)


@lru_cache(maxsize=4)
def default_experiment(scale: float = DEFAULT_SCALE,
                       seed: int = DEFAULT_SEED) -> Experiment:
    """Process-wide shared experiment (what the benches use)."""
    return Experiment(scale=scale, seed=seed)
