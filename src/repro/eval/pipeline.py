"""End-to-end experiment pipeline with caching.

Every bench and example needs the same expensive artefacts: a corpus,
its classification, per-uarch ground-truth measurements, and model
predictions.  ``Experiment`` builds them once per (scale, seed) —
memoised in-process and, for the measurements (the slow part, ~20 ms a
block), on disk under ``.cache/`` keyed by a corpus content hash so
repeated bench runs are fast and edits to the generators invalidate
cleanly.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.telemetry import profiling
from repro.classify.categories import ClassifierResult, classify_blocks
from repro.corpus.dataset import Corpus, build_corpus, build_google_corpus
from repro.eval.validation import (CorpusProfile, ValidationResult,
                                   validate)
from repro.models.base import CostModel
from repro.models.iaca import IacaModel
from repro.models.ithemal import IthemalModel
from repro.models.llvm_mca import LlvmMcaModel
from repro.models.osaca import OsacaModel
from repro.parallel import (DEFAULT_SHARD_SIZE, ShardCache,
                            profile_corpus_sharded, shard_corpus)
from repro.resilience import JOURNAL_NAME, RunJournal
from repro.resilience import policy as resilience

#: Default scale for benches: 1/250 of the paper's 358k blocks.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.004"))
DEFAULT_SEED = int(os.environ.get("REPRO_SEED", "0"))
#: Worker processes for measurement.  1 (fully serial) unless
#: ``REPRO_JOBS`` says otherwise; the CLI defaults to every core
#: instead (see ``repro.parallel.default_jobs``).
DEFAULT_JOBS = max(1, int(os.environ.get("REPRO_JOBS", "1")))
SHARD_SIZE = max(1, int(os.environ.get("REPRO_SHARD_SIZE",
                                       str(DEFAULT_SHARD_SIZE))))

UARCHES = ("ivybridge", "haswell", "skylake")


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CACHE",
                          os.path.join(os.path.dirname(__file__),
                                       "..", "..", "..", ".cache"))
    path = os.path.abspath(root)
    os.makedirs(path, exist_ok=True)
    return path


def _corpus_digest(corpus: Corpus) -> int:
    """Process-stable content digest of a whole corpus.

    Cache keys must agree across worker processes and interpreter
    restarts, so this is CRC-32 over block texts — **never** builtin
    ``hash()``, whose string hashing is randomised per process by
    ``PYTHONHASHSEED``.  ``tests/parallel/test_sharding_properties.py``
    pins this by recomputing digests under different hash seeds.
    """
    crc = 0
    for record in corpus:
        crc = zlib.crc32(record.block.text().encode(), crc)
    return crc


#: Measurement-cache schema history.  v3 (the current format, managed
#: by :class:`repro.parallel.ShardCache`) stores one file per corpus
#: shard keyed by content digest, which makes invalidation incremental:
#: growing the corpus only profiles new/changed shards.  v2 was a
#: monolithic ``{version, throughputs, funnel}`` file; v1 a bare
#: ``{block_id: throughput}`` mapping.  Both legacy formats are
#: migrated on load (``ShardCache.import_v2``).
CACHE_VERSION = 3
LEGACY_CACHE_VERSION = 2


def _load_cache(path: str) -> Optional[CorpusProfile]:
    """Load a legacy (v1/v2) monolithic cache file.

    Defensive like the v3 loader: a truncated, garbage, or
    wrong-schema file reads as ``None`` (and is quarantined next to
    the file, or raises under ``--strict``) instead of crashing the
    run that merely tried to migrate it.
    """
    def reject(reason: str) -> None:
        resilience.quarantine_or_raise(
            f"corrupt legacy cache file {os.path.basename(path)}",
            reason)
        quarantine = os.path.join(os.path.dirname(path), "quarantine")
        os.makedirs(quarantine, exist_ok=True)
        try:
            os.replace(path, os.path.join(quarantine,
                                          os.path.basename(path)))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        telemetry.count("resilience.quarantined.cache_files")
        telemetry.event("resilience.cache_file_quarantined",
                        file=os.path.basename(path), reason=reason)

    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError:
        return None  # raced away; treat as absent
    except ValueError:
        reject("undecodable JSON")
        return None
    try:
        if isinstance(doc, dict) and "version" in doc:
            throughputs = {int(k): float(v)
                           for k, v in doc["throughputs"].items()}
            funnel = doc.get("funnel") or CorpusProfile.empty_funnel()
            if not isinstance(funnel, dict):
                raise ValueError("funnel is not a mapping")
        elif isinstance(doc, dict):  # legacy v1 payload
            throughputs = {int(k): float(v) for k, v in doc.items()}
            funnel = CorpusProfile.empty_funnel()
        else:
            raise TypeError("payload is not a mapping")
    except (TypeError, ValueError, KeyError, AttributeError):
        reject("wrong schema")
        return None
    return CorpusProfile(throughputs=throughputs, funnel=funnel)


def _store_cache(path: str, profile: CorpusProfile) -> None:
    """Write a monolithic v2 file (kept for migration tests/tools)."""
    payload = {"version": LEGACY_CACHE_VERSION,
               "throughputs": profile.throughputs,
               "funnel": profile.funnel}
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _legacy_cache_path(tag: str, uarch: str, seed: int,
                       digest: int) -> str:
    """Where pre-v3 runs stored the whole-corpus measurement file."""
    return os.path.join(
        _cache_dir(), f"measured_{tag}_{uarch}_{seed}_{digest:08x}.json")


def _shard_cache_dir(tag: str, uarch: str, seed: int) -> str:
    """v3 layout: one directory per (tag, uarch, seed), shared by
    every corpus content — shard files inside are digest-keyed."""
    return os.path.join(_cache_dir(),
                        f"measured_v3_{tag}_{uarch}_{seed}")


@dataclass
class Experiment:
    """Shared lazy artefacts for one (scale, seed) configuration."""

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    #: Worker processes for :meth:`measured` (1 = serial in-process).
    jobs: int = DEFAULT_JOBS
    shard_size: int = SHARD_SIZE
    _corpus: Optional[Corpus] = field(default=None, repr=False)
    _classification: Optional[ClassifierResult] = field(default=None,
                                                        repr=False)
    _measured: Dict[str, Dict[int, float]] = field(default_factory=dict,
                                                   repr=False)
    _funnels: Dict[str, Dict] = field(default_factory=dict, repr=False)
    _infos: Dict[str, Dict] = field(default_factory=dict, repr=False)
    _validations: Dict[str, ValidationResult] = field(
        default_factory=dict, repr=False)
    _models: Optional[List[CostModel]] = field(default=None, repr=False)
    _google: Optional[Dict[str, Corpus]] = field(default=None, repr=False)

    # ------------------------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            with profiling.phase("corpus_build"), \
                    telemetry.span("experiment.corpus_build",
                                   scale=self.scale,
                                   seed=self.seed) as sp:
                self._corpus = build_corpus(scale=self.scale,
                                            seed=self.seed)
                sp.annotate(blocks=len(self._corpus))
            telemetry.set_gauge("experiment.corpus_size",
                                len(self._corpus))
        return self._corpus

    @property
    def google_corpora(self) -> Dict[str, Corpus]:
        if self._google is None:
            with telemetry.span("experiment.google_corpus_build"):
                self._google = build_google_corpus(scale=self.scale,
                                                   seed=self.seed)
        return self._google

    @property
    def classification(self) -> ClassifierResult:
        if self._classification is None:
            with profiling.phase("classify"), \
                    telemetry.span("experiment.classify") as sp:
                self._classification = classify_blocks(self.corpus.blocks)
                sp.annotate(blocks=len(self.corpus))
        return self._classification

    @property
    def models(self) -> List[CostModel]:
        """The paper's four predictors (Ithemal trained lazily)."""
        if self._models is None:
            self._models = [IacaModel(), LlvmMcaModel(), IthemalModel(),
                            OsacaModel()]
        return self._models

    # ------------------------------------------------------------------

    def measured(self, uarch: str,
                 corpus: Optional[Corpus] = None,
                 tag: str = "main",
                 jobs: Optional[int] = None) -> Dict[int, float]:
        """Ground-truth throughputs (disk-cached, optionally parallel).

        Measurement goes through the sharded engine regardless of
        ``jobs``: the corpus is split into deterministic shards, shards
        already in the v3 cache are loaded, and only the rest are
        profiled — serially in-process for ``jobs=1``, across a worker
        pool otherwise.  Serial and parallel runs are bit-identical
        (``tests/parallel/test_determinism.py``).  A legacy monolithic
        (v1/v2) cache file for this exact corpus is migrated into
        per-shard entries on first load.
        """
        key = f"{tag}:{uarch}"
        if key in self._measured:
            return self._measured[key]
        corpus = corpus if corpus is not None else self.corpus
        jobs = self.jobs if jobs is None else max(1, jobs)
        digest = _corpus_digest(corpus)
        cache = ShardCache(_shard_cache_dir(tag, uarch, self.seed))
        shards = shard_corpus(corpus, self.shard_size)
        legacy = _legacy_cache_path(tag, uarch, self.seed, digest)
        if os.path.exists(legacy) \
                and any(s not in cache for s in shards):
            self._import_legacy(legacy, corpus, shards, cache)
        # Always-on run journal, co-located with the shard cache: a
        # run killed at any point resumes from its completed shards
        # (verified by checksum) on the next call with the same
        # (corpus, uarch, seed).
        journal = RunJournal(os.path.join(cache.directory,
                                          JOURNAL_NAME))
        with profiling.phase(f"measure:{key}"), \
                telemetry.span("experiment.measure", uarch=uarch,
                               tag=tag, jobs=jobs) as sp:
            stats: Dict = {}
            profile = profile_corpus_sharded(
                corpus, uarch, seed=self.seed, jobs=jobs,
                shards=shards, cache=cache, journal=journal,
                stats=stats, run_label=key)
            if stats["profiled"] or stats["failed"]:
                telemetry.count("cache.misses")
                telemetry.count("cache.writes", stats["written"])
                telemetry.event("cache.miss", path=cache.directory,
                                tag=tag, uarch=uarch,
                                shards=stats["shards"],
                                cache_hits=stats["cache_hits"])
                sp.annotate(cache="miss", **stats)
            else:
                telemetry.count("cache.hits")
                telemetry.event("cache.hit", path=cache.directory,
                                tag=tag, uarch=uarch,
                                shards=stats["shards"])
                sp.annotate(cache="hit")
        self._measured[key] = profile.throughputs
        self._funnels[key] = profile.funnel
        self._infos[key] = profile.info
        return profile.throughputs

    @staticmethod
    def _import_legacy(path: str, corpus: Corpus, shards,
                       cache: ShardCache) -> None:
        """Merge-on-load: split a v1/v2 file into v3 shard entries."""
        profile = _load_cache(path)
        if profile is None:
            return  # corrupt legacy file was quarantined; re-profile
        if not profile.funnel.get("total"):
            # Pre-telemetry (v1) cache: the per-reason breakdown is
            # gone, but coverage must still account for every block.
            accepted = sum(1 for r in corpus
                           if r.block_id in profile.throughputs)
            dropped = len(corpus) - accepted
            profile.funnel = {
                "total": len(corpus), "accepted": accepted,
                "dropped": {"unknown_pre_telemetry_cache":
                            dropped} if dropped else {}}
        imported = cache.import_v2(shards, profile)
        telemetry.count("cache.legacy_imports", imported)
        telemetry.event("cache.legacy_import", path=path,
                        shards=imported)

    def funnel(self, uarch: str, tag: str = "main") -> Optional[Dict]:
        """Accept/drop breakdown recorded with the measurements.

        ``None`` until :meth:`measured` has run.  Measurements loaded
        from a legacy v1 cache file (which predates funnel recording)
        get a synthesised funnel whose drops are lumped under
        ``unknown_pre_telemetry_cache``.
        """
        return self._funnels.get(f"{tag}:{uarch}")

    def info(self, uarch: str, tag: str = "main") -> Optional[Dict]:
        """Informational per-run tallies (e.g. fast-path usage).

        ``None`` until :meth:`measured` has run.  Unlike the funnel,
        these never affect accepted/dropped accounting.
        """
        return self._infos.get(f"{tag}:{uarch}")

    def validation(self, uarch: str) -> ValidationResult:
        """Full §V validation for one microarchitecture (cached).

        With telemetry enabled, each fresh validation also writes a
        run report (``reports/run_validation_<uarch>.{json,txt}``)
        covering stage timings, cache behaviour, and the coverage
        funnel.
        """
        if uarch not in self._validations:
            with profiling.phase(f"validate:{uarch}"), \
                    telemetry.span("experiment.validate", uarch=uarch):
                categories = {
                    record.block_id: category
                    for record, category in
                    zip(self.corpus.records,
                        self.classification.categories)
                }
                self._validations[uarch] = validate(
                    self.corpus, uarch, self.models,
                    categories=categories, seed=self.seed,
                    measured=self.measured(uarch))
            if telemetry.is_enabled():
                self.write_run_report(uarch)
        return self._validations[uarch]

    def write_run_report(self, uarch: str,
                         directory: Optional[str] = None) -> Dict:
        """Emit the telemetry run report for one validation run."""
        funnel = self.funnel(uarch)
        if funnel is not None and not funnel.get("total"):
            funnel = None  # legacy cache: fall back to live counters
        info = self.info(uarch)
        if funnel is not None and info:
            # Attach at report-build time only: the stored funnel stays
            # byte-identical whether the fast path ran or not.
            funnel = {**funnel, "info": dict(info)}
        report = telemetry.build_run_report(
            telemetry.registry(), name=f"run_validation_{uarch}",
            meta={"uarch": uarch, "scale": self.scale,
                  "seed": self.seed, "corpus_size": len(self.corpus)},
            funnel=funnel)
        telemetry.write_run_report(report, directory)
        return report

    def validations(self, uarches: Sequence[str] = UARCHES
                    ) -> Dict[str, ValidationResult]:
        return {uarch: self.validation(uarch) for uarch in uarches}

    def google_validation(self, app: str,
                          uarch: str = "haswell") -> ValidationResult:
        """§V case study: validate models on Spanner/Dremel blocks.

        Like the paper, the models arrive pre-built (Ithemal trained on
        the main suite's measurements) and are evaluated on the
        production application's most frequently executed blocks.
        OSACA is excluded ("due to licensing issues").
        """
        self.validation(uarch)  # ensures Ithemal is trained
        corpus = self.google_corpora[app]
        models = [m for m in self.models if m.name != "OSACA"]
        return validate(corpus, uarch, models, seed=self.seed,
                        measured=self.measured(uarch, corpus=corpus,
                                               tag=app),
                        train_fraction=0.0)


@lru_cache(maxsize=4)
def default_experiment(scale: float = DEFAULT_SCALE,
                       seed: int = DEFAULT_SEED) -> Experiment:
    """Process-wide shared experiment (what the benches use)."""
    return Experiment(scale=scale, seed=seed)
