"""End-to-end experiment pipeline with caching.

Every bench and example needs the same expensive artefacts: a corpus,
its classification, per-uarch ground-truth measurements, and model
predictions.  ``Experiment`` builds them once per (scale, seed) —
memoised in-process and, for the measurements (the slow part, ~20 ms a
block), on disk under ``.cache/`` keyed by a corpus content hash so
repeated bench runs are fast and edits to the generators invalidate
cleanly.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.classify.categories import ClassifierResult, classify_blocks
from repro.corpus.dataset import Corpus, build_corpus, build_google_corpus
from repro.eval.validation import (CorpusProfile, ValidationResult,
                                   profile_corpus_detailed, validate)
from repro.models.base import CostModel
from repro.models.iaca import IacaModel
from repro.models.ithemal import IthemalModel
from repro.models.llvm_mca import LlvmMcaModel
from repro.models.osaca import OsacaModel

#: Default scale for benches: 1/250 of the paper's 358k blocks.
DEFAULT_SCALE = float(os.environ.get("REPRO_SCALE", "0.004"))
DEFAULT_SEED = int(os.environ.get("REPRO_SEED", "0"))

UARCHES = ("ivybridge", "haswell", "skylake")


def _cache_dir() -> str:
    root = os.environ.get("REPRO_CACHE",
                          os.path.join(os.path.dirname(__file__),
                                       "..", "..", "..", ".cache"))
    path = os.path.abspath(root)
    os.makedirs(path, exist_ok=True)
    return path


def _corpus_digest(corpus: Corpus) -> int:
    crc = 0
    for record in corpus:
        crc = zlib.crc32(record.block.text().encode(), crc)
    return crc


#: Measurement-cache schema.  v2 adds the accept/drop funnel so a
#: cache-hit run can still emit a complete coverage report; v1 files
#: (a bare ``{block_id: throughput}`` mapping) load with no funnel.
CACHE_VERSION = 2


def _load_cache(path: str) -> CorpusProfile:
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, dict) and "version" in doc:
        throughputs = {int(k): v for k, v in doc["throughputs"].items()}
        funnel = doc.get("funnel") or CorpusProfile.empty_funnel()
    else:  # legacy v1 payload
        throughputs = {int(k): v for k, v in doc.items()}
        funnel = CorpusProfile.empty_funnel()
    return CorpusProfile(throughputs=throughputs, funnel=funnel)


def _store_cache(path: str, profile: CorpusProfile) -> None:
    """Atomic write: an interrupted bench can't poison the cache."""
    payload = {"version": CACHE_VERSION,
               "throughputs": profile.throughputs,
               "funnel": profile.funnel}
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


@dataclass
class Experiment:
    """Shared lazy artefacts for one (scale, seed) configuration."""

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    _corpus: Optional[Corpus] = field(default=None, repr=False)
    _classification: Optional[ClassifierResult] = field(default=None,
                                                        repr=False)
    _measured: Dict[str, Dict[int, float]] = field(default_factory=dict,
                                                   repr=False)
    _funnels: Dict[str, Dict] = field(default_factory=dict, repr=False)
    _validations: Dict[str, ValidationResult] = field(
        default_factory=dict, repr=False)
    _models: Optional[List[CostModel]] = field(default=None, repr=False)
    _google: Optional[Dict[str, Corpus]] = field(default=None, repr=False)

    # ------------------------------------------------------------------

    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            with telemetry.span("experiment.corpus_build",
                                scale=self.scale, seed=self.seed) as sp:
                self._corpus = build_corpus(scale=self.scale,
                                            seed=self.seed)
                sp.annotate(blocks=len(self._corpus))
            telemetry.set_gauge("experiment.corpus_size",
                                len(self._corpus))
        return self._corpus

    @property
    def google_corpora(self) -> Dict[str, Corpus]:
        if self._google is None:
            with telemetry.span("experiment.google_corpus_build"):
                self._google = build_google_corpus(scale=self.scale,
                                                   seed=self.seed)
        return self._google

    @property
    def classification(self) -> ClassifierResult:
        if self._classification is None:
            with telemetry.span("experiment.classify") as sp:
                self._classification = classify_blocks(self.corpus.blocks)
                sp.annotate(blocks=len(self.corpus))
        return self._classification

    @property
    def models(self) -> List[CostModel]:
        """The paper's four predictors (Ithemal trained lazily)."""
        if self._models is None:
            self._models = [IacaModel(), LlvmMcaModel(), IthemalModel(),
                            OsacaModel()]
        return self._models

    # ------------------------------------------------------------------

    def measured(self, uarch: str,
                 corpus: Optional[Corpus] = None,
                 tag: str = "main") -> Dict[int, float]:
        """Ground-truth throughputs (disk-cached)."""
        key = f"{tag}:{uarch}"
        if key in self._measured:
            return self._measured[key]
        corpus = corpus if corpus is not None else self.corpus
        digest = _corpus_digest(corpus)
        path = os.path.join(
            _cache_dir(),
            f"measured_{tag}_{uarch}_{self.seed}_{digest:08x}.json")
        with telemetry.span("experiment.measure", uarch=uarch,
                            tag=tag) as sp:
            if os.path.exists(path):
                profile = _load_cache(path)
                if not profile.funnel.get("total"):
                    # Pre-telemetry (v1) cache: the per-reason
                    # breakdown is gone, but coverage must still
                    # account for every block.
                    accepted = sum(1 for r in corpus
                                   if r.block_id in profile.throughputs)
                    dropped = len(corpus) - accepted
                    profile.funnel = {
                        "total": len(corpus), "accepted": accepted,
                        "dropped": {"unknown_pre_telemetry_cache":
                                    dropped} if dropped else {}}
                telemetry.count("cache.hits")
                telemetry.event("cache.hit", path=path, tag=tag,
                                uarch=uarch)
                sp.annotate(cache="hit")
            else:
                telemetry.count("cache.misses")
                telemetry.event("cache.miss", path=path, tag=tag,
                                uarch=uarch)
                profile = profile_corpus_detailed(corpus, uarch,
                                                  seed=self.seed)
                _store_cache(path, profile)
                telemetry.count("cache.writes")
                telemetry.event("cache.write", path=path, tag=tag,
                                uarch=uarch,
                                blocks=len(profile.throughputs))
                sp.annotate(cache="miss")
        self._measured[key] = profile.throughputs
        self._funnels[key] = profile.funnel
        return profile.throughputs

    def funnel(self, uarch: str, tag: str = "main") -> Optional[Dict]:
        """Accept/drop breakdown recorded with the measurements.

        ``None`` until :meth:`measured` has run.  Measurements loaded
        from a legacy v1 cache file (which predates funnel recording)
        get a synthesised funnel whose drops are lumped under
        ``unknown_pre_telemetry_cache``.
        """
        return self._funnels.get(f"{tag}:{uarch}")

    def validation(self, uarch: str) -> ValidationResult:
        """Full §V validation for one microarchitecture (cached).

        With telemetry enabled, each fresh validation also writes a
        run report (``reports/run_validation_<uarch>.{json,txt}``)
        covering stage timings, cache behaviour, and the coverage
        funnel.
        """
        if uarch not in self._validations:
            with telemetry.span("experiment.validate", uarch=uarch):
                categories = {
                    record.block_id: category
                    for record, category in
                    zip(self.corpus.records,
                        self.classification.categories)
                }
                self._validations[uarch] = validate(
                    self.corpus, uarch, self.models,
                    categories=categories, seed=self.seed,
                    measured=self.measured(uarch))
            if telemetry.is_enabled():
                self.write_run_report(uarch)
        return self._validations[uarch]

    def write_run_report(self, uarch: str,
                         directory: Optional[str] = None) -> Dict:
        """Emit the telemetry run report for one validation run."""
        funnel = self.funnel(uarch)
        if funnel is not None and not funnel.get("total"):
            funnel = None  # legacy cache: fall back to live counters
        report = telemetry.build_run_report(
            telemetry.registry(), name=f"run_validation_{uarch}",
            meta={"uarch": uarch, "scale": self.scale,
                  "seed": self.seed, "corpus_size": len(self.corpus)},
            funnel=funnel)
        telemetry.write_run_report(report, directory)
        return report

    def validations(self, uarches: Sequence[str] = UARCHES
                    ) -> Dict[str, ValidationResult]:
        return {uarch: self.validation(uarch) for uarch in uarches}

    def google_validation(self, app: str,
                          uarch: str = "haswell") -> ValidationResult:
        """§V case study: validate models on Spanner/Dremel blocks.

        Like the paper, the models arrive pre-built (Ithemal trained on
        the main suite's measurements) and are evaluated on the
        production application's most frequently executed blocks.
        OSACA is excluded ("due to licensing issues").
        """
        self.validation(uarch)  # ensures Ithemal is trained
        corpus = self.google_corpora[app]
        models = [m for m in self.models if m.name != "OSACA"]
        return validate(corpus, uarch, models, seed=self.seed,
                        measured=self.measured(uarch, corpus=corpus,
                                               tag=app),
                        train_fraction=0.0)


@lru_cache(maxsize=4)
def default_experiment(scale: float = DEFAULT_SCALE,
                       seed: int = DEFAULT_SEED) -> Experiment:
    """Process-wide shared experiment (what the benches use)."""
    return Experiment(scale=scale, seed=seed)
