"""Text renderers for the paper's tables and figures.

The benches print each table/figure in the same shape the paper uses,
with the paper's reported values alongside ours where applicable.
Figures are rendered as labelled ASCII bar charts — good enough to
compare orderings and magnitudes at a glance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4f}" if abs(cell) < 10 else f"{cell:.1f}"
    return str(cell)


def bar_chart(values: Dict[str, float], title: str = "",
              width: int = 46, fmt: str = "{:.3f}") -> str:
    """Horizontal ASCII bar chart (one bar per key)."""
    lines = [title] if title else []
    if not values:
        return title
    peak = max((v for v in values.values() if v is not None),
               default=1.0) or 1.0
    label_w = max(len(str(k)) for k in values)
    for key, value in values.items():
        if value is None:
            lines.append(f"{str(key).ljust(label_w)} | -")
            continue
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{str(key).ljust(label_w)} | "
                     f"{bar} {fmt.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Dict[str, Dict[str, Optional[float]]],
                      title: str = "", width: int = 40,
                      fmt: str = "{:.3f}") -> str:
    """Grouped ASCII bars: one section per group, one bar per series.

    Mirrors the paper's per-application / per-cluster error figures
    (group = application or category, series = model).
    """
    lines = [title] if title else []
    flat = [v for g in groups.values() for v in g.values()
            if v is not None]
    peak = max(flat, default=1.0) or 1.0
    series_w = max((len(s) for g in groups.values() for s in g), default=4)
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            if value is None:
                lines.append(f"  {name.ljust(series_w)} | -")
                continue
            bar = "#" * max(1, int(round(width * value / peak)))
            lines.append(f"  {name.ljust(series_w)} | "
                         f"{bar} {fmt.format(value)}")
    return "\n".join(lines)


def schedule_diagram(records, n_instructions: int,
                     max_cycles: int = 64, title: str = "") -> str:
    """ASCII dispatch timeline (the paper's Fig. 11).

    One row per micro-op; columns are cycles; ``D`` marks the dispatch
    cycle, ``=`` execution until the result is ready.
    """
    lines = [title] if title else []
    lines.append("cycle      " + "".join(
        str(c % 10) for c in range(max_cycles)))
    for rec in records:
        if rec.instr_index >= n_instructions:
            break
        if rec.dispatch >= max_cycles:
            continue
        row = [" "] * max_cycles
        end = min(rec.finish, max_cycles)
        for c in range(rec.dispatch, end):
            row[c] = "="
        row[rec.dispatch] = "D"
        label = f"{rec.mnemonic[:8]:8s}.{rec.kind[:4]:4s}"
        port = f"p{rec.port}" if rec.port is not None else "--"
        lines.append(f"{label}{port:>3s} " + "".join(row))
    return "\n".join(lines)


def side_by_side(paper: Dict[str, float], ours: Dict[str, float],
                 title: str = "",
                 headers: Tuple[str, str, str] = ("metric", "paper",
                                                  "ours")) -> str:
    """Two-column comparison against the paper's reported numbers."""
    rows: List[Sequence[object]] = []
    for key in paper:
        rows.append((key, paper[key], ours.get(key)))
    return format_table(headers, rows, title=title)
