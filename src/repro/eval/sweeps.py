"""Parameter sweeps over the measurement methodology.

§III-B leaves the unroll factors as free parameters ("large enough to
get the processor into a steady state"); these helpers sweep them (and
the acceptance threshold) so the stability claims behind those choices
can be checked quantitatively — the data behind DESIGN.md's ablation
list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import BasicBlock
from repro.profiler.environment import Environment, EnvironmentConfig
from repro.profiler.filters import AcceptancePolicy
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.profiler.mapping import map_pages
from repro.profiler.unroll import UnrollPlan
from repro.runtime.executor import Executor
from repro.uarch.machine import Machine


@dataclass
class SweepPoint:
    """One configuration's outcome."""

    parameter: Tuple
    throughput: Optional[float]
    failure: Optional[str] = None


def _measure_at(machine: Machine, block: BasicBlock,
                plan: UnrollPlan,
                env_config: Optional[EnvironmentConfig] = None
                ) -> SweepPoint:
    env = Environment(env_config or EnvironmentConfig())
    env.reset()
    outcome = map_pages(env, block, unroll=plan.max_factor)
    if not outcome.success:
        return SweepPoint(plan.factors, None, outcome.failure.value)
    cycles = []
    for unroll in plan.factors:
        env.reinitialize()
        trace = Executor(env.state, env.memory).execute_block(block,
                                                              unroll)
        run = machine.run(block, unroll, trace, env.memory)
        accepted, failure, _ = AcceptancePolicy().accept(run.samples)
        if failure is not None:
            return SweepPoint(plan.factors, None, failure.value)
        cycles.append(accepted)
    return SweepPoint(plan.factors,
                      plan.derive_throughput(tuple(cycles)))


def sweep_unroll_pairs(block: BasicBlock,
                       pairs: Sequence[Tuple[int, int]],
                       uarch: str = "haswell",
                       seed: int = 0) -> List[SweepPoint]:
    """Eq. 2 throughput across (u, u') choices.

    The paper's claim: any pair past the steady-state knee gives the
    same answer.  Points that violate the §III-C invariants (e.g. the
    larger factor overflowing L1I) report their failure instead.
    """
    machine = Machine(uarch, seed=seed)
    return [
        _measure_at(machine, block, UnrollPlan(factors=pair))
        for pair in pairs
    ]


def sweep_naive_unroll(block: BasicBlock,
                       factors: Sequence[int],
                       uarch: str = "haswell",
                       seed: int = 0) -> List[SweepPoint]:
    """Eq. 1 throughput across single unroll factors (warm-up bias)."""
    machine = Machine(uarch, seed=seed)
    return [
        _measure_at(machine, block, UnrollPlan(factors=(factor,)))
        for factor in factors
    ]


def stability_table(points: Sequence[SweepPoint]
                    ) -> Dict[Tuple, Optional[float]]:
    """parameter -> throughput view for reporting."""
    return {p.parameter: p.throughput for p in points}
