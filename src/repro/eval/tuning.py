"""Cost-model tuning from measured data (the paper's raison d'être).

The paper's conclusion: "Our benchmark can be used to systematically
evaluate and **tune** performance models of x86-64 basic blocks", and
its introduction quotes an LLVM commit choosing cost-model parameters
"haphazardly".  This module closes the loop: given a simulator-style
model and a measured corpus, it fits per-timing-class corrections to
the model's tables by coordinate descent on the measured error —
exactly the workflow the suite enables for LLVM's scheduling-model
maintainers.

``tune`` returns a :class:`TunedModel` (the original instance is left
untouched) plus a per-class report of the chosen corrections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import UnsupportedInstructionError
from repro.eval.metrics import average_error
from repro.isa.instruction import BasicBlock
from repro.models.portsim import PortSimulatorModel
from repro.models.tables import perturb_entry
from repro.uarch.uops import timing_class


class TunedModel(PortSimulatorModel):
    """A simulator model with per-class latency/occupancy corrections."""

    def __init__(self, base: PortSimulatorModel,
                 scales: Dict[str, float]):
        super().__init__(**base._policy, residuals=base._residuals)
        self.name = f"{base.name}+tuned"
        self._base = base
        self.scales = dict(scales)

    def build_table(self, uarch, base_table, base_div):
        table, div = self._base.build_table(uarch, base_table, base_div)
        tuned = {
            cls: perturb_entry(entry, self.scales.get(cls, 1.0))
            for cls, entry in table.items()
        }
        return tuned, div

    def build_descriptor(self, desc):
        return self._base.build_descriptor(desc)

    def preprocess(self, block):
        return self._base.preprocess(block)


@dataclass
class ClassAdjustment:
    """One tuning decision."""

    timing_class: str
    factor: float
    error_before: float
    error_after: float
    n_blocks: int


@dataclass
class TuningReport:
    model: str
    uarch: str
    adjustments: List[ClassAdjustment]
    error_before: float
    error_after: float


def _blocks_by_class(blocks: Sequence[BasicBlock]
                     ) -> Dict[str, List[int]]:
    by_class: Dict[str, List[int]] = {}
    for index, block in enumerate(blocks):
        seen = set()
        for instr in block:
            if instr.info.unsupported:
                continue
            try:
                cls = timing_class(instr)
            except UnsupportedInstructionError:
                continue
            if cls not in seen:
                seen.add(cls)
                by_class.setdefault(cls, []).append(index)
    return by_class


def _mean_error(model, blocks, measured, indices, uarch) -> Optional[float]:
    pairs = []
    for index in indices:
        prediction = model.predict_safe(blocks[index], uarch)
        if prediction.ok:
            pairs.append((prediction.throughput, measured[index]))
    return average_error(pairs)


def tune(base: PortSimulatorModel,
         blocks: Sequence[BasicBlock],
         measured: Sequence[float],
         uarch: str,
         grid: Tuple[float, ...] = (0.5, 0.67, 0.8, 1.0, 1.25, 1.5, 2.0),
         max_classes: int = 10,
         sample_per_class: int = 24,
         passes: int = 1) -> Tuple[TunedModel, TuningReport]:
    """Fit per-class table corrections minimising measured error.

    Coordinate descent: for the most frequent timing classes, try each
    scale factor on a sample of blocks containing that class and keep
    the best.  Classes are visited most-common-first; ``passes`` > 1
    revisits them (adjustments interact through port contention).
    """
    if len(blocks) != len(measured):
        raise ValueError("blocks and measured differ in length")
    by_class = _blocks_by_class(blocks)
    ranked = sorted(by_class, key=lambda cls: -len(by_class[cls]))
    ranked = ranked[:max_classes]

    scales: Dict[str, float] = {}
    adjustments: List[ClassAdjustment] = []
    all_indices = list(range(len(blocks)))
    before_overall = _mean_error(base, blocks, measured, all_indices,
                                 uarch) or 0.0

    for _ in range(max(passes, 1)):
        for cls in ranked:
            indices = by_class[cls][:sample_per_class]
            best_factor, best_error = None, None
            baseline_error = None
            for factor in grid:
                candidate = TunedModel(base, {**scales, cls: factor})
                error = _mean_error(candidate, blocks, measured,
                                    indices, uarch)
                if error is None:
                    continue
                if factor == 1.0 and cls not in scales:
                    baseline_error = error
                # Prefer the smallest change on ties: a correction
                # that does not measurably help should not be made.
                key = (round(error, 4), abs(factor - 1.0))
                if best_error is None or key < best_error:
                    best_factor, best_error = factor, key
            best_error = best_error[0] if best_error else None
            if best_factor is None:
                continue
            current = scales.get(cls, 1.0)
            if baseline_error is None:
                baseline_error = best_error
            if best_factor != current:
                scales[cls] = best_factor
                adjustments.append(ClassAdjustment(
                    timing_class=cls, factor=best_factor,
                    error_before=round(baseline_error, 4),
                    error_after=round(best_error, 4),
                    n_blocks=len(indices)))

    tuned = TunedModel(base, scales)
    after_overall = _mean_error(tuned, blocks, measured, all_indices,
                                uarch) or before_overall
    report = TuningReport(model=base.name, uarch=uarch,
                          adjustments=adjustments,
                          error_before=round(before_overall, 4),
                          error_after=round(after_overall, 4))
    return tuned, report
