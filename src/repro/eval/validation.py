"""Model validation over a profiled corpus (§V).

``validate`` is the paper's experimental core: profile every block on
one machine, train the learned model on a held-out split of the
measurements, run every predictor over the evaluation split, and
aggregate relative errors overall / per application / per category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.corpus.dataset import Corpus
from repro.eval import metrics
from repro.models.base import CostModel
from repro.models.ithemal import IthemalModel
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.telemetry import core as telemetry
from repro.uarch.machine import Machine


@dataclass
class ValidationRow:
    """One successfully profiled block with its predictions."""

    block_id: int
    application: str
    frequency: int
    category: Optional[int]
    measured: float
    predictions: Dict[str, Optional[float]] = field(default_factory=dict)


@dataclass
class ValidationResult:
    """All rows for one microarchitecture."""

    uarch: str
    rows: List[ValidationRow]
    profiled_fraction: float
    model_names: List[str]

    # -- aggregations --------------------------------------------------------

    def _pairs(self, model: str, rows: Sequence[ValidationRow]):
        for row in rows:
            predicted = row.predictions.get(model)
            if predicted is not None and row.measured > 0:
                yield predicted, row.measured, row.frequency

    def overall_error(self, model: str) -> Optional[float]:
        return metrics.average_error(
            (p, m) for p, m, _ in self._pairs(model, self.rows))

    def weighted_overall_error(self, model: str) -> Optional[float]:
        return metrics.weighted_error(self._pairs(model, self.rows))

    def kendall_tau(self, model: str) -> Optional[float]:
        pairs = list(self._pairs(model, self.rows))
        return metrics.kendall_tau([p for p, _, _ in pairs],
                                   [m for _, m, _ in pairs])

    def _grouped_error(self, model: str, key, weighted: bool
                       ) -> Dict:
        groups: Dict[object, List[ValidationRow]] = {}
        for row in self.rows:
            groups.setdefault(key(row), []).append(row)
        out = {}
        for group, rows in sorted(groups.items(),
                                  key=lambda kv: str(kv[0])):
            pairs = list(self._pairs(model, rows))
            if weighted:
                out[group] = metrics.weighted_error(pairs)
            else:
                out[group] = metrics.average_error(
                    (p, m) for p, m, _ in pairs)
        return out

    def per_application_error(self, model: str,
                              weighted: bool = True) -> Dict[str, float]:
        """Figs. 5-7 weight each block by its sampled frequency."""
        return self._grouped_error(
            model, lambda r: r.application, weighted)

    def per_category_error(self, model: str,
                           weighted: bool = False) -> Dict[int, float]:
        return self._grouped_error(
            model, lambda r: r.category, weighted)

    def coverage(self, model: str) -> float:
        """Fraction of rows the model produced a prediction for."""
        if not self.rows:
            return 0.0
        ok = sum(1 for r in self.rows
                 if r.predictions.get(model) is not None)
        return ok / len(self.rows)


@dataclass
class CorpusProfile:
    """Ground-truth measurements plus the accept/drop funnel.

    ``funnel`` is the run-report analogue of the paper's Table I:
    ``accepted`` plus every ``dropped`` count sums to ``total`` (the
    corpus size), so no block silently disappears from the pipeline.

    ``info`` carries purely informational per-run telemetry — one
    count per key of ``ProfileResult.extra`` (currently
    ``fastpath_extrapolated``: blocks whose measurement used the
    steady-state fast path, ``blockplan_compiled``: blocks executed
    through compiled block plans, ``lanes_vectorized``: blocks whose
    result came out of a certified batch lane, and
    ``triage_revalidated``: blocks whose journaled cached measurement
    was replayed by the triage surrogate instead of re-simulated).
    It is kept *outside* the
    funnel so the funnel — and therefore accepted/dropped accounting —
    stays byte-identical whichever switches are on or off.
    """

    throughputs: Dict[int, float]
    funnel: Dict
    info: Dict = field(default_factory=dict)

    @staticmethod
    def empty_funnel(total: int = 0) -> Dict:
        return {"total": total, "accepted": 0, "dropped": {}}


def profile_records_detailed(profiler: BasicBlockProfiler,
                             records) -> CorpusProfile:
    """Profile an ordered run of records with one profiler.

    The single accept/drop policy shared by the serial path and every
    parallel worker (``repro.parallel``), so a sharded run cannot
    diverge from a serial one by construction.  Routing through
    ``profile_many`` (rather than per-record ``profile`` calls) lets
    batch lanes form inside each shard as well as in serial runs.
    """
    throughputs: Dict[int, float] = {}
    funnel = CorpusProfile.empty_funnel()
    info: Dict[str, int] = {}
    records = list(records)
    results = profiler.profile_many([r.block for r in records])
    for record, result in zip(records, results):
        funnel["total"] += 1
        if result.ok and result.throughput > 0:
            throughputs[record.block_id] = result.throughput
            funnel["accepted"] += 1
        else:
            reason = ("zero_throughput" if result.failure is None
                      else result.failure.value)
            funnel["dropped"][reason] = \
                funnel["dropped"].get(reason, 0) + 1
        for key, value in result.extra.items():
            if value:
                info[key] = info.get(key, 0) + 1
    return CorpusProfile(throughputs=throughputs, funnel=funnel,
                         info=info)


def profile_corpus_detailed(corpus: Corpus, uarch: str, seed: int = 0,
                            config: Optional[ProfilerConfig] = None
                            ) -> CorpusProfile:
    """Profile every block, keeping the per-reason drop breakdown."""
    profiler = BasicBlockProfiler(Machine(uarch, seed=seed), config)
    with telemetry.span("validation.profile_corpus", uarch=uarch) as sp:
        profile = profile_records_detailed(profiler, corpus)
        sp.annotate(blocks=profile.funnel["total"],
                    accepted=profile.funnel["accepted"])
    # Opt-in triage training from this run's journal (no-op unless
    # $REPRO_TRIAGE armed the stage; see repro.triage.publish_weights).
    from repro import triage
    triage.publish_weights(uarch, seed, config)
    return profile


def profile_corpus(corpus: Corpus, uarch: str, seed: int = 0,
                   config: Optional[ProfilerConfig] = None
                   ) -> Dict[int, float]:
    """Measured throughput per block id (only successful blocks)."""
    return profile_corpus_detailed(corpus, uarch, seed=seed,
                                   config=config).throughputs


def validate(corpus: Corpus, uarch: str,
             models: Sequence[CostModel],
             categories: Optional[Dict[int, int]] = None,
             seed: int = 0,
             measured: Optional[Dict[int, float]] = None,
             train_fraction: float = 0.5) -> ValidationResult:
    """Run the full §V protocol on one microarchitecture.

    Learned models (those exposing ``fit``) are trained on a split of
    the measured blocks and everything is evaluated on the rest, so
    Ithemal never scores its own training data.  AVX2/FMA blocks are
    excluded on Ivy Bridge, as in the paper.
    """
    machine = Machine(uarch, seed=seed)
    records = [r for r in corpus if machine.supports(r.block)]
    if measured is None:
        measured = profile_corpus(Corpus(records), uarch, seed=seed)

    usable = [r for r in records if r.block_id in measured]
    # Interleaved split: the corpus is ordered by application, so a
    # prefix split would train and evaluate on different apps.
    if train_fraction <= 0.0:
        train, evaluate = [], usable  # pre-trained models only
    elif train_fraction >= 0.999:
        train, evaluate = usable, usable
    else:
        period = max(2, int(round(1.0 / train_fraction)))
        train = [r for i, r in enumerate(usable) if i % period != 0]
        evaluate = [r for i, r in enumerate(usable) if i % period == 0]

    for model in models:
        if isinstance(model, IthemalModel) and not model.is_trained(uarch):
            model.fit([r.block for r in train],
                      [measured[r.block_id] for r in train], uarch)

    rows: List[ValidationRow] = []
    with telemetry.span("validation.predict", uarch=uarch,
                        models=len(models)) as sp:
        for record in evaluate:
            row = ValidationRow(
                block_id=record.block_id,
                application=record.application,
                frequency=record.frequency,
                category=(categories or {}).get(record.block_id),
                measured=measured[record.block_id])
            for model in models:
                prediction = model.predict_safe(record.block, uarch)
                row.predictions[model.name] = prediction.throughput
                telemetry.count("validation.predictions")
            rows.append(row)
        sp.annotate(blocks=len(rows))

    return ValidationResult(
        uarch=uarch,
        rows=rows,
        profiled_fraction=len(usable) / max(len(records), 1),
        model_names=[m.name for m in models])
