"""x86-64 instruction-set model: registers, operands, parsing, encoding.

Public entry points:

* :func:`parse_block` / :class:`BasicBlock` — turn assembly text into a
  block the profiler and the cost models consume.
* :data:`REGISTERS`, :func:`lookup` — the register file.
* :func:`opcode_info` — per-mnemonic architectural metadata.
"""

from repro.isa.encoder import block_length, instruction_length
from repro.isa.instruction import BasicBlock, Instruction, block
from repro.isa.opcodes import OPCODES, OpcodeInfo, is_known, opcode_info
from repro.isa.operands import Imm, Mem, Operand, is_imm, is_mem, is_reg
from repro.isa.parser import parse_block, parse_instruction
from repro.isa.printer import format_block, format_instruction
from repro.isa.registers import REGISTERS, Register, gpr, lookup, xmm, ymm

__all__ = [
    "BasicBlock", "Instruction", "block",
    "Imm", "Mem", "Operand", "Register",
    "REGISTERS", "OPCODES", "OpcodeInfo",
    "parse_block", "parse_instruction",
    "format_block", "format_instruction",
    "instruction_length", "block_length",
    "opcode_info", "is_known", "lookup", "gpr", "xmm", "ymm",
    "is_imm", "is_mem", "is_reg",
]
