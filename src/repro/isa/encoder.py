"""Instruction length estimation (pseudo-encoder).

The profiler needs the *byte footprint* of an unrolled block to model
L1 instruction-cache pressure (the effect behind Table II's 35 I-cache
misses and the "more intelligent unrolling" row of Table I).  We do not
need bit-exact machine code — only realistic lengths — so this module
computes lengths from standard x86-64 encoding rules: legacy/REX/VEX
prefixes, opcode bytes, ModRM/SIB, displacement and immediate sizes.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.operands import Imm, Mem, is_imm, is_mem, is_reg

#: Opcodes encoded with a two-byte (0F-escape) opcode.
_TWO_BYTE_GROUPS = frozenset({
    "movzx", "cmov", "setcc", "bitscan", "vec_mov", "vec_xfer",
    "fp_add", "fp_mul", "fp_div", "fp_sqrt", "fp_rcp", "fp_round",
    "fp_cmp", "fp_comi", "fp_cvt", "vec_logic", "vec_int", "vec_imul",
    "vec_shift", "shuffle", "lane_xfer", "fma",
})


def _disp_bytes(disp: int) -> int:
    if disp == 0:
        return 0
    if -128 <= disp <= 127:
        return 1
    return 4


def _imm_bytes(value: int, width_bytes: int) -> int:
    if -128 <= value <= 127:
        return 1
    if width_bytes >= 4 or not (-32768 <= value <= 32767):
        return 4 if -(1 << 31) <= value < (1 << 32) else 8
    return 2


def instruction_length(instr: Instruction) -> int:
    """Estimated encoded length in bytes (1..15)."""
    info = instr.info
    length = 1  # primary opcode byte

    if info.group in _TWO_BYTE_GROUPS or info.feature != "base":
        length += 1
    if instr.mnemonic.startswith("v"):
        length += 2  # VEX prefix (use 3-byte VEX as the common case)
    elif info.feature == "sse":
        length += 1  # mandatory 66/F2/F3 prefix
    if instr.operand_width == 8 and not info.vec:
        length += 1  # REX.W
    elif any(is_reg(op) and op.name.startswith("r") and op.name[1:2].isdigit()
             for op in instr.operands):
        length += 1  # REX.B/R for r8..r15

    mem = instr.memory_operand
    regs_or_mem = [op for op in instr.operands if not is_imm(op)]
    if regs_or_mem:
        length += 1  # ModRM
    if mem is not None:
        if mem.index is not None or mem.base is None:
            length += 1  # SIB
        if mem.base is None:
            length += 4  # absolute disp32
        else:
            length += _disp_bytes(mem.disp)

    for op in instr.operands:
        if is_imm(op):
            length += _imm_bytes(op.value, instr.operand_width)

    return min(length, 15)


def block_length(block) -> int:
    """Total encoded length of a block in bytes."""
    return sum(instruction_length(i) for i in block)
