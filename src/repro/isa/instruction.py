"""Instruction and basic-block data structures.

An :class:`Instruction` is a parsed mnemonic plus operands in **Intel
order** (destination first); the AT&T parser reverses operand order
before constructing one.  All register/memory read/write sets are
derived here once from the opcode metadata so that the functional
executor, the micro-op decomposer and every cost model agree on the
dataflow of each instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import AsmSyntaxError
from repro.isa import registers as regs
from repro.isa.opcodes import OpcodeInfo, opcode_info
from repro.isa.operands import Imm, Mem, Operand, is_mem, is_reg

_FEATURE_ORDER = {"base": 0, "sse": 1, "avx": 2, "avx2": 3, "fma": 3}


@dataclass(frozen=True)
class Instruction:
    """One decoded x86-64 instruction (operands in Intel order)."""

    mnemonic: str
    operands: Tuple[Operand, ...] = ()

    def __post_init__(self) -> None:
        info = opcode_info(self.mnemonic)
        if info.arity and len(self.operands) not in info.arity \
                and not info.unsupported:
            raise AsmSyntaxError(
                f"{self.mnemonic} takes {info.arity} operands, "
                f"got {len(self.operands)}")

    def __hash__(self) -> int:
        """Cached field hash.

        Instructions are deeply immutable but hashed hot — they key
        the decomposer's memo and the parse intern table — so the
        recursive operand-tuple walk is paid once per object instead
        of once per lookup.
        """
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.mnemonic, self.operands))
            object.__setattr__(self, "_hash", h)
        return h

    @cached_property
    def info(self) -> OpcodeInfo:
        return opcode_info(self.mnemonic)

    # -- operand roles ----------------------------------------------------

    @property
    def dest(self) -> Optional[Operand]:
        """The destination operand, if this instruction writes one."""
        if self.info.writes_dst and self.operands:
            if self.info.semantic in ("imul", "mul") \
                    and len(self.operands) == 1:
                return None  # one-operand forms write rdx:rax only
            return self.operands[0]
        return None

    @property
    def sources(self) -> Tuple[Operand, ...]:
        """Operands read as data (includes dst when read-modify-write)."""
        ops = self.operands
        if not ops:
            return ()
        reads_dst = self.info.reads_dst
        if self.mnemonic == "imul" and len(ops) == 3:
            reads_dst = False  # imul r, r/m, imm writes dst only
        srcs: List[Operand] = []
        if self.info.writes_dst:
            if reads_dst:
                srcs.append(ops[0])
            srcs.extend(ops[1:])
        else:
            srcs.extend(ops)
        return tuple(srcs)

    @cached_property
    def memory_operand(self) -> Optional[Mem]:
        """The (at most one) memory operand of the instruction."""
        for op in self.operands:
            if is_mem(op):
                return op
        return None

    @property
    def loads_memory(self) -> bool:
        mem = self.memory_operand
        if mem is None or self.mnemonic == "lea":
            return False
        if mem in self.sources:
            return True
        # A read-modify-write destination in memory also loads.
        return bool(self.info.writes_dst and self.info.reads_dst
                    and self.operands and self.operands[0] is mem)

    @property
    def stores_memory(self) -> bool:
        mem = self.memory_operand
        if mem is None:
            return False
        if self.mnemonic == "push":
            return True
        return bool(self.info.writes_dst and self.operands
                    and self.operands[0] is mem)

    @property
    def has_memory_access(self) -> bool:
        if self.mnemonic in ("push", "pop"):
            return True
        if self.mnemonic == "lea":
            return False
        return self.memory_operand is not None

    # -- register dataflow -------------------------------------------------

    @cached_property
    def implicit_reads(self) -> Tuple[regs.Register, ...]:
        sem = self.info.semantic
        if sem in ("div", "idiv"):
            return (regs.lookup("rax"), regs.lookup("rdx"))
        if sem in ("mul",) or (sem == "imul" and len(self.operands) == 1):
            return (regs.lookup("rax"),)
        if sem in ("cdq", "cqo", "cdqe"):
            return (regs.lookup("rax"),)
        if self.info.group in ("push", "pop"):
            return (regs.lookup("rsp"),)
        if self.info.group == "shift" and len(self.operands) == 2 \
                and is_reg(self.operands[1]) \
                and self.operands[1].name == "cl":
            return ()  # already explicit
        return ()

    @cached_property
    def implicit_writes(self) -> Tuple[regs.Register, ...]:
        sem = self.info.semantic
        if sem in ("div", "idiv", "mul"):
            return (regs.lookup("rax"), regs.lookup("rdx"))
        if sem == "imul" and len(self.operands) == 1:
            return (regs.lookup("rax"), regs.lookup("rdx"))
        if sem in ("cdq", "cqo"):
            return (regs.lookup("rdx"),)
        if sem == "cdqe":
            return (regs.lookup("rax"),)
        if self.info.group in ("push", "pop"):
            return (regs.lookup("rsp"),)
        return ()

    @cached_property
    def regs_read(self) -> Tuple[regs.Register, ...]:
        """Registers whose values this instruction consumes.

        Includes address registers of memory operands and implicit
        operands.  A zero idiom (``xor rax, rax``) reads nothing — the
        hardware breaks the dependency, and the dataflow model must too.
        Models that do *not* recognise idioms use :attr:`regs_read_raw`.
        """
        if self.is_zero_idiom:
            return ()
        return self.regs_read_raw

    @cached_property
    def regs_read_raw(self) -> Tuple[regs.Register, ...]:
        """Registers read, ignoring dependency-breaking idioms."""
        seen: List[regs.Register] = []

        def add(r: regs.Register) -> None:
            if r not in seen:
                seen.append(r)

        for op in self.operands:
            if is_mem(op):
                for r in op.registers:
                    add(r)
        for op in self.sources:
            if is_reg(op):
                add(op)
        if self.mnemonic == "xchg":
            for op in self.operands:
                if is_reg(op):
                    add(op)
        for r in self.implicit_reads:
            add(r)
        return tuple(seen)

    @cached_property
    def regs_written(self) -> Tuple[regs.Register, ...]:
        seen: List[regs.Register] = []
        dst = self.dest
        if dst is not None and is_reg(dst):
            seen.append(dst)
        if self.mnemonic == "xchg":
            for op in self.operands:
                if is_reg(op) and op not in seen:
                    seen.append(op)
        for r in self.implicit_writes:
            if r not in seen:
                seen.append(r)
        return tuple(seen)

    # -- properties used by timing/classification --------------------------

    @property
    def is_zero_idiom(self) -> bool:
        """True for dependency-breaking idioms like ``xor %rax, %rax``.

        The ground-truth machine and IACA exploit these; llvm-mca and
        OSACA (per the paper's case study) do not.
        """
        if not self.info.zero_idiom:
            return False
        ops = self.operands
        data_ops = [op for op in ops if is_reg(op)]
        if self.info.reads_dst and len(ops) == 2:
            return len(data_ops) == 2 and data_ops[0] == data_ops[1]
        if len(ops) == 3:  # VEX non-destructive form
            return (len(data_ops) == 3
                    and data_ops[1] == data_ops[2])
        return False

    @cached_property
    def operand_width(self) -> int:
        """Data width in bytes (largest data operand)."""
        width = 0
        for op in self.operands:
            if is_reg(op):
                width = max(width, op.width // 8)
            elif is_mem(op):
                width = max(width, op.width)
        return width or 8

    @property
    def feature_level(self) -> int:
        level = _FEATURE_ORDER[self.info.feature]
        # Integer vector ops on ymm registers are AVX2, not AVX: the
        # VEX form of e.g. ``paddd`` is AVX1 only at xmm width.
        if level == 2 and self.mnemonic.startswith("vp") and \
                any(is_reg(op) and op.is_vector and op.width == 256
                    for op in self.operands):
            return 3
        return level

    @cached_property
    def memory_access_width(self) -> int:
        """Bytes actually moved by the memory operand, if any.

        The parser can only guess widths from sibling register operands
        (``addss xmm0, [rax]`` would guess 16); this resolves the
        mnemonic-specific truth.  Used for alignment/split-line checks
        and cache accounting.
        """
        mem = self.memory_operand
        if mem is None and self.mnemonic not in ("push", "pop"):
            return 0
        name = self.mnemonic.lstrip("v") if self.info.vec else self.mnemonic
        fixed = {
            "movss": 4, "movsd": 8, "movd": 4, "movq": 8,
            "pinsrb": 1, "pinsrw": 2, "pinsrd": 4, "pinsrq": 8,
            "pextrb": 1, "pextrw": 2, "pextrd": 4, "pextrq": 8,
            "broadcastss": 4, "broadcastsd": 8,
            "pbroadcastb": 1, "pbroadcastd": 4, "pbroadcastq": 8,
            "insertf128": 16, "inserti128": 16,
            "extractf128": 16, "extracti128": 16,
        }
        if name in fixed:
            return fixed[name]
        if self.info.vec and self.info.fp and name.endswith("ss"):
            return 4
        if self.info.vec and self.info.fp and name.endswith("sd"):
            return 8
        if self.info.vec:
            vec_widths = [op.width // 8 for op in self.operands
                          if is_reg(op) and op.is_vector]
            if vec_widths:
                return max(vec_widths)
        if mem is not None:
            return mem.width
        return self.operand_width

    @cached_property
    def form(self) -> str:
        """Operand-kind signature, e.g. ``"rm"`` for ``xor al, [rdi-1]``."""
        from repro.isa.operands import operand_kind
        return "".join(operand_kind(op) for op in self.operands)

    def __str__(self) -> str:
        from repro.isa.printer import format_instruction
        return format_instruction(self)


class BasicBlock:
    """A straight-line sequence of instructions (no control flow).

    This matches the paper's notion of a basic block: terminators are
    stripped before profiling, so a block is pure data/ALU/memory code.
    """

    def __init__(self, instructions: Sequence[Instruction],
                 source: str = "synthetic"):
        self.instructions: Tuple[Instruction, ...] = tuple(instructions)
        #: Provenance tag (application name or "synthetic").
        self.source = source

    @classmethod
    def from_text(cls, text: str, source: str = "text") -> "BasicBlock":
        """Parse assembly text (auto-detects AT&T vs. Intel syntax)."""
        from repro.isa.parser import parse_block
        return parse_block(text, source=source)

    def __iter__(self):
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, idx):
        return self.instructions[idx]

    def __eq__(self, other) -> bool:
        return (isinstance(other, BasicBlock)
                and self.instructions == other.instructions)

    def __hash__(self) -> int:
        return hash(self.instructions)

    @cached_property
    def has_memory_access(self) -> bool:
        return any(i.has_memory_access for i in self.instructions)

    @cached_property
    def feature_level(self) -> int:
        """Max ISA feature level used (see ``OpcodeInfo.feature``)."""
        return max((i.feature_level for i in self.instructions), default=0)

    @property
    def uses_avx2_or_fma(self) -> bool:
        """Blocks excluded from Ivy Bridge validation in the paper."""
        return self.feature_level >= 3

    @cached_property
    def is_supported(self) -> bool:
        return not any(i.info.unsupported for i in self.instructions)

    @cached_property
    def byte_length(self) -> int:
        """Estimated encoded size; drives the I-cache footprint model."""
        from repro.isa.encoder import instruction_length
        return sum(instruction_length(i) for i in self.instructions)

    def text(self, syntax: str = "att") -> str:
        # The canonical AT&T text is the dedup-memo and lane-formation
        # key, asked for many times per block — cache it (instructions
        # are an immutable tuple, so the rendering never changes).
        if syntax == "att":
            cached = self.__dict__.get("_text_att")
            if cached is None:
                from repro.isa.printer import format_block
                cached = format_block(self, syntax="att")
                self.__dict__["_text_att"] = cached
            return cached
        from repro.isa.printer import format_block
        return format_block(self, syntax=syntax)

    def __str__(self) -> str:
        return self.text()

    def __repr__(self) -> str:
        head = "; ".join(str(i) for i in self.instructions[:3])
        more = "..." if len(self.instructions) > 3 else ""
        return (f"BasicBlock(<{len(self)} instrs, {self.source}> "
                f"{head}{more})")


def block(*lines: str, source: str = "text") -> BasicBlock:
    """Build a block from one instruction per argument (test helper)."""
    return BasicBlock.from_text("\n".join(lines), source=source)


def iter_instructions(blocks: Iterable[BasicBlock]):
    """Flatten an iterable of blocks into instructions."""
    for b in blocks:
        yield from b.instructions
