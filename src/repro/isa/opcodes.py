"""Opcode registry: static metadata for every mnemonic we model.

Each :class:`OpcodeInfo` records the *architectural* properties of a
mnemonic (operand policy, flags behaviour, vector-ness, ISA feature
level).  Timing properties (micro-ops, ports, latencies) live in the
per-microarchitecture tables under :mod:`repro.uarch.tables`, keyed by
the ``group`` defined here.

The set below covers the instruction vocabulary produced by the corpus
generators plus everything appearing in the paper's example blocks.
Mnemonics outside the registry raise
:class:`repro.errors.UnknownOpcodeError` at parse time, and mnemonics
registered with ``unsupported=True`` (syscalls, string ops, ...) parse
fine but cannot be executed — they contribute to the unprofileable
fraction in Table I exactly as in the real suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import UnknownOpcodeError

#: Condition-code suffixes shared by ``cmov``, ``set`` and ``j`` families.
CONDITION_CODES: Tuple[str, ...] = (
    "e", "ne", "z", "nz", "l", "le", "g", "ge", "b", "be", "a", "ae",
    "s", "ns", "o", "no", "p", "np", "c", "nc",
)


@dataclass(frozen=True)
class OpcodeInfo:
    """Architectural metadata for one mnemonic.

    Attributes:
        name: canonical (Intel-syntax, unsuffixed) mnemonic.
        group: timing/semantic family; the per-uarch tables and the
            functional-semantics dispatcher key off this.
        arity: allowed operand counts.
        reads_dst: destination is read-modify-write (``add``) rather
            than write-only (``mov``).
        writes_dst: first operand is written at all (``cmp`` is not).
        reads_flags / writes_flags: condition-code behaviour.
        vec: operates on xmm/ymm data.
        fp: ``"f32"``/``"f64"`` for floating-point ops, else ``None``.
        feature: ISA extension required: ``base``, ``sse``, ``avx``,
            ``avx2`` or ``fma``.  Ivy Bridge rejects ``avx2``/``fma``
            blocks, mirroring the paper's exclusion of AVX2 blocks.
        zero_idiom: ``op r, r`` with identical operands is a
            dependency-breaking zero idiom (``xor``, ``pxor``, ...).
        unsupported: recognised but never executable by the profiler.
        cc: condition code for ``cmov``/``set`` variants.
        semantic: name of the semantic handler (defaults to ``group``).
    """

    name: str
    group: str
    arity: Tuple[int, ...] = (2,)
    reads_dst: bool = True
    writes_dst: bool = True
    reads_flags: bool = False
    writes_flags: bool = False
    vec: bool = False
    fp: Optional[str] = None
    feature: str = "base"
    zero_idiom: bool = False
    unsupported: bool = False
    cc: Optional[str] = None
    semantic: str = field(default="")

    def __post_init__(self) -> None:
        if not self.semantic:
            object.__setattr__(self, "semantic", self.group)


_REGISTRY: Dict[str, OpcodeInfo] = {}


def _def(name: str, group: str, **kw) -> None:
    if name in _REGISTRY:
        raise ValueError(f"duplicate opcode {name}")
    _REGISTRY[name] = OpcodeInfo(name=name, group=group, **kw)


def _def_fp(name: str, group: str, fp: str, **kw) -> None:
    kw.setdefault("vec", True)
    kw.setdefault("reads_dst", True)
    _def(name, group, fp=fp, **kw)


# --------------------------------------------------------------------------
# Scalar integer
# --------------------------------------------------------------------------

_def("mov", "mov", reads_dst=False)
_def("movzx", "movzx", reads_dst=False)
_def("movsx", "movzx", reads_dst=False, semantic="movsx")
_def("movsxd", "movzx", reads_dst=False, semantic="movsx")
_def("lea", "lea", reads_dst=False)
_def("xchg", "xchg", arity=(2,), semantic="xchg")

for _n in ("add", "sub", "and", "or", "xor"):
    _def(_n, "int_alu", writes_flags=True, zero_idiom=_n in ("xor", "sub"),
         semantic=_n)
_def("adc", "int_alu", writes_flags=True, reads_flags=True, semantic="adc")
_def("sbb", "int_alu", writes_flags=True, reads_flags=True,
     zero_idiom=False, semantic="sbb")
_def("cmp", "int_alu", arity=(2,), writes_dst=False, writes_flags=True,
     semantic="cmp")
_def("test", "int_alu", arity=(2,), writes_dst=False, writes_flags=True,
     semantic="test")
for _n in ("inc", "dec", "neg", "not"):
    _def(_n, "int_alu", arity=(1,), writes_flags=_n != "not", semantic=_n)

_def("imul", "int_mul", arity=(1, 2, 3), writes_flags=True, semantic="imul")
_def("mul", "int_mul", arity=(1,), writes_flags=True, semantic="mul")
_def("div", "int_div", arity=(1,), writes_dst=False, writes_flags=True,
     semantic="div")
_def("idiv", "int_div", arity=(1,), writes_dst=False, writes_flags=True,
     semantic="idiv")

for _n in ("shl", "shr", "sar", "sal", "rol", "ror"):
    _def(_n, "shift", arity=(1, 2), writes_flags=True, semantic=_n)
for _n in ("shld", "shrd"):
    _def(_n, "shift_double", arity=(3,), writes_flags=True, semantic=_n)

for _n in ("bsf", "bsr"):
    _def(_n, "bitscan", reads_dst=False, writes_flags=True, semantic=_n)
for _n in ("popcnt", "lzcnt", "tzcnt"):
    _def(_n, "bitscan", reads_dst=False, writes_flags=True, semantic=_n)
_def("bt", "int_alu", writes_dst=False, writes_flags=True, semantic="bt")
_def("bswap", "int_alu", arity=(1,), semantic="bswap")

_def("cdq", "widen", arity=(0,), reads_dst=False, semantic="cdq")
_def("cqo", "widen", arity=(0,), reads_dst=False, semantic="cqo")
_def("cdqe", "widen", arity=(0,), reads_dst=False, semantic="cdqe")

for _cc in CONDITION_CODES:
    _def(f"cmov{_cc}", "cmov", reads_flags=True, cc=_cc, semantic="cmov")
    _def(f"set{_cc}", "setcc", arity=(1,), reads_dst=False,
         reads_flags=True, cc=_cc, semantic="setcc")

_def("push", "push", arity=(1,), writes_dst=False)
_def("pop", "pop", arity=(1,), reads_dst=False)
_def("nop", "nop", arity=(0, 1), reads_dst=False, writes_dst=False)

# --------------------------------------------------------------------------
# SSE/AVX moves
# --------------------------------------------------------------------------

for _n, _fp in (("movss", "f32"), ("movsd", "f64")):
    _def(_n, "vec_mov", fp=_fp, vec=True, reads_dst=False, feature="sse")
for _n, _fp in (("movaps", "f32"), ("movups", "f32"), ("movapd", "f64"),
                ("movupd", "f64"), ("movdqa", None), ("movdqu", None)):
    _def(_n, "vec_mov", fp=_fp, vec=True, reads_dst=False, feature="sse")
_def("movd", "vec_xfer", vec=True, reads_dst=False, feature="sse")
_def("movq", "vec_xfer", vec=True, reads_dst=False, feature="sse")
_def("movmskps", "vec_xfer", vec=True, reads_dst=False, feature="sse",
     semantic="movmsk")
_def("movmskpd", "vec_xfer", vec=True, reads_dst=False, feature="sse",
     semantic="movmsk")
_def("pmovmskb", "vec_xfer", vec=True, reads_dst=False, feature="sse",
     semantic="movmsk")

# --------------------------------------------------------------------------
# SSE/AVX floating-point arithmetic
# --------------------------------------------------------------------------

for _n in ("addss", "addps", "subss", "subps", "minss", "minps",
           "maxss", "maxps"):
    _def_fp(_n, "fp_add", "f32", feature="sse")
for _n in ("addsd", "addpd", "subsd", "subpd", "minsd", "minpd",
           "maxsd", "maxpd"):
    _def_fp(_n, "fp_add", "f64", feature="sse")
for _n in ("mulss", "mulps"):
    _def_fp(_n, "fp_mul", "f32", feature="sse")
for _n in ("mulsd", "mulpd"):
    _def_fp(_n, "fp_mul", "f64", feature="sse")
for _n in ("divss", "divps"):
    _def_fp(_n, "fp_div", "f32", feature="sse")
for _n in ("divsd", "divpd"):
    _def_fp(_n, "fp_div", "f64", feature="sse")
for _n in ("sqrtss", "sqrtps"):
    _def_fp(_n, "fp_sqrt", "f32", feature="sse", reads_dst=False)
for _n in ("sqrtsd", "sqrtpd"):
    _def_fp(_n, "fp_sqrt", "f64", feature="sse", reads_dst=False)
for _n in ("rcpps", "rsqrtps"):
    _def_fp(_n, "fp_rcp", "f32", feature="sse", reads_dst=False)
_def_fp("haddps", "fp_add", "f32", feature="sse", semantic="hadd")
_def_fp("haddpd", "fp_add", "f64", feature="sse", semantic="hadd")
for _n in ("roundps", "roundss", "roundpd", "roundsd"):
    _def_fp(_n, "fp_round", _n.endswith("d") and "f64" or "f32",
            feature="sse", arity=(2, 3), reads_dst=False)
for _n in ("cmpps", "cmpss", "cmppd", "cmpsd_fp"):
    _def_fp(_n, "fp_cmp", _n.endswith(("pd", "sd_fp")) and "f64" or "f32",
            feature="sse", arity=(3,))
for _n in ("ucomiss", "comiss"):
    _def(_n, "fp_comi", fp="f32", vec=True, writes_dst=False,
         writes_flags=True, feature="sse", semantic="comi")
for _n in ("ucomisd", "comisd"):
    _def(_n, "fp_comi", fp="f64", vec=True, writes_dst=False,
         writes_flags=True, feature="sse", semantic="comi")

# --------------------------------------------------------------------------
# SSE/AVX logic, integer vector, shuffles
# --------------------------------------------------------------------------

for _n in ("xorps", "xorpd", "pxor"):
    _def(_n, "vec_logic", vec=True, feature="sse", zero_idiom=True,
         semantic="vxor")
for _n in ("andps", "andpd", "pand"):
    _def(_n, "vec_logic", vec=True, feature="sse", semantic="vand")
for _n in ("orps", "orpd", "por"):
    _def(_n, "vec_logic", vec=True, feature="sse", semantic="vor")
for _n in ("andnps", "andnpd", "pandn"):
    _def(_n, "vec_logic", vec=True, feature="sse", semantic="vandn")
_def("ptest", "vec_logic", vec=True, writes_dst=False, writes_flags=True,
     feature="sse", semantic="ptest")

for _n in ("paddb", "paddw", "paddd", "paddq",
           "psubb", "psubw", "psubd", "psubq"):
    _def(_n, "vec_int", vec=True, feature="sse", semantic="vec_int",
         zero_idiom=_n.startswith("psub"))
for _n in ("pmulld", "pmullw", "pmuludq", "pmaddwd"):
    _def(_n, "vec_imul", vec=True, feature="sse", semantic="vec_imul")
for _n in ("pcmpeqb", "pcmpeqw", "pcmpeqd", "pcmpeqq",
           "pcmpgtb", "pcmpgtw", "pcmpgtd"):
    _def(_n, "vec_int", vec=True, feature="sse", semantic="vec_cmp")
for _n in ("pmaxsd", "pminsd", "pmaxub", "pminub", "pabsd", "pavgb"):
    _def(_n, "vec_int", vec=True, feature="sse", semantic="vec_int",
         reads_dst=_n != "pabsd")
for _n in ("pslld", "psrld", "psllq", "psrlq", "psllw", "psrlw", "psrad",
           "psraw"):
    _def(_n, "vec_shift", vec=True, feature="sse", semantic="vec_shift")

for _n in ("shufps", "shufpd"):
    _def(_n, "shuffle", vec=True, feature="sse", arity=(3,),
         semantic="shuffle")
for _n in ("pshufd", "pshufb", "pshuflw", "pshufhw"):
    _def(_n, "shuffle", vec=True, feature="sse",
         arity=(3,) if _n == "pshufd" else (2, 3), reads_dst=False,
         semantic="shuffle")
for _n in ("punpcklbw", "punpckhbw", "punpckldq", "punpckhdq",
           "punpcklqdq", "punpckhqdq", "unpcklps", "unpckhps",
           "unpcklpd", "unpckhpd"):
    _def(_n, "shuffle", vec=True, feature="sse", semantic="unpack")
_def("palignr", "shuffle", vec=True, feature="sse", arity=(3,),
     semantic="shuffle")
for _n in ("blendps", "blendpd", "pblendw"):
    _def(_n, "shuffle", vec=True, feature="sse", arity=(3,),
         semantic="shuffle")
for _n in ("pextrb", "pextrw", "pextrd", "pextrq"):
    _def(_n, "vec_xfer", vec=True, feature="sse", arity=(3,),
         reads_dst=False, semantic="extract")
for _n in ("pinsrb", "pinsrw", "pinsrd", "pinsrq"):
    _def(_n, "vec_xfer", vec=True, feature="sse", arity=(3,),
         semantic="insert")

# --------------------------------------------------------------------------
# Conversions
# --------------------------------------------------------------------------

for _n in ("cvtsi2ss", "cvtsi2sd", "cvtss2sd", "cvtsd2ss",
           "cvttss2si", "cvttsd2si", "cvtss2si", "cvtsd2si",
           "cvtdq2ps", "cvtps2dq", "cvttps2dq", "cvtdq2pd", "cvtpd2dq"):
    _def(_n, "fp_cvt", vec=True, reads_dst=False, feature="sse",
         fp="f64" if "sd" in _n or "pd" in _n else "f32",
         semantic="cvt")

# --------------------------------------------------------------------------
# AVX (VEX) forms — generated from the legacy names, plus AVX-only ops.
# --------------------------------------------------------------------------

_AVX2_GROUPS = {"vec_int", "vec_imul", "vec_shift", "vec_logic"}


def _vex_variant(info: OpcodeInfo) -> OpcodeInfo:
    """Build the ``v``-prefixed VEX form of a legacy SSE opcode.

    VEX forms of two-operand RMW instructions become three-operand
    non-destructive (``vaddps ymm, ymm, ymm``); the extra source is
    handled by arity widening here and operand policy in the executor.
    """
    arity = tuple(sorted({a + (1 if info.reads_dst and a == 2 else 0)
                          for a in info.arity} | set(info.arity)))
    return OpcodeInfo(
        name="v" + info.name,
        group=info.group,
        arity=arity,
        reads_dst=False,
        writes_dst=info.writes_dst,
        reads_flags=info.reads_flags,
        writes_flags=info.writes_flags,
        vec=True,
        fp=info.fp,
        feature="avx",
        zero_idiom=info.zero_idiom,
        cc=info.cc,
        semantic=info.semantic,
    )


for _name in list(_REGISTRY):
    _info = _REGISTRY[_name]
    if _info.feature == "sse" and not _name.startswith("v"):
        _REGISTRY["v" + _name] = _vex_variant(_info)

for _n, _fp in (("vbroadcastss", "f32"), ("vbroadcastsd", "f64")):
    _def(_n, "shuffle", vec=True, reads_dst=False, fp=_fp, feature="avx",
         semantic="broadcast")
for _n in ("vpbroadcastb", "vpbroadcastd", "vpbroadcastq"):
    _def(_n, "shuffle", vec=True, reads_dst=False, feature="avx2",
         semantic="broadcast")
for _n in ("vinsertf128", "vinserti128"):
    _def(_n, "lane_xfer", vec=True, arity=(4,),
         feature="avx" if _n[-4] == "f" else "avx2", semantic="insert128")
for _n in ("vextractf128", "vextracti128"):
    _def(_n, "lane_xfer", vec=True, arity=(3,), reads_dst=False,
         feature="avx" if "f128" in _n else "avx2", semantic="extract128")
_def("vperm2f128", "lane_xfer", vec=True, arity=(4,), reads_dst=False,
     feature="avx", semantic="perm2")
_def("vpermilps", "shuffle", vec=True, arity=(3,), reads_dst=False,
     feature="avx", fp="f32", semantic="shuffle")
_def("vzeroupper", "vzero", arity=(0,), reads_dst=False, writes_dst=False,
     vec=True, feature="avx")

for _base in ("132", "213", "231"):
    for _suffix, _fp in (("ps", "f32"), ("pd", "f64"),
                         ("ss", "f32"), ("sd", "f64")):
        for _kind in ("vfmadd", "vfmsub", "vfnmadd", "vfnmsub"):
            _def(f"{_kind}{_base}{_suffix}", "fma", vec=True, fp=_fp,
                 arity=(3,), reads_dst=True, feature="fma",
                 semantic="fma")

# --------------------------------------------------------------------------
# Recognised but unprofileable (Table I's residual failures)
# --------------------------------------------------------------------------

for _n in ("syscall", "cpuid", "rdtsc", "rdtscp", "int3", "ud2",
           "lfence", "mfence", "sfence", "pause", "lock", "xgetbv",
           "cmpxchg", "xadd", "rep_movsb", "rep_stosb", "rep_movsq",
           "fldcw", "fnstcw", "stmxcsr", "ldmxcsr", "vmaskmovps",
           "maskmovdqu", "movnti", "movntps", "movntdq", "clflush",
           "prefetcht0", "prefetcht1", "prefetchnta"):
    _def(_n, "unsupported", arity=(0, 1, 2), reads_dst=False,
         writes_dst=False, unsupported=True)

#: Read-only view of the full registry.
OPCODES: Dict[str, OpcodeInfo] = dict(_REGISTRY)


def opcode_info(mnemonic: str) -> OpcodeInfo:
    """Look up metadata for ``mnemonic`` (case-insensitive, canonical).

    Raises:
        UnknownOpcodeError: for mnemonics outside the modelled subset.
    """
    info = OPCODES.get(mnemonic.lower())
    if info is None:
        raise UnknownOpcodeError(mnemonic)
    return info


def is_known(mnemonic: str) -> bool:
    return mnemonic.lower() in OPCODES
