"""Instruction operands: immediates and memory references.

Register operands are represented directly by
:class:`repro.isa.registers.Register`; this module adds the other two
operand kinds and a few predicates shared by the parser, the executor
and the micro-op decomposer.

Memory operands use the full x86-64 addressing form
``disp(base, index, scale)`` and know their own *access width* (in
bytes), which the executor needs to compute alignment and the cache
model needs to detect cache-line splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.registers import Register


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:#x}" if abs(self.value) > 9 else str(self.value)


@dataclass(frozen=True)
class Mem:
    """A memory operand ``[base + index*scale + disp]`` of ``width`` bytes.

    ``width`` is the number of bytes moved by the access (1, 2, 4, 8, 16
    or 32).  It is fixed at parse/synthesis time from the instruction
    form, e.g. ``xor -1(%rdi), %al`` reads one byte.
    """

    base: Optional[Register] = None
    index: Optional[Register] = None
    scale: int = 1
    disp: int = 0
    width: int = 8

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale {self.scale}")
        if self.width not in (1, 2, 4, 8, 16, 32):
            raise ValueError(f"invalid access width {self.width}")

    @property
    def registers(self):
        """Registers read to form the effective address."""
        regs = []
        if self.base is not None:
            regs.append(self.base)
        if self.index is not None:
            regs.append(self.index)
        return regs

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            parts.append(f"{self.index.name}*{self.scale}")
        if self.disp or not parts:
            parts.append(f"{self.disp:#x}" if self.disp >= 0 else f"-{-self.disp:#x}")
        return "[" + " + ".join(parts) + "]"


Operand = Union[Register, Imm, Mem]


def is_reg(op: Operand) -> bool:
    return isinstance(op, Register)


def is_imm(op: Operand) -> bool:
    return isinstance(op, Imm)


def is_mem(op: Operand) -> bool:
    return isinstance(op, Mem)


def operand_kind(op: Operand) -> str:
    """Short kind tag used in opcode-form signatures: ``r``/``i``/``m``."""
    if isinstance(op, Register):
        return "r"
    if isinstance(op, Imm):
        return "i"
    if isinstance(op, Mem):
        return "m"
    raise TypeError(f"not an operand: {op!r}")
