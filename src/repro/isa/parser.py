"""Assembly parser for AT&T and Intel syntax.

The corpus generators build :class:`Instruction` objects directly, but
the paper's example blocks (and user input) arrive as text in either
syntax — the paper itself mixes both.  ``parse_block`` auto-detects the
syntax per line: a ``%`` register prefix means AT&T, otherwise Intel.

AT&T operand order (src, dst) is reversed to the canonical Intel order,
and AT&T size-suffixed mnemonics (``addl``, ``movzbl``...) are folded to
their canonical names with the suffix recorded as the memory access
width.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.errors import AsmSyntaxError
from repro.simcore import config as simcore
from repro.telemetry import cachestats
from repro.isa import registers as regs
from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.opcodes import is_known
from repro.isa.operands import Imm, Mem, Operand, is_mem, is_reg

_SUFFIX_WIDTHS = {"b": 1, "w": 2, "l": 4, "q": 8}

#: ``movzbl``-style AT&T widening mnemonics: (src width, canonical name).
_WIDEN_RE = re.compile(r"^mov([zs])([bw])([wlq])$")

_PTR_WIDTHS = {
    "byte": 1, "word": 2, "dword": 4, "qword": 8,
    "xmmword": 16, "oword": 16, "ymmword": 32,
}


def _parse_int(text: str) -> int:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        raise AsmSyntaxError("bad integer", text)


# --------------------------------------------------------------------------
# AT&T syntax
# --------------------------------------------------------------------------

def _att_register(tok: str) -> regs.Register:
    name = tok.lstrip("%").lower()
    if not regs.is_register_name(name):
        raise AsmSyntaxError("unknown register", tok)
    return regs.lookup(name)


def _split_operands(text: str) -> List[str]:
    """Split on commas not inside parentheses/brackets."""
    parts: List[str] = []
    depth = 0
    cur = ""
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur.strip())
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur.strip())
    return parts


def _att_operand(tok: str, width: int) -> Operand:
    tok = tok.strip()
    if tok.startswith("$"):
        return Imm(_parse_int(tok[1:]))
    if tok.startswith("%"):
        return _att_register(tok)
    # Memory: disp(base, index, scale) with every part optional.
    m = re.match(r"^([^(]*)\(([^)]*)\)$", tok)
    if m:
        disp = _parse_int(m.group(1)) if m.group(1).strip() else 0
        inner = [p.strip() for p in m.group(2).split(",")]
        base = _att_register(inner[0]) if inner and inner[0] else None
        index = (_att_register(inner[1])
                 if len(inner) > 1 and inner[1] else None)
        scale = _parse_int(inner[2]) if len(inner) > 2 and inner[2] else 1
        return Mem(base=base, index=index, scale=scale, disp=disp,
                   width=width)
    # Absolute address.
    try:
        return Mem(disp=_parse_int(tok), width=width)
    except AsmSyntaxError:
        raise AsmSyntaxError("cannot parse AT&T operand", tok)


def _canonical_att_mnemonic(raw: str,
                            operand_toks: List[str]
                            ) -> Tuple[str, int, Optional[int]]:
    """Resolve an AT&T mnemonic.

    Returns (canonical name, memory width in bytes, src width for
    movzx/movsx or None).
    """
    name = raw.lower()
    widen = _WIDEN_RE.match(name)
    if widen:
        kind, src_sfx, _dst_sfx = widen.groups()
        canonical = "movzx" if kind == "z" else "movsx"
        return canonical, _SUFFIX_WIDTHS[src_sfx], _SUFFIX_WIDTHS[src_sfx]
    if name == "movslq":
        return "movsxd", 4, 4
    if name and name[-1] in _SUFFIX_WIDTHS and is_known(name[:-1]):
        # A size-suffixed form of a known mnemonic — but only strip if
        # the arity fits ("shld" must not become "shl") and no vector
        # operand claims the full name ("movq %rax, %xmm0" is the SSE
        # movq, "movq %rax, %rbx" is a suffixed mov).
        from repro.isa.opcodes import opcode_info
        base = name[:-1]
        has_vec = any("%xmm" in t or "%ymm" in t for t in operand_toks)
        arity_ok = len(operand_toks) in opcode_info(base).arity
        if arity_ok and not (has_vec and is_known(name)):
            return base, _SUFFIX_WIDTHS[name[-1]], None
    if is_known(name):
        return name, 0, None
    raise AsmSyntaxError("unknown mnemonic", raw)


def _infer_mem_width(mnemonic: str, operands: List[Operand],
                     hint: int) -> int:
    """Width of a memory access when no explicit suffix is given."""
    if hint:
        return hint
    reg_widths = [op.width // 8 for op in operands if is_reg(op)]
    if mnemonic in ("movzx", "movsx"):
        return 1  # default to byte source without a suffix hint
    if reg_widths:
        return max(reg_widths)
    return 8


def _normalize_mem_width(instr: Instruction,
                         explicit: bool) -> Instruction:
    """Correct the memory operand's width from the mnemonic.

    Vector instructions move mnemonic-specific amounts (``movsd``
    moves 8 bytes even though xmm registers are 16 wide); without an
    explicit size suffix / ``ptr`` annotation, the mnemonic wins.
    """
    if explicit or instr.memory_operand is None:
        return instr
    width = instr.memory_access_width
    if not width or width == instr.memory_operand.width:
        return instr
    fixed = tuple(
        Mem(op.base, op.index, op.scale, op.disp, width)
        if is_mem(op) else op for op in instr.operands)
    return Instruction(instr.mnemonic, fixed)


def parse_att_instruction(line: str) -> Instruction:
    """Parse one AT&T-syntax instruction."""
    mnem_raw, _, rest = line.strip().partition(" ")
    operand_toks = _split_operands(rest) if rest.strip() else []
    mnemonic, width_hint, _src_w = _canonical_att_mnemonic(
        mnem_raw, operand_toks)
    parsed = [_att_operand(t, width_hint or 8) for t in operand_toks]
    # AT&T order is (src..., dst): reverse to Intel order.
    parsed.reverse()
    width = _infer_mem_width(mnemonic, parsed, width_hint)
    parsed = [Mem(op.base, op.index, op.scale, op.disp, width)
              if is_mem(op) else op for op in parsed]
    instr = Instruction(mnemonic, tuple(parsed))
    return _normalize_mem_width(instr, explicit=bool(width_hint))


# --------------------------------------------------------------------------
# Intel syntax
# --------------------------------------------------------------------------

def _intel_mem(tok: str, width: int) -> Mem:
    inner = tok.strip()[1:-1]
    base = index = None
    scale = 1
    disp = 0
    # Normalise "a - b" to "a + -b" so we can split on '+'.
    inner = re.sub(r"-\s*", "+-", inner)
    for term in (t.strip() for t in inner.split("+")):
        if not term:
            continue
        if "*" in term:
            left, _, right = term.partition("*")
            left, right = left.strip(), right.strip()
            if regs.is_register_name(left):
                index, scale = regs.lookup(left), _parse_int(right)
            elif regs.is_register_name(right):
                index, scale = regs.lookup(right), _parse_int(left)
            else:
                raise AsmSyntaxError("bad scaled index", term)
        elif regs.is_register_name(term.lstrip("-")):
            if term.startswith("-"):
                raise AsmSyntaxError("negative register", term)
            if base is None:
                base = regs.lookup(term)
            elif index is None:
                index = regs.lookup(term)
            else:
                raise AsmSyntaxError("too many registers", tok)
        else:
            disp += _parse_int(term)
    return Mem(base=base, index=index, scale=scale, disp=disp, width=width)


def _intel_operand(tok: str, width: int) -> Operand:
    tok = tok.strip()
    m = re.match(r"^(\w+)\s+ptr\s+(\[.*\])$", tok, re.IGNORECASE)
    if m:
        return _intel_mem(m.group(2), _PTR_WIDTHS[m.group(1).lower()])
    if tok.startswith("["):
        return _intel_mem(tok, width)
    if regs.is_register_name(tok):
        return regs.lookup(tok)
    try:
        return Imm(_parse_int(tok))
    except AsmSyntaxError:
        raise AsmSyntaxError("cannot parse Intel operand", tok)


def parse_intel_instruction(line: str) -> Instruction:
    """Parse one Intel-syntax instruction."""
    mnem, _, rest = line.strip().partition(" ")
    mnemonic = mnem.lower()
    if mnemonic == "cmpsd" and len(_split_operands(rest)) == 3:
        mnemonic = "cmpsd_fp"
    if not is_known(mnemonic):
        raise AsmSyntaxError("unknown mnemonic", mnem)
    toks = _split_operands(rest) if rest.strip() else []
    operands = [_intel_operand(t, 8) for t in toks]
    # Fix memory widths from sibling register operands.
    reg_widths = [op.width // 8 for op in operands if is_reg(op)]
    default = 1 if mnemonic in ("movzx", "movsx") else \
        (max(reg_widths) if reg_widths else 8)
    fixed = []
    explicit = False
    for tok, op in zip(toks, operands):
        if is_mem(op):
            if "ptr" in tok.lower():
                explicit = True
            else:
                op = Mem(op.base, op.index, op.scale, op.disp, default)
        fixed.append(op)
    instr = Instruction(mnemonic, tuple(fixed))
    return _normalize_mem_width(instr, explicit=explicit)


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------

def _parse_instruction_impl(stripped: str) -> Instruction:
    if "%" in stripped:
        return parse_att_instruction(stripped)
    return parse_intel_instruction(stripped)


@lru_cache(maxsize=65536)
def _parse_instruction_interned(stripped: str) -> Instruction:
    """Intern table: one :class:`Instruction` per distinct source line.

    Safe because instructions are deeply immutable; the key is the
    *raw* stripped line, so the two syntaxes (or immediate spelling
    variants) never collide — equal-but-distinct lines simply produce
    equal instructions from separate entries.  Exceptions propagate
    uncached.  Interning also concentrates the per-instruction
    ``cached_property`` work (register sets, widths, opcode info) on
    one shared object per distinct line across the whole corpus.
    """
    return _parse_instruction_impl(stripped)


def parse_instruction(line: str) -> Instruction:
    """Parse a single instruction, auto-detecting the syntax."""
    stripped = line.strip()
    if not stripped:
        raise AsmSyntaxError("empty instruction")
    if simcore.enabled():
        return _parse_instruction_interned(stripped)
    return _parse_instruction_impl(stripped)


def decode_cache_stats() -> cachestats.CacheStats:
    """Unified-telemetry provider for the decode intern table.

    Pure ``lru_cache.cache_info()`` read — the intern table itself
    carries zero instrumentation cost.  Every miss inserts and the
    table is never explicitly invalidated, so entries beyond the
    current size were evicted by the LRU policy.  Stats are
    per-process; pool workers export per-shard deltas as
    ``cache.decode.*`` counters so stitched runs see the whole pool.
    """
    info = _parse_instruction_interned.cache_info()
    return cachestats.CacheStats(
        name="decode", hits=info.hits, misses=info.misses,
        evictions=max(0, info.misses - info.currsize),
        size=info.currsize, capacity=info.maxsize)


cachestats.register_provider("decode", decode_cache_stats)


def _strip_comment(line: str) -> str:
    for marker in ("#", ";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def parse_block(text: str, source: str = "text") -> BasicBlock:
    """Parse a multi-line assembly listing into a :class:`BasicBlock`.

    Blank lines, comments (``#``, ``;``, ``//``) and label lines
    (``foo:``) are skipped.
    """
    instructions = []
    for raw in text.splitlines():
        line = _strip_comment(raw)
        if not line or line.endswith(":"):
            continue
        instructions.append(parse_instruction(line))
    if not instructions:
        raise AsmSyntaxError("no instructions in block")
    return BasicBlock(instructions, source=source)
