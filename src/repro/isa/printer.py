"""Render instructions and blocks back to assembly text.

Supports both AT&T (default, matching the paper's figures) and Intel
syntax.  ``parse_block(format_block(b))`` round-trips for every
instruction the library produces; the property tests rely on this.
"""

from __future__ import annotations

from repro.isa.operands import Imm, Mem, Operand, is_imm, is_mem, is_reg

_PTR_NAMES = {1: "byte", 2: "word", 4: "dword", 8: "qword",
              16: "xmmword", 32: "ymmword"}


def _att_operand(op: Operand) -> str:
    if is_reg(op):
        return f"%{op.name}"
    if is_imm(op):
        return f"${op.value:#x}" if abs(op.value) > 9 else f"${op.value}"
    assert is_mem(op)
    disp = ""
    if op.disp:
        disp = f"{op.disp:#x}" if op.disp > 9 else str(op.disp)
        if op.disp < 0:
            disp = f"-{-op.disp:#x}" if op.disp < -9 else str(op.disp)
    inner = ""
    if op.base is not None and op.index is not None:
        inner = f"(%{op.base.name}, %{op.index.name}, {op.scale})"
    elif op.base is not None:
        inner = f"(%{op.base.name})"
    elif op.index is not None:
        inner = f"(, %{op.index.name}, {op.scale})"
    return f"{disp}{inner}" if inner else disp or "0"


def _intel_operand(op: Operand, explicit_width: bool) -> str:
    if is_reg(op):
        return op.name
    if is_imm(op):
        return f"{op.value:#x}" if abs(op.value) > 9 else str(op.value)
    assert is_mem(op)
    parts = []
    if op.base is not None:
        parts.append(op.base.name)
    if op.index is not None:
        parts.append(f"{op.index.name}*{op.scale}" if op.scale != 1
                     else op.index.name)
    if op.disp or not parts:
        if op.disp >= 0:
            parts.append(f"{op.disp:#x}" if op.disp > 9 else str(op.disp))
        else:
            mag = -op.disp
            parts[-1:] = [parts[-1] + (f" - {mag:#x}" if mag > 9
                                       else f" - {mag}")] \
                if parts else [str(op.disp)]
    body = "[" + " + ".join(parts) + "]"
    if explicit_width:
        return f"{_PTR_NAMES[op.width]} ptr {body}"
    return body


_SUFFIX = {1: "b", 2: "w", 4: "l", 8: "q"}

#: Mnemonics that take AT&T size suffixes when operand width is
#: otherwise ambiguous (memory destination, immediate source).
_SUFFIXABLE = frozenset({
    "mov", "add", "sub", "and", "or", "xor", "cmp", "test",
    "inc", "dec", "neg", "not", "shl", "shr", "sar", "rol", "ror",
})


def _att_mnemonic(instr) -> str:
    """AT&T spelling; widening loads need explicit size suffixes."""
    if instr.mnemonic in ("movzx", "movsx") and is_mem(instr.operands[1]):
        src = {1: "b", 2: "w"}[instr.operands[1].width]
        dst = {4: "l", 8: "q", 2: "w"}[instr.operands[0].width // 8]
        return f"mov{'z' if instr.mnemonic == 'movzx' else 's'}{src}{dst}"
    if instr.mnemonic == "movsxd":
        return "movslq"
    mem = instr.memory_operand
    if mem is not None and instr.mnemonic in _SUFFIXABLE and \
            not any(is_reg(op) for op in instr.operands):
        # No register operand implies the width: spell it out, exactly
        # as real assemblers require (``movl $5, (%rax)``).
        return instr.mnemonic + _SUFFIX[mem.width]
    return instr.mnemonic


def format_instruction(instr, syntax: str = "att") -> str:
    """Format one instruction in ``"att"`` or ``"intel"`` syntax."""
    if syntax == "att":
        ops = [_att_operand(op) for op in reversed(instr.operands)]
        name = _att_mnemonic(instr)
        return name if not ops else f"{name} {', '.join(ops)}"
    if syntax == "intel":
        reg_widths = {op.width // 8 for op in instr.operands
                      if is_reg(op)}
        mem = instr.memory_operand
        explicit = bool(mem is not None
                        and (not reg_widths or mem.width not in reg_widths))
        ops = [_intel_operand(op, explicit) for op in instr.operands]
        name = ("cmpsd" if instr.mnemonic == "cmpsd_fp"
                else instr.mnemonic)
        return name if not ops else f"{name} {', '.join(ops)}"
    raise ValueError(f"unknown syntax {syntax!r}")


def format_block(block, syntax: str = "att") -> str:
    """Format a block, one instruction per line."""
    return "\n".join(format_instruction(i, syntax=syntax) for i in block)
