"""x86-64 register model.

Registers are immutable descriptors; architectural *values* live in
:class:`repro.runtime.state.MachineState`.  The important piece modelled
here is aliasing: ``al``, ``ax``, ``eax`` and ``rax`` all name slices of
the same 64-bit storage location, and ``xmm3`` is the low half of
``ymm3``.  The timing model needs this to compute dependencies (a write
to ``eax`` feeds a later read of ``rax``), and the functional executor
needs it to read/write the right bits.

x86 sub-register write semantics are reproduced faithfully:

* writing an 8- or 16-bit register leaves the remaining bits unchanged;
* writing a 32-bit register **zero-extends** into the full 64 bits;
* writing an ``xmm`` register with a VEX-encoded (``v``-prefixed)
  instruction zeroes the upper ``ymm`` lane, while legacy SSE writes
  leave it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Tuple

GPR_BASES: Tuple[str, ...] = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

VEC_BASES: Tuple[str, ...] = tuple(f"ymm{i}" for i in range(16))

#: Canonical flag names tracked by the functional executor.
FLAG_NAMES: Tuple[str, ...] = ("cf", "pf", "af", "zf", "sf", "of")

#: Base name -> slot index in the flattened register files
#: (:class:`repro.runtime.state.MachineState` stores values in plain
#: lists indexed by these; block plans bake the indices into their
#: pre-bound accessors).
GPR_INDEX: Dict[str, int] = {name: i for i, name in enumerate(GPR_BASES)}
VEC_INDEX: Dict[str, int] = {name: i for i, name in enumerate(VEC_BASES)}
FLAG_INDEX: Dict[str, int] = {name: i for i, name in enumerate(FLAG_NAMES)}


@dataclass(frozen=True)
class Register:
    """A named architectural register (possibly a slice of a wider one).

    Attributes:
        name: the programmer-visible name (``"eax"``, ``"xmm5"``...).
        kind: ``"gpr"``, ``"vec"``, ``"ip"``, ``"flags"`` or ``"mxcsr"``.
        base: the canonical full-width register this aliases
            (``"rax"`` for ``"eax"``, ``"ymm5"`` for ``"xmm5"``).
        width: width in bits of this view.
        bit_offset: where this view starts within the base register
            (8 for the legacy high-byte registers ``ah``..``dh``).
    """

    name: str
    kind: str
    base: str
    width: int
    bit_offset: int = 0

    #: Slot index of ``base`` in the flattened register file (set on
    #: registry instances by :func:`_build_registry`; -1 for registers
    #: that have no value slot, e.g. rflags/mxcsr).  A ClassVar, not a
    #: dataclass field: it is derived from ``base`` and must not
    #: affect eq/hash or the constructor signature.
    slot: ClassVar[int] = -1

    @property
    def is_gpr(self) -> bool:
        return self.kind == "gpr"

    @property
    def is_vector(self) -> bool:
        return self.kind == "vec"

    @property
    def mask(self) -> int:
        """Bit mask of this view within its base register."""
        return ((1 << self.width) - 1) << self.bit_offset

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _gpr_views(base: str) -> Dict[str, Register]:
    """All programmer-visible views of one 64-bit GPR."""
    views: Dict[str, Register] = {base: Register(base, "gpr", base, 64)}
    if base.startswith("r") and base[1:].isdigit():
        n = base  # r8..r15 use suffix naming
        names_32_16_8 = (f"{n}d", f"{n}w", f"{n}b")
    else:
        tail = base[1:]  # "ax", "bx", "si", "di", "bp", "sp"
        if tail in ("ax", "bx", "cx", "dx"):
            names_32_16_8 = (f"e{tail}", tail, f"{tail[0]}l")
            high = f"{tail[0]}h"
            views[high] = Register(high, "gpr", base, 8, bit_offset=8)
        else:
            names_32_16_8 = (f"e{tail}", tail, f"{tail}l")
    name32, name16, name8 = names_32_16_8
    views[name32] = Register(name32, "gpr", base, 32)
    views[name16] = Register(name16, "gpr", base, 16)
    views[name8] = Register(name8, "gpr", base, 8)
    return views


def _build_registry() -> Dict[str, Register]:
    registry: Dict[str, Register] = {}
    for base in GPR_BASES:
        registry.update(_gpr_views(base))
    for i in range(16):
        ymm = f"ymm{i}"
        xmm = f"xmm{i}"
        registry[ymm] = Register(ymm, "vec", ymm, 256)
        registry[xmm] = Register(xmm, "vec", ymm, 128)
    registry["rip"] = Register("rip", "ip", "rip", 64)
    registry["rflags"] = Register("rflags", "flags", "rflags", 64)
    registry["mxcsr"] = Register("mxcsr", "mxcsr", "mxcsr", 32)
    for reg in registry.values():
        if reg.kind == "gpr":
            object.__setattr__(reg, "slot", GPR_INDEX[reg.base])
        elif reg.kind == "vec":
            object.__setattr__(reg, "slot", VEC_INDEX[reg.base])
    return registry


#: Global registry of every register name the parser accepts.
REGISTERS: Dict[str, Register] = _build_registry()


def lookup(name: str) -> Register:
    """Return the :class:`Register` for ``name`` (case-insensitive).

    Raises:
        KeyError: if ``name`` is not an x86-64 register we model.
    """
    return REGISTERS[name.lower()]


def is_register_name(name: str) -> bool:
    """True if ``name`` names a register we model."""
    return name.lower() in REGISTERS


def gpr(name_or_index) -> Register:
    """Convenience accessor: ``gpr("rax")`` or ``gpr(0)``."""
    if isinstance(name_or_index, int):
        return REGISTERS[GPR_BASES[name_or_index]]
    return lookup(name_or_index)


def xmm(index: int) -> Register:
    return REGISTERS[f"xmm{index}"]


def ymm(index: int) -> Register:
    return REGISTERS[f"ymm{index}"]
