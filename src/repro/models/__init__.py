"""Cost models evaluated by the benchmark suite.

Four predictors mirroring the paper's line-up: :class:`IacaModel`,
:class:`LlvmMcaModel`, :class:`OsacaModel` (static analysers) and
:class:`IthemalModel` (learned from measured data — call ``fit`` with
profiler output before predicting).
"""

from repro.models.additive import AdditiveCostModel
from repro.models.base import CostModel, Prediction, predictions_table
from repro.models.features import FEATURE_DIM, block_features
from repro.models.iaca import IacaModel
from repro.models.ithemal import IthemalModel
from repro.models.llvm_mca import LlvmMcaModel
from repro.models.osaca import OsacaModel
from repro.models.portsim import PortSimulatorModel
from repro.models.training import MlpRegressor, TrainingConfig

__all__ = [
    "CostModel", "Prediction", "predictions_table", "AdditiveCostModel",
    "IacaModel", "LlvmMcaModel", "OsacaModel", "IthemalModel",
    "PortSimulatorModel", "MlpRegressor", "TrainingConfig",
    "FEATURE_DIM", "block_features",
]


def simulator_models():
    """The three static analysers (no training required)."""
    return [IacaModel(), LlvmMcaModel(), OsacaModel()]
