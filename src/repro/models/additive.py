"""Additive per-instruction cost model (LLVM's IR-level family).

§II of the paper notes that production compilers also carry simple
per-instruction cost models (LLVM's generic IR cost model, GCC's
analogues) and that per-instruction tables "do not lead directly to
validating performance models at basic block level" — they ignore
ports, parallelism and dependences entirely.

This model makes that argument concrete: it sums a per-instruction
reciprocal-throughput table (as an IR-level cost model effectively
does) and divides by the issue width.  The suite then quantifies how
far that gets you (`benchmarks/bench_additive_model.py`): fine on
homogeneous straight-line code, hopeless wherever ILP or a dependence
chain dominates.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.instruction import BasicBlock
from repro.models.base import CostModel, Prediction
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


class AdditiveCostModel(CostModel):
    """Sum-of-per-instruction-costs, no ports, no dependences."""

    name = "additive"

    def __init__(self, calibration: float = 1.0):
        #: Global fudge factor compiler maintainers tweak (the paper
        #: quotes LLVM's "multiplying the vector costs x20" commit).
        self.calibration = calibration
        self._costs: Dict[str, Dict] = {}

    def _decomposer(self, uarch: str) -> Decomposer:
        entry = self._costs.get(uarch)
        if entry is None:
            desc, table, div = get_uarch(uarch)
            entry = Decomposer(desc, table, div)
            self._costs[uarch] = entry
        return entry

    def instruction_cost(self, instr, uarch: str) -> float:
        """Reciprocal-throughput-style cost of one instruction.

        Micro-op count scaled by each uop's port choice — what a
        per-instruction table distils an instruction down to.
        """
        decomposer = self._decomposer(uarch)
        decomposed = decomposer.decompose(instr)
        cost = 0.0
        for uop in decomposed.uops:
            cost += uop.occupancy / max(len(uop.ports), 1)
        # Even eliminated/idiom instructions occupy a decode slot.
        return max(cost, 0.25)

    def predict(self, block: BasicBlock, uarch: str) -> Prediction:
        total = sum(self.instruction_cost(instr, uarch)
                    for instr in block
                    if not instr.info.unsupported)
        return Prediction(self.name, uarch,
                          round(max(total * self.calibration, 0.25), 2))
