"""Cost-model interface.

Every evaluated predictor — the IACA, llvm-mca and OSACA analogues and
the learned Ithemal analogue — implements :class:`CostModel`.  A model
sees only the *static* basic block (no execution trace, no mapping
information); predicting well despite that is exactly the game the
paper scores.

Predictions use IACA's throughput convention: average cycles per block
iteration at steady state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ModelError, UnsupportedInstructionError
from repro.isa.instruction import BasicBlock
from repro.telemetry import core as telemetry
from repro.uarch.scheduler import ScheduleResult


@dataclass
class Prediction:
    """One model's verdict on one block."""

    model: str
    uarch: str
    throughput: Optional[float]
    #: Predicted dispatch schedule, when the model is a simulator
    #: (used for the paper's scheduling figure).  Ithemal returns a
    #: single number with no interpretable trace.
    schedule: Optional[ScheduleResult] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.throughput is not None


class CostModel(abc.ABC):
    """A static basic-block throughput predictor."""

    #: Display name used in tables/figures ("IACA", "llvm-mca", ...).
    name: str = "model"

    @abc.abstractmethod
    def predict(self, block: BasicBlock, uarch: str) -> Prediction:
        """Predict steady-state cycles/iteration; never raises.

        Models that cannot analyse a block (OSACA's parser crashes in
        the paper's case study) return a :class:`Prediction` with
        ``throughput=None`` and ``error`` set — rendered as ``-``.
        """

    def predict_safe(self, block: BasicBlock, uarch: str) -> Prediction:
        """Wrapper turning stray exceptions into error predictions.

        ``UnsupportedInstructionError`` covers blocks whose mnemonics
        have no timing class (``rdtsc``, ``syscall``, ...): real tools
        refuse such blocks rather than crash, and so do the analogues.
        """
        try:
            return self.predict(block, uarch)
        except ModelError as exc:
            return Prediction(self.name, uarch, None, error=str(exc))
        except UnsupportedInstructionError as exc:
            telemetry.count("models.unsupported_block")
            return Prediction(self.name, uarch, None, error=str(exc))

    def supports(self, block: BasicBlock, uarch: str) -> bool:
        """Whether this model claims to handle the block at all."""
        return True


def predictions_table(models, block: BasicBlock,
                      uarch: str) -> Dict[str, Prediction]:
    """Run several models on one block (case-study helper)."""
    return {m.name: m.predict_safe(block, uarch) for m in models}
