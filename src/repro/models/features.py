"""Static block featurisation for the learned (Ithemal-style) model.

Ithemal embeds instruction token streams with an LSTM; at our corpus
scale a hand-engineered featurisation plus an MLP plays the same role
(learns per-opcode costs and interaction terms from *measured* data,
no access to the ground-truth tables).  Features are purely static —
opcode-class counts, operand shapes, and cheap dependency-chain
estimates — mirroring what a sequence model could extract.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.isa.instruction import BasicBlock
from repro.uarch.tables.common import TIMING_CLASSES
from repro.uarch.uops import timing_class

_CLASS_INDEX: Dict[str, int] = {
    name: i for i, name in enumerate(TIMING_CLASSES)}
_EXTRA_CLASSES = ("int_div", "push", "pop", "nop", "vzero")
for _name in _EXTRA_CLASSES:
    _CLASS_INDEX[_name] = len(_CLASS_INDEX)

#: Number of scalar features appended after the class counts.
_N_SHAPE_FEATURES = 12

#: Port-pressure features (8 ports + total micro-ops + fused slots).
_N_PRESSURE_FEATURES = 13

FEATURE_DIM = len(_CLASS_INDEX) + _N_SHAPE_FEATURES \
    + _N_PRESSURE_FEATURES

#: Proxy latencies per timing class — round numbers any optimisation
#: guide lists (Agner Fog's tables are public); the network learns
#: per-uarch corrections on top.
_PROXY_LATENCY = {
    "lea_complex": 3.0, "shift_double": 3.0, "bitscan": 3.0,
    "int_mul": 3.0, "int_mul_wide": 4.0, "int_div": 22.0, "cmov": 2.0,
    "vec_imul": 10.0, "lane_xfer": 3.0, "vec_xfer": 2.0, "movmsk": 3.0,
    "fp_add": 3.0, "fp_mul": 5.0, "fma": 5.0,
    "fp_div_f32": 13.0, "fp_div_f32_256": 21.0,
    "fp_div_f64": 20.0, "fp_div_f64_256": 35.0,
    "fp_sqrt_f32": 19.0, "fp_sqrt_f64": 27.0,
    "fp_rcp": 5.0, "fp_cvt": 4.0, "fp_cmp": 3.0, "fp_comi": 2.0,
    "hadd": 5.0, "fp_round": 6.0,
}
_PROXY_LOAD_LATENCY = 4.0
_PROXY_FORWARD_LATENCY = 5.0


def _proxy_latency(instr) -> float:
    from repro.errors import UnsupportedInstructionError
    from repro.uarch.uops import timing_class
    try:
        cls = timing_class(instr)
    except UnsupportedInstructionError:
        return 1.0
    if instr.is_zero_idiom:
        return 0.0
    return _PROXY_LATENCY.get(cls, 1.0)


def _chain_depths(block: BasicBlock) -> List[float]:
    """(intra-block chain, loop-carried steady slope) estimates.

    A static critical-path walk with public proxy latencies: iteration
    three minus iteration two approximates the steady-state
    dependence-bound cycles/iteration — the signal a sequence model
    would have to learn, handed over as a feature.
    """

    def run(depth: Dict, start: float) -> float:
        longest = start
        for instr in block:
            mem = instr.memory_operand
            addr_bases = {r.base for r in mem.registers} if mem else set()
            data_ready = max(
                (depth.get(r.base, 0.0) for r in instr.regs_read
                 if r.base not in addr_bases), default=0.0)
            d = max(data_ready, start)
            location = None
            if mem is not None:
                location = ("loc",
                            mem.base.base if mem.base else None,
                            mem.index.base if mem.index else None,
                            mem.disp)
            if instr.loads_memory:
                # The load schedules off its address registers alone
                # (out-of-order hoisting); only its *result* joins the
                # data chain — plus store-forwarding when the location
                # was recently written (RMW/copy chains).
                addr_ready = max((depth.get(b, 0.0)
                                  for b in addr_bases), default=0.0)
                load_lat = _PROXY_LOAD_LATENCY + \
                    (1.0 if mem is not None and mem.index is not None
                     else 0.0)
                d = max(d, addr_ready + load_lat)
                if location in depth:
                    d = max(d, depth[location] + _PROXY_FORWARD_LATENCY)
            d += _proxy_latency(instr)
            for r in instr.regs_written:
                depth[r.base] = d
            if instr.stores_memory and location is not None:
                depth[location] = d
            longest = max(longest, d)
        return longest

    depth: Dict = {}
    run(depth, 0.0)
    two = run(depth, 0.0)
    three = run(depth, 0.0)
    one = run({}, 0.0)
    return [one, three - two]


def _pressure_features(block: BasicBlock) -> np.ndarray:
    """Expected per-port pressure from the public port mapping.

    Abel & Reineke's instruction→port tables are public data a learned
    model may consume as features (their paper predates Ithemal's).
    Pressure = Σ occupancy/|ports| per port — the linear part of a
    throughput bound; the network learns the max()-like combination.
    """
    from repro.classify.portmap import PortMapper
    mapper = _pressure_features._mapper
    if mapper is None:
        mapper = PortMapper("haswell")
        _pressure_features._mapper = mapper
    pressure = np.zeros(8)
    n_uops = 0
    slots = 0
    for instr in block:
        if instr.info.unsupported:
            continue
        decomposed = mapper._decomposer.decompose(instr)
        slots += decomposed.fused_slots
        for uop in decomposed.uops:
            n_uops += 1
            if uop.ports:
                share = uop.occupancy / len(uop.ports)
                for port in uop.ports:
                    pressure[port] += share
    return np.concatenate([pressure,
                           [pressure.max(), n_uops, slots]])


_pressure_features._mapper = None


def block_features(block: BasicBlock) -> np.ndarray:
    """Feature vector of a basic block (length :data:`FEATURE_DIM`)."""
    counts = np.zeros(len(_CLASS_INDEX), dtype=np.float64)
    loads = stores = indexed = vector = wide = imm = zero_idioms = 0
    for instr in block:
        counts[_CLASS_INDEX[timing_class(instr)]] += 1
        if instr.loads_memory:
            loads += 1
        if instr.stores_memory:
            stores += 1
        mem = instr.memory_operand
        if mem is not None and mem.index is not None:
            indexed += 1
        if instr.info.vec:
            vector += 1
            if any(getattr(op, "width", 0) == 256
                   for op in instr.operands):
                wide += 1
        if any(type(op).__name__ == "Imm" for op in instr.operands):
            imm += 1
        if instr.is_zero_idiom:
            zero_idioms += 1
    chain, carried = _chain_depths(block)
    n = float(len(block))
    shape = np.array([
        n, block.byte_length, loads, stores, indexed, vector, wide,
        imm, zero_idioms, chain, carried, loads / n,
    ], dtype=np.float64)
    pressure = _pressure_features(block)
    # Combined static bound: max(port pressure, dependence slope,
    # front-end).  Exposed both raw and in log space so the network
    # regresses corrections, not the bound itself.
    bound = max(pressure[-3], carried, pressure[-1] / 4.0, 0.25)
    extra = np.array([bound, np.log(bound)])
    return np.concatenate([counts, shape, pressure, extra])


def corpus_features(blocks) -> np.ndarray:
    """Stacked feature matrix for a sequence of blocks."""
    return np.stack([block_features(b) for b in blocks])
