"""IACA analogue.

Intel's Architecture Code Analyzer knows the proprietary optimisations
— zero idioms, move elimination, micro-fusion with independently
scheduled load micro-ops — which is why the paper finds it "relatively
more stable" and accurate on bit-manipulation code (OpenSSL).

Its documented defect (case study 1): it prices ``div %ecx`` as the
128-by-64-bit full-width division, predicting ~98 cycles where the
hardware takes ~22 — and it would still be wrong for ``div %rcx``
because it ignores the zeroed-``rdx`` fast path.
"""

from __future__ import annotations

from repro.models.portsim import PortSimulatorModel
from repro.models.residual import ResidualSpec
from repro.models.tables import confused_div_table, perturbed_table

#: Calibrated residual magnitudes (see DESIGN.md): IACA is steady
#: across uarches, best on stores and bit-manipulation, weakest on
#: vectorized kernels.
_RESIDUALS = {
    "ivybridge": ResidualSpec(base=0.165, store=0.09, load=0.26,
                              vector=0.38, bitmanip=0.07),
    "haswell": ResidualSpec(base=0.175, store=0.10, load=0.28,
                            vector=0.40, bitmanip=0.07),
    "skylake": ResidualSpec(base=0.125, store=0.07, load=0.20,
                            vector=0.32, bitmanip=0.06),
}

#: Small per-class table error: IACA's tables are the best of the
#: non-learned tools (Intel wrote them), so the magnitude is low.
_TABLE_SIGMA = 0.04


class IacaModel(PortSimulatorModel):
    """Static analyser in the mould of IACA 2.x/3.x."""

    name = "IACA"

    def __init__(self) -> None:
        super().__init__(recognize_zero_idioms=True,
                         split_load_op=True,
                         move_elimination=True,
                         residuals=_RESIDUALS)

    def build_table(self, uarch, base_table, base_div):
        table = perturbed_table(base_table, self.name, uarch,
                                sigma=_TABLE_SIGMA)
        return table, confused_div_table(base_div)
