"""Ithemal analogue: a throughput predictor learned from measured data.

Unlike the simulator models, this predictor never sees any timing
table: it is trained on (basic block, measured throughput) pairs
produced by the profiler, exactly as Ithemal trains on BHive-style
measurements.  It outputs a single number per block — no interpretable
schedule — matching the paper's description.

The paper's two findings about Ithemal are reproduced structurally:

* **Training imbalance on vectorized blocks** — the authors attribute
  Ithemal's weakness on category-2 (purely vector) blocks to their
  under-representation in training data; ``fit`` keeps only a fraction
  of vector-heavy blocks (``undersample_vectorized``).
* **Skylake data scarcity** — the authors "left more basic blocks out
  of the training of their Skylake model"; ``fit`` drops an extra
  share of Skylake training data (``skylake_holdout``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.isa.instruction import BasicBlock
from repro.models.base import CostModel, Prediction
from repro.models.features import block_features, corpus_features
from repro.models.residual import block_mix
from repro.models.training import MlpRegressor, TrainingConfig

#: Minimum predicted throughput (a block cannot retire faster than
#: the 4-wide front end allows).
_MIN_THROUGHPUT = 0.25


class IthemalModel(CostModel):
    """Learned basic-block throughput predictor."""

    name = "Ithemal"

    def __init__(self, config: Optional[TrainingConfig] = None,
                 undersample_vectorized: float = 0.12,
                 skylake_holdout: float = 0.10,
                 seed: int = 1):
        self.config = config if config is not None else TrainingConfig()
        self.undersample_vectorized = undersample_vectorized
        self.skylake_holdout = skylake_holdout
        self.seed = seed
        self._nets: Dict[str, MlpRegressor] = {}

    # ------------------------------------------------------------------

    def is_trained(self, uarch: str) -> bool:
        return uarch in self._nets

    def _select_training_set(self, blocks: Sequence[BasicBlock],
                             uarch: str,
                             rng: np.random.Generator) -> List[int]:
        indices: List[int] = []
        for i, block in enumerate(blocks):
            if block_mix(block)["vector"] > 0.5 \
                    and rng.random() > self.undersample_vectorized:
                continue
            if uarch == "skylake" and rng.random() < self.skylake_holdout:
                continue
            indices.append(i)
        return indices

    def fit(self, blocks: Sequence[BasicBlock],
            throughputs: Sequence[float], uarch: str) -> "IthemalModel":
        """Train the per-uarch network on measured data."""
        if len(blocks) != len(throughputs):
            raise ValueError("blocks and throughputs differ in length")
        rng = np.random.default_rng((self.seed, hash(uarch) & 0xFFFF))
        keep = self._select_training_set(blocks, uarch, rng)
        if len(keep) < 16:
            keep = list(range(len(blocks)))
        x = corpus_features([blocks[i] for i in keep])
        y = np.log(np.maximum([throughputs[i] for i in keep],
                              _MIN_THROUGHPUT))
        # Regress the residual against the static bound (the
        # second-to-last feature): the network learns *corrections*,
        # so where it has little signal it falls back to the bound
        # rather than extrapolating wildly.
        baseline = np.log(np.maximum(x[:, -2], _MIN_THROUGHPUT))
        net = MlpRegressor(self.config)
        net.fit(x, y - baseline)
        self._nets[uarch] = net
        self._caps = getattr(self, "_caps", {})
        self._caps[uarch] = float(np.exp(y.max()) * 1.5)
        return self

    # ------------------------------------------------------------------

    def predict(self, block: BasicBlock, uarch: str) -> Prediction:
        net = self._nets.get(uarch)
        if net is None:
            return Prediction(self.name, uarch, None,
                              error=f"no trained model for {uarch}")
        features = block_features(block)
        baseline = max(float(features[-2]), _MIN_THROUGHPUT)
        correction = float(net.predict(features)[0])
        throughput = baseline * float(np.exp(correction))
        cap = getattr(self, "_caps", {}).get(uarch, float("inf"))
        throughput = min(max(throughput, _MIN_THROUGHPUT), cap)
        return Prediction(self.name, uarch, round(throughput, 3))
