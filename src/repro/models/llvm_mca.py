"""llvm-mca analogue.

llvm-mca deliberately reuses LLVM's backend scheduling model, so its
accuracy measures LLVM's cost model.  Differences from hardware that
the paper documents, all reproduced here:

* **No zero idioms** — ``vxorps %xmm2, %xmm2, %xmm2`` is priced as a
  regular vector XOR (1.0 vs. the measured 0.25; case study 2).
* **Fused load-op scheduling** — a load-op micro-op pair is dispatched
  as one unit once *all* operands are ready, so the independent load of
  ``xor -1(%rdi), %al`` cannot be hoisted; llvm-mca over-predicts the
  gzip CRC block 13.04 vs. 8.25 (case study 3).
* **Division-width confusion** — same table bug as IACA (99.04).
* **Stale Skylake model** — the paper attributes llvm-mca's Skylake
  regression (0.23 avg error vs. 0.18 on Haswell) to the newer
  scheduling model having had less tuning time; our Skylake table is
  perturbed harder and inherits Haswell FP latencies.
"""

from __future__ import annotations

from repro.models.portsim import PortSimulatorModel
from repro.models.residual import ResidualSpec
from repro.models.tables import confused_div_table, perturbed_table
from repro.uarch.tables.haswell import TABLE as HASWELL_TABLE

_RESIDUALS = {
    "ivybridge": ResidualSpec(base=0.165, store=0.10, load=0.25,
                              vector=0.42, bitmanip=0.13),
    "haswell": ResidualSpec(base=0.155, store=0.10, load=0.24,
                            vector=0.42, bitmanip=0.13),
    # Skylake: scalar arithmetic is notably worse (stale model).
    "skylake": ResidualSpec(base=0.215, store=0.13, load=0.29,
                            vector=0.48, bitmanip=0.20),
}

_TABLE_SIGMA = {"ivybridge": 0.06, "haswell": 0.06, "skylake": 0.12}

#: FP classes copied from the Haswell model into the Skylake table —
#: the "not yet retuned for the new uarch" failure mode.
_STALE_SKYLAKE_CLASSES = ("fp_add", "fp_mul", "fma", "fp_div_f32",
                          "fp_div_f64", "cmov", "vec_int")


class LlvmMcaModel(PortSimulatorModel):
    """Out-of-order simulator driven by LLVM's scheduling model."""

    name = "llvm-mca"

    def __init__(self) -> None:
        super().__init__(recognize_zero_idioms=False,
                         split_load_op=False,
                         move_elimination=False,
                         residuals=_RESIDUALS)

    def build_table(self, uarch, base_table, base_div):
        table = perturbed_table(base_table, self.name, uarch,
                                sigma=_TABLE_SIGMA[uarch])
        if uarch == "skylake":
            for cls in _STALE_SKYLAKE_CLASSES:
                table[cls] = HASWELL_TABLE[cls]
        return table, confused_div_table(base_div)
