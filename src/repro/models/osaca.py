"""OSACA analogue.

The open-source alternative to IACA: a port model parameterised by
measured per-instruction throughput/latency tables.  The paper
attributes OSACA's high error less to its methodology than to the
engineering of its instruction parser — during the evaluation the
authors found and reported **five parser bugs**, reproduced here:

1. Instructions with an immediate source and a memory destination
   (``add [rbx], 1``) are treated as nops → under-reported throughput.
2. Memory operands with an index register but no base
   (``0x4110a(, %rax, 8)``) crash the parser — the reason OSACA shows
   ``-`` for the gzip CRC block in the case-study table.
3. Three-operand FP compares (``cmpps xmm, xmm, imm``) crash.
4. ``setcc`` with a memory destination parses as a nop.
5. Variable shifts by ``%cl`` are parsed as shift-by-one.

Beyond the parser, OSACA's model lacks the hardware's memory timing:
loads are charged port pressure but essentially no load-to-use latency
(it reasons from instruction tables, not a memory model), it knows no
zero idioms (``vxorps`` → 1.00), and its division entry is a single
optimistic number (the case study's 12.25 vs. measured 21.62).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.errors import ModelError
from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import Imm, is_imm, is_mem, is_reg
from repro.models.portsim import PortSimulatorModel
from repro.models.residual import ResidualSpec
from repro.models.tables import flat_div_table, perturbed_table

_RESIDUALS = {
    "ivybridge": ResidualSpec(base=0.41, store=0.27, load=0.50,
                              vector=0.62, bitmanip=0.34),
    "haswell": ResidualSpec(base=0.48, store=0.30, load=0.57,
                            vector=0.68, bitmanip=0.38),
    "skylake": ResidualSpec(base=0.48, store=0.30, load=0.56,
                            vector=0.66, bitmanip=0.38),
}

_TABLE_SIGMA = 0.11
_TABLE_VECTOR_SIGMA = 0.16

#: OSACA's single division cost (optimistic; measured tables list the
#: best case).
_DIV_LATENCY = 12


class OsacaModel(PortSimulatorModel):
    """Port-pressure analyser with a fragile parser."""

    name = "OSACA"

    def __init__(self) -> None:
        super().__init__(recognize_zero_idioms=False,
                         split_load_op=True,
                         move_elimination=False,
                         residuals=_RESIDUALS)

    # -- model shape ---------------------------------------------------------

    def build_descriptor(self, desc):
        # Port pressure without a memory model: loads have (almost) no
        # load-to-use latency, so dependency chains through memory are
        # invisible — the paper's "weakness modeling memory dependence".
        return replace(desc, load_latency=1, indexed_load_extra=0,
                       store_forward_latency=1)

    def build_table(self, uarch, base_table, base_div):
        table = perturbed_table(base_table, self.name, uarch,
                                sigma=_TABLE_SIGMA,
                                vector_sigma=_TABLE_VECTOR_SIGMA)
        return table, flat_div_table(base_div, latency=_DIV_LATENCY)

    # -- the parser -----------------------------------------------------------

    def preprocess(self, block: BasicBlock) -> BasicBlock:
        analysed: List[Instruction] = []
        for instr in block:
            mem = instr.memory_operand
            if mem is not None and mem.index is not None \
                    and mem.base is None:
                raise ModelError(
                    f"OSACA parser: unrecognised addressing form in "
                    f"{instr!s}")
            if instr.info.group == "fp_cmp" and len(instr.operands) == 3:
                raise ModelError(
                    f"OSACA parser: cannot parse {instr!s}")
            if self._is_imm_to_mem(instr) or self._is_setcc_mem(instr):
                analysed.append(Instruction("nop"))  # bug 1 / bug 4
                continue
            analysed.append(self._fix_shift(instr))
        return BasicBlock(analysed, source=block.source)

    @staticmethod
    def _is_imm_to_mem(instr: Instruction) -> bool:
        return (instr.info.writes_dst and len(instr.operands) >= 2
                and is_mem(instr.operands[0])
                and any(is_imm(op) for op in instr.operands[1:]))

    @staticmethod
    def _is_setcc_mem(instr: Instruction) -> bool:
        return (instr.info.group == "setcc"
                and is_mem(instr.operands[0]))

    @staticmethod
    def _fix_shift(instr: Instruction) -> Instruction:
        if instr.info.group == "shift" and len(instr.operands) == 2 \
                and is_reg(instr.operands[1]):
            return Instruction(instr.mnemonic,
                               (instr.operands[0], Imm(1)))
        return instr
