"""Shared machinery for simulator-style predictors (IACA, llvm-mca).

Both tools are out-of-order port simulators; they differ from the
hardware (and from each other) in their tables and in which
micro-architectural features they know about.  This base class runs
the same dataflow scheduler as the ground-truth machine, but:

* with the model's own (imperfect) tables,
* with the model's feature policies (zero idioms? split load-op?),
* with *no* execution trace — so no store-forwarding knowledge, no
  division fast-path detection, perfect-L1 assumptions,

and derives steady-state throughput from two unroll factors, exactly
like IACA's infinite-loop steady-state definition.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.isa.instruction import BasicBlock
from repro.models.base import CostModel, Prediction
from repro.models.residual import ResidualSpec, residual_factor
from repro.uarch.scheduler import DataflowScheduler, ScheduleResult
from repro.uarch.tables import get_uarch
from repro.uarch.uops import Decomposer


class PortSimulatorModel(CostModel):
    """An out-of-order port simulator with model-specific tables."""

    #: Unroll factors used to extract the steady-state slope.
    UNROLL_PAIR = (12, 28)

    def __init__(self, *,
                 recognize_zero_idioms: bool,
                 split_load_op: bool,
                 move_elimination: bool,
                 residuals: Dict[str, ResidualSpec]):
        self._policy = dict(
            recognize_zero_idioms=recognize_zero_idioms,
            split_load_op=split_load_op,
            move_elimination=move_elimination)
        self._residuals = residuals
        self._schedulers: Dict[str, DataflowScheduler] = {}

    # -- model-specific hooks ------------------------------------------------

    def build_table(self, uarch: str, base_table, base_div):
        """Return (timing table, div table) for this model on ``uarch``."""
        raise NotImplementedError

    def build_descriptor(self, desc):
        """Hook: models may assume a different machine shape."""
        return desc

    def preprocess(self, block: BasicBlock) -> BasicBlock:
        """Hook: a model's instruction parser (may raise ModelError)."""
        return block

    # -- shared machinery ------------------------------------------------------

    def _scheduler(self, uarch: str) -> DataflowScheduler:
        sched = self._schedulers.get(uarch)
        if sched is None:
            desc, base_table, base_div = get_uarch(uarch)
            desc = self.build_descriptor(desc)
            table, div = self.build_table(uarch, base_table, base_div)
            decomposer = Decomposer(desc, table, div, **self._policy)
            sched = DataflowScheduler(desc, decomposer,
                                      model_memory_dependencies=False)
            self._schedulers[uarch] = sched
        return sched

    def simulate(self, block: BasicBlock, uarch: str
                 ) -> Tuple[float, ScheduleResult]:
        """Raw simulated throughput (before the residual)."""
        sched = self._scheduler(uarch)
        u1, u2 = self.UNROLL_PAIR
        c1 = sched.schedule(block, u1).cycles
        result2 = sched.schedule(block, u2, keep_records=True)
        throughput = (result2.cycles - c1) / (u2 - u1)
        return max(throughput, 1.0 / sched.desc.issue_width), result2

    def schedule_trace(self, block: BasicBlock, uarch: str,
                       unroll: int = 3) -> ScheduleResult:
        """Predicted dispatch schedule (for the scheduling figure)."""
        block = self.preprocess(block)
        return self._scheduler(uarch).schedule(block, unroll,
                                               keep_records=True)

    def predict(self, block: BasicBlock, uarch: str) -> Prediction:
        analysed = self.preprocess(block)
        throughput, schedule = self.simulate(analysed, uarch)
        spec = self._residuals.get(uarch)
        if spec is not None:
            throughput *= residual_factor(spec, self.name, uarch, block)
        return Prediction(self.name, uarch, round(throughput, 2),
                          schedule=schedule)
