"""Calibrated modeling residual.

The structural defects we implement (division-width confusion, missing
zero idioms, fused load-op scheduling, parser bugs, latency-blind port
pressure) reproduce the paper's case studies and the *relative*
difficulty ordering between block classes.  Real tools additionally
carry a long tail of small per-instruction table errors and unmodeled
micro-architectural interactions; we represent that tail as a
deterministic per-(model, uarch, block) multiplicative residual whose
magnitude is calibrated — per model, per uarch, per block class — to
the error levels the paper reports (Table V, Figs. 5–10).

The residual is a documented substitution (see DESIGN.md): it stands in
for the thousands of hand-maintained table entries we cannot copy from
the closed tools, not for the effects the library models explicitly.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict

from repro.isa.instruction import BasicBlock

_BITMANIP_GROUPS = frozenset({"shift", "shift_double", "bitscan"})


def block_mix(block: BasicBlock) -> Dict[str, float]:
    """Fractions of instruction kinds used to weight the residual."""
    n = max(len(block), 1)
    loads = sum(1 for i in block if i.loads_memory)
    stores = sum(1 for i in block if i.stores_memory)
    vector = sum(1 for i in block if i.info.vec)
    bitman = sum(1 for i in block if i.info.group in _BITMANIP_GROUPS)
    return {
        "load": loads / n,
        "store": stores / n,
        "vector": vector / n,
        "bitmanip": bitman / n,
    }


@dataclass(frozen=True)
class ResidualSpec:
    """Residual magnitudes (log-space sigma) for one model+uarch.

    The effective sigma for a block interpolates between ``base`` and
    the class-specific values according to the block's instruction mix:
    stores are easy, load-mixed blocks are ~2x harder, vectorized
    blocks are hardest (the paper's per-cluster findings).
    """

    base: float
    store: float
    load: float
    vector: float
    bitmanip: float

    def sigma_for(self, block: BasicBlock) -> float:
        mix = block_mix(block)
        sigma = self.base
        sigma += mix["store"] * (self.store - self.base)
        sigma += mix["load"] * (self.load - self.base)
        sigma += mix["vector"] * (self.vector - self.base)
        sigma += mix["bitmanip"] * (self.bitmanip - self.base)
        # Tiny blocks are easy for every tool — their tables are
        # per-instruction measurements; residual error grows with the
        # number of interacting instructions.
        complexity = min(1.0, len(block) / 6.0)
        return max(sigma * complexity, 0.01)


def residual_factor(spec: ResidualSpec, model: str, uarch: str,
                    block: BasicBlock) -> float:
    """Deterministic multiplicative residual for one prediction."""
    sigma = spec.sigma_for(block)
    h = zlib.crc32(f"{model}|{uarch}|{block.text()}".encode())
    u1 = ((h & 0xFFFFF) + 1) / 1048577.0
    u2 = (((h >> 12) & 0xFFFFF) + 1) / 1048577.0
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2 * math.pi * u2)
    return math.exp(sigma * z)
