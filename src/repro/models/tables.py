"""Model-specific (deliberately imperfect) timing tables.

Each analyser ships its own copy of the per-instruction parameters.
Real tools' tables deviate from silicon because they are hand-written
from manuals, reverse-engineered, or simply stale; we reproduce that by
perturbing the ground-truth tables with a deterministic, seeded
per-class multiplicative error whose magnitude is calibrated per
(model, uarch) — plus the *structural* bugs the paper documents
(division-width confusion, missing zero idioms, fused load-op
scheduling), which are applied in the model classes themselves.

The perturbation is reproducible: the factor for a timing class
depends only on (model, uarch, class), so every run of the benchmark
suite sees the same "tool version".
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, Optional, Tuple

from repro.uarch.tables.common import TimingEntry, UopSpec

#: Timing classes counted as "vector/FP" for the extra-noise knob.
VECTOR_CLASSES = frozenset({
    "vec_logic", "vec_int", "vec_imul", "vec_shift", "shuffle",
    "shuffle_256", "lane_xfer", "vec_mov", "vec_xfer", "movmsk",
    "fp_add", "fp_mul", "fma", "fp_div_f32", "fp_div_f32_256",
    "fp_div_f64", "fp_div_f64_256", "fp_sqrt_f32", "fp_sqrt_f64",
    "fp_rcp", "fp_cvt", "fp_cmp", "fp_comi", "hadd", "fp_round",
})


def _unit_normal(seed_text: str) -> float:
    """Deterministic standard-normal-ish value from a string seed."""
    h = zlib.crc32(seed_text.encode())
    # Two uniform halves -> Box-Muller.
    u1 = ((h & 0xFFFF) + 1) / 65537.0
    u2 = (((h >> 16) & 0xFFFF) + 1) / 65537.0
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2 * math.pi * u2)


def perturb_entry(entry: TimingEntry, factor: float) -> TimingEntry:
    """Scale an entry's latencies/occupancies by ``factor``."""
    uops = tuple(
        UopSpec(ports=spec.ports,
                latency=max(1, round(spec.latency * factor)),
                occupancy=max(1, round(spec.occupancy * factor)))
        for spec in entry.uops)
    return TimingEntry(uops)


def perturbed_table(base: Dict[str, TimingEntry],
                    model: str, uarch: str,
                    sigma: float,
                    vector_sigma: Optional[float] = None,
                    overrides: Optional[Dict[str, TimingEntry]] = None
                    ) -> Dict[str, TimingEntry]:
    """Build one model's table for one uarch.

    ``sigma`` is the log-space error magnitude for scalar classes;
    ``vector_sigma`` (default: same) applies to :data:`VECTOR_CLASSES`
    — the knob behind "every model is >30% off on vectorized kernels".
    ``overrides`` force specific entries (structural bugs).
    """
    if vector_sigma is None:
        vector_sigma = sigma
    table: Dict[str, TimingEntry] = {}
    for cls, entry in base.items():
        s = vector_sigma if cls in VECTOR_CLASSES else sigma
        z = _unit_normal(f"{model}:{uarch}:{cls}")
        factor = math.exp(s * z)
        table[cls] = perturb_entry(entry, factor)
    if overrides:
        table.update(overrides)
    return table


def confused_div_table(div_table: Dict[Tuple[int, bool], UopSpec],
                       ) -> Dict[Tuple[int, bool], UopSpec]:
    """The IACA/llvm-mca division bug (paper case study 1).

    Both tools price *every* integer division as the 128-by-64-bit
    full-width form (~90+ cycles), ignoring both the operand width and
    the zeroed-``rdx`` fast path — hence predictions near 98 for a
    block that measures 21.6.
    """
    worst = div_table[(64, False)]
    return {key: worst for key in div_table}


def flat_div_table(div_table: Dict[Tuple[int, bool], UopSpec],
                   latency: int) -> Dict[Tuple[int, bool], UopSpec]:
    """A single optimistic division cost (OSACA's table shape)."""
    sample = div_table[(32, True)]
    flat = UopSpec(ports=sample.ports, latency=latency,
                   occupancy=latency)
    return {key: flat for key in div_table}
