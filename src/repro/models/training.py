"""A small numpy MLP regressor + Adam optimiser.

Used to train the Ithemal-style learned throughput predictor on
measured data.  Deterministic given a seed; no external ML framework
(the offline environment ships only numpy/scipy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class TrainingConfig:
    hidden: int = 64
    epochs: int = 500
    batch_size: int = 64
    learning_rate: float = 2e-3
    weight_decay: float = 5e-4
    seed: int = 0


@dataclass
class _Standardizer:
    mean: np.ndarray = field(default_factory=lambda: np.zeros(1))
    std: np.ndarray = field(default_factory=lambda: np.ones(1))

    def fit(self, x: np.ndarray) -> None:
        self.mean = x.mean(axis=0)
        self.std = x.std(axis=0)
        self.std[self.std < 1e-9] = 1.0

    def transform(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean) / self.std


class MlpRegressor:
    """Two-layer MLP: standardize → ReLU hidden → linear output."""

    def __init__(self, config: Optional[TrainingConfig] = None):
        self.config = config if config is not None else TrainingConfig()
        self._scaler = _Standardizer()
        self._w1: Optional[np.ndarray] = None
        self._losses: List[float] = []

    @property
    def is_fitted(self) -> bool:
        return self._w1 is not None

    @property
    def training_losses(self) -> List[float]:
        return list(self._losses)

    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MlpRegressor":
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._scaler.fit(x)
        xs = self._scaler.transform(x)
        n, d = xs.shape
        h = cfg.hidden
        self._w1 = rng.normal(0, np.sqrt(2.0 / d), size=(d, h))
        self._b1 = np.zeros(h)
        self._w2 = rng.normal(0, np.sqrt(1.0 / h), size=(h, 1))
        self._b2 = np.zeros(1)

        params = [self._w1, self._b1, self._w2, self._b2]
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        target = y.reshape(-1, 1)
        self._losses = []
        for epoch in range(cfg.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, cfg.batch_size):
                idx = order[start:start + cfg.batch_size]
                xb, yb = xs[idx], target[idx]
                # Forward.
                z1 = xb @ self._w1 + self._b1
                a1 = np.maximum(z1, 0.0)
                out = a1 @ self._w2 + self._b2
                err = out - yb
                epoch_loss += float((err ** 2).sum())
                # Backward.
                g_out = 2.0 * err / len(idx)
                g_w2 = a1.T @ g_out + cfg.weight_decay * self._w2
                g_b2 = g_out.sum(axis=0)
                g_a1 = g_out @ self._w2.T
                g_z1 = g_a1 * (z1 > 0)
                g_w1 = xb.T @ g_z1 + cfg.weight_decay * self._w1
                g_b1 = g_z1.sum(axis=0)
                grads = [g_w1, g_b1, g_w2, g_b2]
                step += 1
                for i, (p, g) in enumerate(zip(params, grads)):
                    m[i] = beta1 * m[i] + (1 - beta1) * g
                    v[i] = beta2 * v[i] + (1 - beta2) * g * g
                    m_hat = m[i] / (1 - beta1 ** step)
                    v_hat = v[i] / (1 - beta2 ** step)
                    p -= cfg.learning_rate * m_hat \
                        / (np.sqrt(v_hat) + eps)
            self._losses.append(epoch_loss / n)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        xs = self._scaler.transform(np.atleast_2d(x))
        a1 = np.maximum(xs @ self._w1 + self._b1, 0.0)
        return (a1 @ self._w2 + self._b2).ravel()
