"""Parallel sharded profiling (see docs/parallel.md).

Public surface::

    from repro.parallel import profile_corpus_sharded, shard_corpus

    profile = profile_corpus_sharded(corpus, "haswell", jobs=4)

The engine is deterministic by construction — serial and parallel runs
of the same corpus are bit-identical, a property enforced by the
differential suite in ``tests/parallel``.
"""

from repro.parallel.engine import (DEFAULT_SHARD_TIMEOUT, default_jobs,
                                   profile_corpus_sharded,
                                   profile_corpus_streamed,
                                   profile_shard_worker)
from repro.parallel.shard_cache import ShardCache
from repro.parallel.sharding import (DEFAULT_SHARD_SIZE, ProfileFolder,
                                     Shard, merge_funnels,
                                     merge_profiles, partition_check,
                                     shard_corpus, shard_digest,
                                     stream_shards)

__all__ = [
    "DEFAULT_SHARD_SIZE", "DEFAULT_SHARD_TIMEOUT", "ProfileFolder",
    "Shard", "ShardCache", "default_jobs", "merge_funnels",
    "merge_profiles", "partition_check", "profile_corpus_sharded",
    "profile_corpus_streamed", "profile_shard_worker", "shard_corpus",
    "shard_digest", "stream_shards",
]
