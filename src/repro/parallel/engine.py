"""The work-sharded profiling engine.

``profile_corpus_sharded`` is the parallel counterpart of
``repro.eval.validation.profile_corpus_detailed``: same inputs, same
output, bit-for-bit — the determinism suite under ``tests/parallel``
holds it to that.  The corpus is split into deterministic shards
(:mod:`repro.parallel.sharding`), each shard is profiled by a worker
that rebuilds its own simulated machine from a picklable
:class:`~repro.uarch.descriptor.MachineDescriptor` (no shared mutable
simulator state), and the per-shard profiles — funnel buckets
included — are merged back in canonical order.

Robustness: a worker that dies (``BrokenProcessPool``) or exceeds the
per-shard timeout does not poison the run.  The shard is retried
serially in the parent under the bounded
:class:`repro.resilience.RetryPolicy` (deterministic jittered
backoff); if every attempt fails, its blocks are recorded under the
``worker_failure`` funnel bucket so coverage still accounts for every
block.  Only successfully profiled shards are written to the shard
cache.  On ``KeyboardInterrupt`` or any other fatal error the pool is
hard-stopped and its workers reaped, so no orphan processes or
half-written shard files outlive the run.

Crash-safe resume: pass a :class:`repro.resilience.RunJournal` and
every completed shard is durably journaled (digest + checksum of the
cache bytes).  A later run over the same corpus verifies each cache
hit against the journal and quarantines mismatches, so a run killed
at any point resumes to byte-identical output.

Chaos: the ``worker_crash`` / ``worker_hang`` fault points
(:mod:`repro.resilience.chaos`) fire here, in pool workers only —
keyed by shard digest, so the parent can mirror the (deterministic)
decision into the run report's resilience section even though the
worker's own telemetry dies with it.

Workers are handed module-level functions so everything crossing the
process boundary pickles; the ``worker_fn`` / ``serial_fn`` hooks
exist so the fault-injection tests can substitute crashing or hanging
stand-ins without touching the engine's control flow.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import uuid
from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                wait as futures_wait)
from itertools import chain
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.corpus.dataset import BlockRecord, Corpus
from repro.corpus import streaming as corpus_streaming
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.profiler.result import FailureReason
from repro.parallel.shard_cache import ShardCache
from repro.parallel.sharding import (DEFAULT_SHARD_SIZE, ProfileFolder,
                                     Shard, merge_profiles, shard_corpus,
                                     shard_digest, stream_shards)
from repro.resilience import chaos
from repro.resilience import policy as resilience
from repro.resilience.journal import RunJournal
from repro.telemetry import core as telemetry
from repro.telemetry import resources
from repro.telemetry import window
from repro.uarch.descriptor import MachineDescriptor

# ``repro.eval.validation`` (``CorpusProfile``,
# ``profile_records_detailed``) is imported lazily at the call sites:
# ``repro.eval`` imports the pipeline, which imports this package, so
# a module-level import would make import order matter.

#: Ceiling on how long one shard may take in a worker before the
#: parent gives up on it and falls back to the serial retry
#: (``REPRO_SHARD_TIMEOUT`` overrides).
DEFAULT_SHARD_TIMEOUT = 600.0


def default_jobs() -> int:
    """``REPRO_JOBS`` if set, else every core the host offers."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def default_shard_timeout() -> float:
    """``REPRO_SHARD_TIMEOUT`` if set, else the 600 s default."""
    env = os.environ.get("REPRO_SHARD_TIMEOUT", "").strip()
    if env:
        return max(0.1, float(env))
    return DEFAULT_SHARD_TIMEOUT


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-worker-process profiler cache: building the scheduler/decomposer
#: once per (descriptor, config) and reusing it across shards matches
#: the serial path, where one profiler walks the whole corpus.
_WORKER_PROFILERS: Dict[Tuple, BasicBlockProfiler] = {}


def _init_worker(trace_dir: Optional[str] = None,
                 trace_id: Optional[str] = None) -> None:
    """Worker initialiser: drop telemetry state inherited via fork.

    Forked workers would otherwise double-count into the parent's
    registry snapshot and interleave writes into its NDJSON sink fd.
    Also flags the process as a worker so the worker-only chaos fault
    points (``worker_crash`` / ``worker_hang``) may fire here — and
    never in the parent.

    When the parent run is traced, each worker gets its own NDJSON
    side-channel file under ``trace_dir`` (autoflushed per record so a
    crashed worker leaves complete lines), stamped with the run's
    trace ID and this worker's pid; the parent stitches the files back
    into its own trace in shard-index order after the pool drains.
    """
    telemetry.reset()
    chaos.mark_worker()
    if trace_dir is not None:
        hub = telemetry.get_telemetry()
        path = os.path.join(trace_dir,
                            f"worker_{os.getpid()}.ndjson")
        hub.enable(telemetry.NdjsonSink(path, autoflush=True))
        hub.trace_id = trace_id
        hub.context = {"worker": os.getpid()}


def _maybe_worker_chaos(records: tuple) -> None:
    """Fire worker-process chaos faults for this shard, if armed.

    Keyed by the shard's content digest so the parent — which knows
    the digests — can mirror the decision for accounting.  Crash wins
    over hang when both would fire (the parent mirrors the same
    precedence).
    """
    policy = chaos.active()
    if policy is None or not chaos.in_worker():
        return
    digest = shard_digest(records)
    if policy.should_fire("worker_crash", digest):
        os._exit(chaos.CRASH_EXIT_CODE)
    if policy.should_fire("worker_hang", digest):
        time.sleep(policy.hang_seconds)


def _worker_profiler(descriptor: MachineDescriptor,
                     config: Optional[ProfilerConfig]
                     ) -> BasicBlockProfiler:
    key = (descriptor, config)
    profiler = _WORKER_PROFILERS.get(key)
    if profiler is None:
        profiler = BasicBlockProfiler(descriptor.build(), config)
        _WORKER_PROFILERS[key] = profiler
    return profiler


def profile_shard_worker(descriptor: MachineDescriptor,
                         config: Optional[ProfilerConfig],
                         index: int, records: tuple
                         ) -> Tuple[int, CorpusProfile]:
    """Profile one shard in a worker process (must stay picklable)."""
    from repro.eval.validation import profile_records_detailed
    _maybe_worker_chaos(records)
    hub = telemetry.get_telemetry()
    traced = hub.enabled and descriptor.trace is not None
    if traced:
        # Per-shard counter window: the registry is wiped so the
        # summary event below carries exactly this shard's counts —
        # the parent merges them per shard, in shard-index order.
        hub.registry.reset()
        hub.context["shard"] = index
    profiler = _worker_profiler(descriptor, config)
    with telemetry.span("worker.shard", shard=index,
                        blocks=len(records)):
        profile = profile_records_detailed(profiler, records)
    if traced:
        _export_decode_delta()
        counters = dict(hub.registry.snapshot()["counters"])
        telemetry.event("worker.shard_summary", shard=index,
                        counters=counters)
    return index, profile


#: Blocks this worker has profiled since it last dropped its retained
#: state (profilers + compiled plans) — the streamed engine's
#: per-worker epoch counter.
_WORKER_STREAM_SINCE = [0]


def profile_shard_worker_streamed(descriptor: MachineDescriptor,
                                  config: Optional[ProfilerConfig],
                                  index: int, records: tuple
                                  ) -> Tuple[int, CorpusProfile]:
    """Streamed-mode worker entry: bounded retained state.

    Identical bytes to :func:`profile_shard_worker` — it *is* that
    function, behind a per-worker epoch that drops the profiler cache
    and the compiled-plan cache every
    :func:`~repro.corpus.streaming.stream_epoch_blocks` profiled
    blocks, so a worker's RSS tracks the epoch, not the corpus.
    """
    from repro.runtime.plan import clear_plan_cache
    epoch = corpus_streaming.stream_epoch_blocks()
    if epoch and _WORKER_STREAM_SINCE[0] >= epoch:
        _WORKER_PROFILERS.clear()
        clear_plan_cache()
        _WORKER_STREAM_SINCE[0] = 0
    _WORKER_STREAM_SINCE[0] += len(records)
    return profile_shard_worker(descriptor, config, index, records)


#: Decode-table cache_info() totals already exported by this worker
#: (hits, misses, evictions) — cache_info is cumulative per process
#: but shard summaries must carry per-shard deltas.
_DECODE_EXPORTED = [0, 0, 0]


def _export_decode_delta() -> None:
    """Fold decode-table activity since the last shard into counters.

    The decode intern table counts through ``lru_cache.cache_info()``
    (zero instrumentation cost), not the telemetry registry, so worker
    decode activity would otherwise be invisible to the parent's
    stitched ``caches`` section.
    """
    from repro.isa.parser import decode_cache_stats
    from repro.telemetry import cachestats
    stats = decode_cache_stats()
    current = (stats.hits, stats.misses, stats.evictions)
    for field, now, before in zip(("hits", "misses", "evictions"),
                                  current, _DECODE_EXPORTED):
        if now > before:
            telemetry.count(cachestats.counter_name("decode", field),
                            now - before)
    _DECODE_EXPORTED[:] = current


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def _worker_failure_profile(shard: Shard) -> CorpusProfile:
    """Account a whole shard under the ``worker_failure`` bucket."""
    from repro.eval.validation import CorpusProfile
    return CorpusProfile(
        throughputs={},
        funnel={"total": len(shard), "accepted": 0,
                "dropped": {FailureReason.WORKER_FAILURE.value:
                            len(shard)}})


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool that may contain hung workers, and reap them.

    ``shutdown(wait=True)`` would block forever on a worker stuck in a
    pathological block, so terminate the processes first, then join
    each one (escalating to ``kill`` for anything that survives
    SIGTERM) so no orphan or zombie processes outlive the run.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.join(timeout=5.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=5.0)


def _replicate_profiler_counters(profile: CorpusProfile) -> None:
    """Mirror a worker-produced profile into the parent's counters.

    Workers keep their own (reset) telemetry, so the per-block
    ``profiler.*`` counters they would have bumped are lost to the
    parent; re-derive them from the funnel (and the informational
    ``info`` tallies, e.g. ``fastpath_extrapolated``) so run reports
    built from counters stay consistent with the merged profile.
    """
    funnel = profile.funnel
    telemetry.count("profiler.blocks_total", funnel["total"])
    if funnel["accepted"]:
        telemetry.count("profiler.blocks_accepted", funnel["accepted"])
    for reason, dropped in funnel["dropped"].items():
        telemetry.count(f"profiler.failure.{reason}", dropped)
    for name, value in (profile.info or {}).items():
        if value:
            telemetry.count(f"profiler.{name}", value)


#: Worker counters the parent must NOT merge during stitching: these
#: are re-derived from the merged funnel/info by
#: ``_replicate_profiler_counters`` (which also covers cache-hit and
#: rescued shards, where no worker registry exists), so merging them
#: again would double-count.
_STITCH_EXCLUDED = frozenset({
    "profiler.blocks_total", "profiler.blocks_accepted",
    "profiler.fastpath_extrapolated", "profiler.blockplan_compiled",
    "profiler.chaos_block_poison", "profiler.step_budget_exceeded",
    "profiler.lanes_vectorized", "profiler.triage_revalidated",
})


def _stitchable(name: str) -> bool:
    return name not in _STITCH_EXCLUDED \
        and not name.startswith("profiler.failure.")


def _read_ndjson_lenient(path: str) -> List[Dict]:
    """Worker-trace loader tolerating a torn final line.

    A worker killed mid-write (crash chaos, pool termination) can
    leave one truncated line at the tail; every complete line before
    it is still good and must be stitched.
    """
    records: List[Dict] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    break  # torn tail; everything before it counts
    except OSError:
        pass
    return records


def _stitch_worker_traces(trace_dir: str) -> None:
    """Merge the pool's side-channel traces into the parent's.

    Records are re-emitted verbatim (worker pid, shard, and per-worker
    ``seq`` preserved, run trace ID already stamped) in deterministic
    order: by shard index, then worker, then sequence.  Each shard's
    ``worker.shard_summary`` counters are folded into the parent
    registry — excluding the funnel-replicated counters — and worker
    span durations feed the parent's ``span.*`` histograms so pooled
    stage timings show up next to the parent's own.
    """
    hub = telemetry.get_telemetry()
    records: List[Dict] = []
    try:
        names = sorted(os.listdir(trace_dir))
    except OSError:
        return
    for name in names:
        if name.endswith(".ndjson"):
            records.extend(
                _read_ndjson_lenient(os.path.join(trace_dir, name)))
    records.sort(key=lambda r: (r.get("shard", -1),
                                r.get("worker", 0),
                                r.get("seq", 0)))
    stitched = 0
    for record in records:
        if record.get("kind") == "event" \
                and record.get("name") == "worker.shard_summary":
            for counter, value in sorted(
                    (record.get("counters") or {}).items()):
                if value and _stitchable(counter):
                    telemetry.count(counter, value)
            continue
        if record.get("kind") == "span" \
                and record.get("dur_ms") is not None:
            telemetry.observe(f"span.{record['name']}",
                              record["dur_ms"])
        hub.sink.emit(record)
        stitched += 1
    if stitched:
        telemetry.count("parallel.stitched_records", stitched)


def _feed_windows(aggregator: Optional[window.WindowAggregator],
                  starts: Optional[Dict[int, int]], shard: Shard,
                  profile: CorpusProfile) -> None:
    """Feed one shard's per-block cycles into the window aggregator.

    Runs at every point a shard result lands (cache hit, serial,
    pool, serial rescue, worker-failure bucket), so serial and pooled
    runs observe the same (index, value) pairs; the aggregator's
    arrival-order independence does the rest.  Dropped blocks feed
    ``None`` — they advance window completeness without contributing
    a sample.
    """
    if aggregator is None:
        return
    base = starts[shard.index]
    throughputs = profile.throughputs
    for offset, record in enumerate(shard.records):
        aggregator.observe(base + offset,
                           throughputs.get(record.block_id))


def _journal_meta(uarch: str, seed: int,
                  shards: Sequence[Shard]) -> Dict:
    """Run identity the journal pins: same corpus, uarch, and seed."""
    import zlib
    crc = 0
    for shard in shards:
        crc = zlib.crc32(shard.digest.encode(), crc)
    return {"uarch": uarch, "seed": seed, "shards": len(shards),
            "corpus": f"{crc:08x}"}


def profile_corpus_sharded(corpus: Corpus, uarch: str, seed: int = 0,
                           *, jobs: Optional[int] = None,
                           config: Optional[ProfilerConfig] = None,
                           shard_size: int = DEFAULT_SHARD_SIZE,
                           shard_timeout: Optional[float] = None,
                           shards: Optional[Sequence[Shard]] = None,
                           cache: Optional[ShardCache] = None,
                           journal: Optional[RunJournal] = None,
                           worker_fn=None, serial_fn=None,
                           retry: Optional[resilience.RetryPolicy] = None,
                           stats: Optional[Dict] = None,
                           run_label: Optional[str] = None,
                           stream: Optional[bool] = None
                           ) -> CorpusProfile:
    """Profile a corpus across a worker pool, bit-identical to serial.

    ``jobs=1`` (or a single pending shard) profiles in-process with no
    pool at all.  ``cache`` enables the v3 shard cache: shards whose
    digest already has an entry are loaded instead of profiled, and
    freshly profiled shards are written back atomically.  ``journal``
    (requires ``cache``) makes the run crash-safe: completed shards
    are durably journaled with a checksum of their cache bytes, cache
    hits are verified against the journal on resume, and mismatches
    are quarantined and re-profiled.  ``stats``, if given, is filled
    with run accounting (shard counts, cache hits, resumed shards,
    retries, failures).

    ``stream`` (default: ``$REPRO_STREAM``) routes the run through
    :func:`profile_corpus_streamed` over the very same shard sequence:
    the journal identity is unchanged — batch and streamed runs resume
    each other — and the result is byte-identical (the differential
    suite proves it), but shards fold into the merged profile as they
    complete instead of accumulating until the end.
    """
    from repro.eval.validation import profile_records_detailed
    jobs = default_jobs() if jobs is None else max(1, jobs)
    if shard_timeout is None:
        shard_timeout = default_shard_timeout()
    if shards is None:
        shards = shard_corpus(corpus, shard_size)
    worker_fn = worker_fn or profile_shard_worker
    retry = retry or resilience.default_retry_policy(seed)

    if stream is None:
        stream = corpus_streaming.stream_enabled()
    if stream:
        return profile_corpus_streamed(
            iter(shards), uarch, seed=seed, jobs=jobs, config=config,
            shard_size=shard_size, shard_timeout=shard_timeout,
            cache=cache,
            journal=journal,
            journal_meta=(_journal_meta(uarch, seed, shards)
                          if journal is not None else None),
            worker_fn=worker_fn, serial_fn=serial_fn, retry=retry,
            stats=stats, run_label=run_label,
            total_blocks=sum(len(shard) for shard in shards),
            total_shards=len(shards))

    # Live-layer setup (all of it telemetry-gated): mint the
    # run-scoped trace ID, announce the run, and build the windowed
    # aggregator over deterministic global block indices (each shard's
    # start offset is its prefix sum — shards are contiguous slices).
    hub = telemetry.get_telemetry()
    trace_id: Optional[str] = None
    aggregator: Optional[window.WindowAggregator] = None
    starts: Optional[Dict[int, int]] = None
    label = run_label or uarch
    if hub.enabled:
        if hub.trace_id is None:
            hub.trace_id = uuid.uuid4().hex[:12]
        trace_id = hub.trace_id
        starts = {}
        offset = 0
        for shard in sorted(shards, key=lambda s: s.index):
            starts[shard.index] = offset
            offset += len(shard)
        aggregator = window.WindowAggregator(
            label, offset,
            on_window=lambda summary: telemetry.event(
                "window", label=label, **summary))
        telemetry.event("run.start", label=label, uarch=uarch,
                        seed=seed, jobs=jobs, shards=len(shards),
                        blocks=offset,
                        window_size=aggregator.window_size)

    descriptor = MachineDescriptor(uarch=uarch, seed=seed,
                                   trace=trace_id)

    journaled: Dict[str, int] = {}
    if journal is not None:
        if cache is None:
            raise ValueError("journal requires a shard cache")
        journaled = journal.open(_journal_meta(uarch, seed, shards))

    results: Dict[int, CorpusProfile] = {}
    by_index = {shard.index: shard for shard in shards}
    pending: List[Shard] = []
    resumed = 0
    try:
        for shard in shards:
            cached = _load_verified(cache, shard, journaled)
            if cached is not None:
                results[shard.index] = cached
                _feed_windows(aggregator, starts, shard, cached)
                if shard.digest in journaled:
                    resumed += 1
            else:
                pending.append(shard)

        run_stats = {"shards": len(shards),
                     "cache_hits": len(results), "resumed": resumed,
                     "profiled": 0, "retried": 0, "failed": 0,
                     "written": 0}
        telemetry.count("parallel.shards_total", len(shards))
        if run_stats["cache_hits"]:
            telemetry.count("parallel.shard_cache_hits",
                            run_stats["cache_hits"])
        if cache is not None:
            if run_stats["cache_hits"]:
                telemetry.count("cache.shard.hits",
                                run_stats["cache_hits"])
            if pending:
                telemetry.count("cache.shard.misses", len(pending))
        if resumed:
            telemetry.count("resilience.resumed_shards", resumed)
            telemetry.event("resilience.resume", shards=resumed,
                            pending=len(pending))

        failed: List[Shard] = []
        with telemetry.span("parallel.profile_corpus", uarch=uarch,
                            jobs=jobs, shards=len(shards),
                            pending=len(pending)) as span:
            if pending and (jobs <= 1 or len(pending) == 1):
                profiler = BasicBlockProfiler(descriptor.build(),
                                              config)
                for shard in pending:
                    profile = profile_records_detailed(profiler,
                                                       shard.records)
                    results[shard.index] = profile
                    _feed_windows(aggregator, starts, shard, profile)
                    run_stats["profiled"] += 1
                    _store(cache, shard, profile, run_stats, journal)
            elif pending:
                trace_dir = tempfile.mkdtemp(prefix="repro-trace-") \
                    if hub.enabled else None
                try:
                    failed = _run_pool(pending, descriptor, config,
                                       jobs, shard_timeout, worker_fn,
                                       results, run_stats, cache,
                                       journal, trace_dir=trace_dir,
                                       trace_id=trace_id,
                                       aggregator=aggregator,
                                       starts=starts)
                    if trace_dir is not None:
                        _stitch_worker_traces(trace_dir)
                finally:
                    if trace_dir is not None:
                        shutil.rmtree(trace_dir, ignore_errors=True)
                for shard in failed:
                    # Escalate pool -> serial: bounded retries in the
                    # parent; a shard that still fails is bucketed,
                    # never allowed to poison the run or the cache.
                    run_stats["retried"] += 1
                    telemetry.count("parallel.worker_retries")
                    telemetry.count("resilience.retries")
                    telemetry.event("parallel.worker_retry",
                                    shard=shard.index,
                                    digest=shard.digest)
                    retry_fn = serial_fn or _serial_shard
                    try:
                        profile = retry.run(
                            lambda attempt, s=shard:
                            retry_fn(descriptor, config, s),
                            key=f"serial_rescue|{shard.digest}",
                            retry_on=(Exception,))
                        results[shard.index] = profile
                        _feed_windows(aggregator, starts, shard,
                                      profile)
                        run_stats["profiled"] += 1
                        # The rescue ran in-parent, so the profiler's
                        # own counters already recorded it — no
                        # replication (workers alone need that).
                        _store(cache, shard, profile, run_stats,
                               journal)
                    except Exception as exc:
                        run_stats["failed"] += 1
                        telemetry.count("parallel.worker_failures")
                        telemetry.event("parallel.worker_failure",
                                        shard=shard.index,
                                        error=type(exc).__name__)
                        resilience.quarantine_or_raise(
                            f"shard {shard.index} failed in the pool "
                            f"and in {retry.max_attempts} serial "
                            f"attempts", type(exc).__name__)
                        failure_profile = _worker_failure_profile(shard)
                        results[shard.index] = failure_profile
                        _feed_windows(aggregator, starts, shard,
                                      failure_profile)
            span.annotate(profiled=run_stats["profiled"],
                          cache_hits=run_stats["cache_hits"],
                          resumed=resumed,
                          failed=run_stats["failed"])
    finally:
        if journal is not None:
            journal.close()

    if stats is not None:
        stats.update(run_stats)
    merged = merge_profiles(
        [(by_index[index], profile)
         for index, profile in results.items()])
    # Triage training (opt-in, parent-side): workers appended their
    # shards' fresh measurements to the triage journal; fold them into
    # a refreshed surrogate so the *next* run routes sharper.  A no-op
    # unless $REPRO_TRIAGE armed the stage; degrades on any failure.
    from repro import triage
    triage.publish_weights(uarch, seed, config)
    if aggregator is not None:
        series = aggregator.finish()
        window.deposit_run(label, series)
        telemetry.event("run.end", label=label, uarch=uarch,
                        total=merged.funnel["total"],
                        accepted=merged.funnel["accepted"],
                        windows=len(series))
    resources.sample_peak_rss()
    return merged


def _as_shard_stream(source: Union[Iterable[BlockRecord],
                                   Iterable[Shard]],
                     shard_size: int) -> Iterator[Shard]:
    """Normalise a streamed source into an iterator of shards.

    Accepts either block records (lazily cut into shards via
    :func:`stream_shards`) or pre-built shards (passed through) — the
    distinction is made by peeking at the first item, so a generator
    source is never materialised.
    """
    iterator = iter(source)
    try:
        first = next(iterator)
    except StopIteration:
        return iter(())
    rest = chain([first], iterator)
    if isinstance(first, Shard):
        return rest
    return stream_shards(rest, shard_size)


def profile_corpus_streamed(source: Union[Iterable[BlockRecord],
                                          Iterable[Shard]],
                            uarch: str, seed: int = 0, *,
                            jobs: Optional[int] = None,
                            config: Optional[ProfilerConfig] = None,
                            shard_size: int = DEFAULT_SHARD_SIZE,
                            shard_timeout: Optional[float] = None,
                            cache: Optional[ShardCache] = None,
                            journal: Optional[RunJournal] = None,
                            journal_meta: Optional[Dict] = None,
                            worker_fn=None, serial_fn=None,
                            retry: Optional[resilience.RetryPolicy] = None,
                            stats: Optional[Dict] = None,
                            run_label: Optional[str] = None,
                            prefetch: Optional[int] = None,
                            total_blocks: Optional[int] = None,
                            total_shards: Optional[int] = None,
                            on_shard: Optional[Callable[[Shard,
                                                         "CorpusProfile"],
                                                        None]] = None
                            ) -> CorpusProfile:
    """Profile a lazily generated corpus in constant memory.

    The pipelined counterpart of :func:`profile_corpus_sharded`:
    ``source`` is an *iterator* of block records (or pre-built shards)
    that is consumed exactly once — generate → digest → shard →
    profile → fold → discard.  At most ``prefetch`` shards (default
    ``$REPRO_STREAM_PREFETCH`` × ``jobs``, never fewer than ``jobs``)
    are in flight at a time, so generation overlaps profiling in the
    pool workers while the bounded window provides backpressure: peak
    RSS is a function of ``jobs`` and ``shard_size``, never of corpus
    length (``benchmarks/bench_streaming.py`` enforces this).

    Results fold incrementally into a :class:`ProfileFolder` in
    shard-index order — the same fold ``merge_profiles`` performs over
    the full pair list — so the returned profile is byte-identical to
    the batch engine's over the same records.  Cache, journal, chaos
    accounting, serial rescue, and window feeding all reuse the batch
    engine's helpers; a streamed run with a journal resumes a batch
    run and vice versa, provided ``journal_meta`` matches.

    A streamed run cannot derive journal identity from a corpus it has
    not finished generating, so callers with ``journal`` must pass
    ``journal_meta`` explicitly (the batch delegation passes its usual
    corpus digest; generator-mode callers pin a corpus *spec* digest
    from :func:`repro.corpus.streaming.corpus_spec_digest`).

    ``total_blocks``/``total_shards`` (when known) size the window
    aggregator and the ``run.start`` event; ``None`` means unknown —
    the live layer then reports blocks-so-far and rate instead of an
    ETA.  ``on_shard(shard, profile)`` fires after each fold, in shard
    order — the hook streaming writers (``repro corpus --stream``)
    attach to emit rows incrementally.
    """
    from repro.eval.validation import profile_records_detailed
    jobs = default_jobs() if jobs is None else max(1, jobs)
    if shard_timeout is None:
        shard_timeout = default_shard_timeout()
    # The batch delegation hands over its resolved default worker —
    # swap it (and a plain None) for the epoch-bounded streamed entry;
    # injected custom workers pass through untouched.
    if worker_fn is None or worker_fn is profile_shard_worker:
        worker_fn = profile_shard_worker_streamed
    retry = retry or resilience.default_retry_policy(seed)
    if prefetch is None:
        prefetch = corpus_streaming.default_prefetch(jobs)
    max_inflight = max(jobs, int(prefetch))

    shard_iter = _as_shard_stream(source, shard_size)

    hub = telemetry.get_telemetry()
    trace_id: Optional[str] = None
    aggregator: Optional[window.WindowAggregator] = None
    starts: Optional[Dict[int, int]] = None
    label = run_label or uarch
    if hub.enabled:
        if hub.trace_id is None:
            hub.trace_id = uuid.uuid4().hex[:12]
        trace_id = hub.trace_id
        starts = {}
        aggregator = window.WindowAggregator(
            label, total_blocks,
            on_window=lambda summary: telemetry.event(
                "window", label=label, **summary))
        telemetry.event("run.start", label=label, uarch=uarch,
                        seed=seed, jobs=jobs, shards=total_shards,
                        blocks=total_blocks,
                        window_size=aggregator.window_size)

    descriptor = MachineDescriptor(uarch=uarch, seed=seed,
                                   trace=trace_id)

    journaled: Dict[str, int] = {}
    if journal is not None:
        if cache is None:
            raise ValueError("journal requires a shard cache")
        if journal_meta is None:
            raise ValueError(
                "a streamed run cannot derive journal identity from "
                "a corpus it has not generated yet; pass journal_meta "
                "(e.g. corpus_spec_digest(...))")
        journaled = journal.open(journal_meta)

    folder = ProfileFolder()
    run_stats = {"shards": 0, "cache_hits": 0, "resumed": 0,
                 "profiled": 0, "retried": 0, "failed": 0,
                 "written": 0, "max_queue_depth": 0}
    offset = 0

    def arrive(shard: Shard) -> None:
        # Called in shard-index order, the only order the stream can
        # produce — global block offsets are running prefix sums.
        nonlocal offset
        run_stats["shards"] += 1
        telemetry.count("parallel.shards_total")
        if starts is not None:
            starts[shard.index] = offset
        offset += len(shard)

    def hit(shard: Shard) -> None:
        run_stats["cache_hits"] += 1
        telemetry.count("parallel.shard_cache_hits")
        telemetry.count("cache.shard.hits")
        if shard.digest in journaled:
            run_stats["resumed"] += 1
            telemetry.count("resilience.resumed_shards")

    def fold(shard: Shard, profile: CorpusProfile) -> None:
        folder.add(shard, profile)
        _feed_windows(aggregator, starts, shard, profile)
        if starts is not None:
            del starts[shard.index]  # bounded parent-side state
        telemetry.count("stream.folded")
        if on_shard is not None:
            on_shard(shard, profile)

    def depth(in_flight: int) -> None:
        if in_flight > run_stats["max_queue_depth"]:
            run_stats["max_queue_depth"] = in_flight
            telemetry.set_gauge("stream.max_queue_depth", in_flight)
        telemetry.observe("stream.queue_depth", in_flight)

    try:
        with telemetry.span("parallel.profile_corpus", uarch=uarch,
                            jobs=jobs, streamed=True) as span:
            if jobs <= 1:
                _stream_serial(shard_iter, descriptor, config, cache,
                               journal, journaled, run_stats,
                               arrive, hit, fold, depth)
            else:
                _stream_pool(shard_iter, descriptor, config, jobs,
                             max_inflight, shard_timeout, worker_fn,
                             serial_fn, retry, cache, journal,
                             journaled, run_stats, hub, trace_id,
                             arrive, hit, fold, depth)
            if run_stats["resumed"]:
                telemetry.event("resilience.resume",
                                shards=run_stats["resumed"],
                                pending=run_stats["shards"]
                                - run_stats["cache_hits"])
            span.annotate(shards=run_stats["shards"],
                          profiled=run_stats["profiled"],
                          cache_hits=run_stats["cache_hits"],
                          resumed=run_stats["resumed"],
                          failed=run_stats["failed"])
    finally:
        if journal is not None:
            journal.close()

    if stats is not None:
        stats.update(run_stats)
    merged = folder.result()
    from repro import triage
    triage.publish_weights(uarch, seed, config)
    if aggregator is not None:
        series = aggregator.finish()
        window.deposit_run(label, series)
        telemetry.event("run.end", label=label, uarch=uarch,
                        total=merged.funnel["total"],
                        accepted=merged.funnel["accepted"],
                        windows=len(series))
    resources.sample_peak_rss()
    return merged


def _stream_serial(shard_iter: Iterator[Shard],
                   descriptor: MachineDescriptor,
                   config: Optional[ProfilerConfig],
                   cache: Optional[ShardCache],
                   journal: Optional[RunJournal],
                   journaled: Dict[str, int], run_stats: Dict,
                   arrive, hit, fold, depth) -> None:
    """The streamed engine's in-process path: profile as shards cut.

    One shared profiler across misses — the batch serial path's
    memoisation semantics — but the profiler (and the compiled-plan
    cache with it) is dropped and rebuilt every
    :func:`~repro.corpus.streaming.stream_epoch_blocks` profiled
    blocks: results and plans are pure functions of (text, machine,
    config), so the reset changes no bytes while keeping retained
    state bounded by the epoch instead of the corpus length.
    """
    from repro.eval.validation import profile_records_detailed
    from repro.runtime.plan import clear_plan_cache
    epoch = corpus_streaming.stream_epoch_blocks()
    profiler = None
    since_reset = 0
    for shard in shard_iter:
        arrive(shard)
        telemetry.count("stream.submitted")
        depth(1)
        cached = _load_verified(cache, shard, journaled)
        if cached is not None:
            hit(shard)
            fold(shard, cached)
            continue
        if cache is not None:
            telemetry.count("cache.shard.misses")
        if epoch and since_reset >= epoch:
            profiler = None
            clear_plan_cache()
            since_reset = 0
        if profiler is None:
            profiler = BasicBlockProfiler(descriptor.build(), config)
        profile = profile_records_detailed(profiler, shard.records)
        since_reset += len(shard)
        run_stats["profiled"] += 1
        _store(cache, shard, profile, run_stats, journal)
        fold(shard, profile)


def _stream_pool(shard_iter: Iterator[Shard],
                 descriptor: MachineDescriptor,
                 config: Optional[ProfilerConfig], jobs: int,
                 max_inflight: int, shard_timeout: float,
                 worker_fn, serial_fn,
                 retry: resilience.RetryPolicy,
                 cache: Optional[ShardCache],
                 journal: Optional[RunJournal],
                 journaled: Dict[str, int], run_stats: Dict,
                 hub, trace_id: Optional[str],
                 arrive, hit, fold, depth) -> None:
    """The streamed engine's pooled path: bounded-prefetch pipeline.

    A fill loop pulls shards from the generator only while fewer than
    ``max_inflight`` results are outstanding (submitted or completed
    but not yet foldable), so the generator provides results exactly
    as fast as the pool consumes them — that bounded window *is* the
    backpressure.  A fold loop drains completed shards strictly in
    index order; because submission is also in index order, the fold
    frontier can never starve while work is outstanding.

    Failure handling mirrors the batch pool: a worker exception or
    per-shard timeout escalates to the bounded serial rescue in the
    parent (same retry keys, same quarantine-or-raise), and a broken
    pool is rebuilt once per submit so one crashed worker cannot sink
    the rest of the stream.
    """
    inflight: Dict[int, Tuple] = {}   # index -> (future, shard, t0)
    ready: Dict[int, Tuple] = {}      # index -> (shard, profile)
    next_fold = 0
    exhausted = False
    hung = False
    interrupted = False
    pool: Optional[ProcessPoolExecutor] = None
    trace_dir: Optional[str] = None

    def ensure_pool() -> ProcessPoolExecutor:
        nonlocal pool, trace_dir
        if pool is None:
            if hub.enabled and trace_dir is None:
                trace_dir = tempfile.mkdtemp(prefix="repro-trace-")
            pool = ProcessPoolExecutor(max_workers=jobs,
                                       initializer=_init_worker,
                                       initargs=(trace_dir, trace_id))
        return pool

    def submit(shard: Shard) -> None:
        nonlocal pool
        executor = ensure_pool()
        try:
            future = executor.submit(worker_fn, descriptor, config,
                                     shard.index, shard.records)
        except Exception:
            # The pool died between submits (e.g. a crashed worker
            # broke it): rebuild once and retry; a second failure is
            # fatal and propagates.
            _terminate_pool(executor)
            pool = None
            future = ensure_pool().submit(worker_fn, descriptor,
                                          config, shard.index,
                                          shard.records)
        inflight[shard.index] = (future, shard, time.monotonic())

    def rescue(shard: Shard) -> CorpusProfile:
        run_stats["retried"] += 1
        telemetry.count("parallel.worker_retries")
        telemetry.count("resilience.retries")
        telemetry.event("parallel.worker_retry", shard=shard.index,
                        digest=shard.digest)
        retry_fn = serial_fn or _serial_shard
        try:
            profile = retry.run(
                lambda attempt, s=shard: retry_fn(descriptor, config,
                                                  s),
                key=f"serial_rescue|{shard.digest}",
                retry_on=(Exception,))
        except Exception as exc:
            run_stats["failed"] += 1
            telemetry.count("parallel.worker_failures")
            telemetry.event("parallel.worker_failure",
                            shard=shard.index,
                            error=type(exc).__name__)
            resilience.quarantine_or_raise(
                f"shard {shard.index} failed in the pool and in "
                f"{retry.max_attempts} serial attempts",
                type(exc).__name__)
            return _worker_failure_profile(shard)
        run_stats["profiled"] += 1
        _store(cache, shard, profile, run_stats, journal)
        return profile

    def land(future, shard: Shard) -> CorpusProfile:
        try:
            _, profile = future.result(timeout=0)
        except Exception as exc:
            telemetry.event("parallel.shard_error", shard=shard.index,
                            error=type(exc).__name__)
            return rescue(shard)
        run_stats["profiled"] += 1
        _replicate_profiler_counters(profile)
        _store(cache, shard, profile, run_stats, journal)
        return profile

    try:
        while True:
            # Fill: pull from the generator only while the in-flight
            # window has room.
            while not exhausted and \
                    len(inflight) + len(ready) < max_inflight:
                shard = next(shard_iter, None)
                if shard is None:
                    exhausted = True
                    break
                arrive(shard)
                cached = _load_verified(cache, shard, journaled)
                if cached is not None:
                    hit(shard)
                    ready[shard.index] = (shard, cached)
                    continue
                if cache is not None:
                    telemetry.count("cache.shard.misses")
                _account_planned_worker_faults([shard])
                telemetry.count("stream.submitted")
                submit(shard)
                depth(len(inflight) + len(ready))
            # Fold: drain the contiguous completed frontier in index
            # order (this is what keeps streamed == batch bytes).
            while next_fold in ready:
                shard, profile = ready.pop(next_fold)
                fold(shard, profile)
                next_fold += 1
            if exhausted and not inflight:
                if ready:  # pragma: no cover - invariant guard
                    raise RuntimeError(
                        f"stream fold stalled at {next_fold} with "
                        f"{sorted(ready)} ready")
                break
            if not inflight:
                continue  # window was all cache hits; pull more
            # Wait for a completion, bounded by the oldest in-flight
            # shard's remaining timeout budget.
            now = time.monotonic()
            oldest = min(t0 for _, _, t0 in inflight.values())
            futures_wait([f for f, _, _ in inflight.values()],
                         timeout=max(0.0,
                                     oldest + shard_timeout - now),
                         return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for index in sorted(inflight):
                future, shard, t0 = inflight[index]
                if future.done():
                    del inflight[index]
                    ready[index] = (shard, land(future, shard))
                elif now - t0 > shard_timeout:
                    hung = True
                    future.cancel()
                    del inflight[index]
                    telemetry.event("parallel.shard_error",
                                    shard=shard.index,
                                    error="TimeoutError")
                    ready[index] = (shard, rescue(shard))
    except BaseException:
        interrupted = True
        raise
    finally:
        if pool is not None:
            if hung or interrupted:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        if trace_dir is not None:
            try:
                if not interrupted:
                    _stitch_worker_traces(trace_dir)
            finally:
                shutil.rmtree(trace_dir, ignore_errors=True)


def _load_verified(cache: Optional[ShardCache], shard: Shard,
                   journaled: Dict[str, int]
                   ) -> Optional[CorpusProfile]:
    """Load a shard from cache, cross-checked against the journal.

    A cache hit whose on-disk bytes no longer match the checksum the
    journal recorded at write time is corrupt (torn write, bit rot, or
    an injected post-write corruption): quarantine it and re-profile.
    Hits without a journal entry fall back to the loader's own
    structural validation.
    """
    if cache is None:
        return None
    expected = journaled.get(shard.digest)
    if expected is not None:
        actual = cache.checksum(shard)
        if actual is None:
            return None
        if actual != expected:
            cache._quarantine(cache.path_for(shard),
                              "journal checksum mismatch")
            return None
    return cache.load(shard)


def _serial_shard(descriptor: MachineDescriptor,
                  config: Optional[ProfilerConfig],
                  shard: Shard) -> CorpusProfile:
    from repro.eval.validation import profile_records_detailed
    profiler = BasicBlockProfiler(descriptor.build(), config)
    return profile_records_detailed(profiler, shard.records)


def _store(cache: Optional[ShardCache], shard: Shard,
           profile: CorpusProfile, run_stats: Dict,
           journal: Optional[RunJournal] = None) -> None:
    if cache is None:
        return
    checksum = cache.store(shard, profile)
    if checksum is None:
        return  # degraded: write failed, run continues uncached
    run_stats["written"] += 1
    if journal is not None:
        journal.record_shard(shard.digest, shard.index, checksum)


def _account_planned_worker_faults(pending: Sequence[Shard]) -> None:
    """Mirror worker-side chaos decisions into the parent's telemetry.

    A crashing or hanging worker takes its registry with it, so the
    parent — which can evaluate the same deterministic predicate —
    accounts the injection.  Mirrors ``_maybe_worker_chaos`` exactly,
    including crash-beats-hang precedence.
    """
    policy = chaos.active()
    if policy is None:
        return
    for shard in pending:
        if policy.should_fire("worker_crash", shard.digest):
            chaos.account("worker_crash", shard.digest)
        elif policy.should_fire("worker_hang", shard.digest):
            chaos.account("worker_hang", shard.digest)


def _run_pool(pending: Sequence[Shard],
              descriptor: MachineDescriptor,
              config: Optional[ProfilerConfig], jobs: int,
              shard_timeout: float, worker_fn,
              results: Dict[int, CorpusProfile], run_stats: Dict,
              cache: Optional[ShardCache],
              journal: Optional[RunJournal] = None,
              trace_dir: Optional[str] = None,
              trace_id: Optional[str] = None,
              aggregator: Optional[window.WindowAggregator] = None,
              starts: Optional[Dict[int, int]] = None) -> List[Shard]:
    """Fan pending shards out to a process pool; return the failures."""
    failed: List[Shard] = []
    hung = False
    interrupted = False
    _account_planned_worker_faults(pending)
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)),
                               initializer=_init_worker,
                               initargs=(trace_dir, trace_id))
    try:
        futures = [(pool.submit(worker_fn, descriptor, config,
                                shard.index, shard.records), shard)
                   for shard in pending]
        for future, shard in futures:
            try:
                index, profile = future.result(timeout=shard_timeout)
                results[index] = profile
                _feed_windows(aggregator, starts, shard, profile)
                run_stats["profiled"] += 1
                _replicate_profiler_counters(profile)
                _store(cache, shard, profile, run_stats, journal)
            except Exception as exc:  # TimeoutError, BrokenProcessPool,
                # or whatever the worker raised — all retried serially.
                if isinstance(exc, TimeoutError):
                    hung = True
                    future.cancel()
                failed.append(shard)
                telemetry.event("parallel.shard_error",
                                shard=shard.index,
                                error=type(exc).__name__)
    except BaseException:
        # KeyboardInterrupt / fatal error: hard-stop the pool, reap
        # every worker, and let the interrupt propagate.  Without this
        # a Ctrl-C would leave orphan workers grinding on and the
        # management thread waiting on them.
        interrupted = True
        raise
    finally:
        if hung or interrupted:
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return failed
