"""The work-sharded profiling engine.

``profile_corpus_sharded`` is the parallel counterpart of
``repro.eval.validation.profile_corpus_detailed``: same inputs, same
output, bit-for-bit — the determinism suite under ``tests/parallel``
holds it to that.  The corpus is split into deterministic shards
(:mod:`repro.parallel.sharding`), each shard is profiled by a worker
that rebuilds its own simulated machine from a picklable
:class:`~repro.uarch.descriptor.MachineDescriptor` (no shared mutable
simulator state), and the per-shard profiles — funnel buckets
included — are merged back in canonical order.

Robustness: a worker that dies (``BrokenProcessPool``) or exceeds the
per-shard timeout does not poison the run.  The shard is retried once
serially in the parent; if that also fails, its blocks are recorded
under the ``worker_failure`` funnel bucket so coverage still accounts
for every block.  Only successfully profiled shards are written to the
shard cache.

Workers are handed module-level functions so everything crossing the
process boundary pickles; the ``worker_fn`` / ``serial_fn`` hooks
exist so the fault-injection tests can substitute crashing or hanging
stand-ins without touching the engine's control flow.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.dataset import Corpus
from repro.profiler.harness import BasicBlockProfiler, ProfilerConfig
from repro.profiler.result import FailureReason
from repro.parallel.shard_cache import ShardCache
from repro.parallel.sharding import (DEFAULT_SHARD_SIZE, Shard,
                                     merge_profiles, shard_corpus)
from repro.telemetry import core as telemetry
from repro.uarch.descriptor import MachineDescriptor

# ``repro.eval.validation`` (``CorpusProfile``,
# ``profile_records_detailed``) is imported lazily at the call sites:
# ``repro.eval`` imports the pipeline, which imports this package, so
# a module-level import would make import order matter.

#: Ceiling on how long one shard may take in a worker before the
#: parent gives up on it and falls back to the serial retry.
DEFAULT_SHARD_TIMEOUT = 600.0


def default_jobs() -> int:
    """``REPRO_JOBS`` if set, else every core the host offers."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-worker-process profiler cache: building the scheduler/decomposer
#: once per (descriptor, config) and reusing it across shards matches
#: the serial path, where one profiler walks the whole corpus.
_WORKER_PROFILERS: Dict[Tuple, BasicBlockProfiler] = {}


def _init_worker() -> None:
    """Worker initialiser: drop telemetry state inherited via fork.

    Forked workers would otherwise double-count into the parent's
    registry snapshot and interleave writes into its NDJSON sink fd.
    """
    telemetry.reset()


def _worker_profiler(descriptor: MachineDescriptor,
                     config: Optional[ProfilerConfig]
                     ) -> BasicBlockProfiler:
    key = (descriptor, config)
    profiler = _WORKER_PROFILERS.get(key)
    if profiler is None:
        profiler = BasicBlockProfiler(descriptor.build(), config)
        _WORKER_PROFILERS[key] = profiler
    return profiler


def profile_shard_worker(descriptor: MachineDescriptor,
                         config: Optional[ProfilerConfig],
                         index: int, records: tuple
                         ) -> Tuple[int, CorpusProfile]:
    """Profile one shard in a worker process (must stay picklable)."""
    from repro.eval.validation import profile_records_detailed
    profiler = _worker_profiler(descriptor, config)
    return index, profile_records_detailed(profiler, records)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

def _worker_failure_profile(shard: Shard) -> CorpusProfile:
    """Account a whole shard under the ``worker_failure`` bucket."""
    from repro.eval.validation import CorpusProfile
    return CorpusProfile(
        throughputs={},
        funnel={"total": len(shard), "accepted": 0,
                "dropped": {FailureReason.WORKER_FAILURE.value:
                            len(shard)}})


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool that may contain hung workers.

    ``shutdown(wait=True)`` would block forever on a worker stuck in a
    pathological block, so terminate the processes first; the
    management thread then winds down cleanly.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def _replicate_profiler_counters(profile: CorpusProfile) -> None:
    """Mirror a worker-produced profile into the parent's counters.

    Workers keep their own (reset) telemetry, so the per-block
    ``profiler.*`` counters they would have bumped are lost to the
    parent; re-derive them from the funnel (and the informational
    ``info`` tallies, e.g. ``fastpath_extrapolated``) so run reports
    built from counters stay consistent with the merged profile.
    """
    funnel = profile.funnel
    telemetry.count("profiler.blocks_total", funnel["total"])
    if funnel["accepted"]:
        telemetry.count("profiler.blocks_accepted", funnel["accepted"])
    for reason, dropped in funnel["dropped"].items():
        telemetry.count(f"profiler.failure.{reason}", dropped)
    for name, value in (profile.info or {}).items():
        if value:
            telemetry.count(f"profiler.{name}", value)


def profile_corpus_sharded(corpus: Corpus, uarch: str, seed: int = 0,
                           *, jobs: Optional[int] = None,
                           config: Optional[ProfilerConfig] = None,
                           shard_size: int = DEFAULT_SHARD_SIZE,
                           shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
                           shards: Optional[Sequence[Shard]] = None,
                           cache: Optional[ShardCache] = None,
                           worker_fn=None, serial_fn=None,
                           stats: Optional[Dict] = None
                           ) -> CorpusProfile:
    """Profile a corpus across a worker pool, bit-identical to serial.

    ``jobs=1`` (or a single pending shard) profiles in-process with no
    pool at all.  ``cache`` enables the v3 shard cache: shards whose
    digest already has an entry are loaded instead of profiled, and
    freshly profiled shards are written back atomically.  ``stats``,
    if given, is filled with run accounting (shard counts, cache hits,
    retries, failures).
    """
    from repro.eval.validation import profile_records_detailed
    jobs = default_jobs() if jobs is None else max(1, jobs)
    if shards is None:
        shards = shard_corpus(corpus, shard_size)
    worker_fn = worker_fn or profile_shard_worker
    descriptor = MachineDescriptor(uarch=uarch, seed=seed)

    results: Dict[int, CorpusProfile] = {}
    by_index = {shard.index: shard for shard in shards}
    pending: List[Shard] = []
    for shard in shards:
        cached = cache.load(shard) if cache is not None else None
        if cached is not None:
            results[shard.index] = cached
        else:
            pending.append(shard)

    run_stats = {"shards": len(shards), "cache_hits": len(results),
                 "profiled": 0, "retried": 0, "failed": 0,
                 "written": 0}
    telemetry.count("parallel.shards_total", len(shards))
    if run_stats["cache_hits"]:
        telemetry.count("parallel.shard_cache_hits",
                        run_stats["cache_hits"])

    failed: List[Shard] = []
    with telemetry.span("parallel.profile_corpus", uarch=uarch,
                        jobs=jobs, shards=len(shards),
                        pending=len(pending)) as span:
        if pending and (jobs <= 1 or len(pending) == 1):
            profiler = BasicBlockProfiler(descriptor.build(), config)
            for shard in pending:
                profile = profile_records_detailed(profiler,
                                                   shard.records)
                results[shard.index] = profile
                run_stats["profiled"] += 1
                _store(cache, shard, profile, run_stats)
        elif pending:
            failed = _run_pool(pending, descriptor, config, jobs,
                               shard_timeout, worker_fn, results,
                               run_stats, cache)
            for shard in failed:
                # One serial retry in the parent; a shard that still
                # fails is bucketed, never allowed to poison the run
                # or the cache.
                run_stats["retried"] += 1
                telemetry.count("parallel.worker_retries")
                telemetry.event("parallel.worker_retry",
                                shard=shard.index, digest=shard.digest)
                try:
                    retry = serial_fn or _serial_shard
                    profile = retry(descriptor, config, shard)
                    results[shard.index] = profile
                    run_stats["profiled"] += 1
                    _replicate_profiler_counters(profile)
                    _store(cache, shard, profile, run_stats)
                except Exception as exc:
                    run_stats["failed"] += 1
                    telemetry.count("parallel.worker_failures")
                    telemetry.event("parallel.worker_failure",
                                    shard=shard.index,
                                    error=type(exc).__name__)
                    results[shard.index] = _worker_failure_profile(shard)
        span.annotate(profiled=run_stats["profiled"],
                      cache_hits=run_stats["cache_hits"],
                      failed=run_stats["failed"])

    if stats is not None:
        stats.update(run_stats)
    return merge_profiles(
        [(by_index[index], profile)
         for index, profile in results.items()])


def _serial_shard(descriptor: MachineDescriptor,
                  config: Optional[ProfilerConfig],
                  shard: Shard) -> CorpusProfile:
    from repro.eval.validation import profile_records_detailed
    profiler = BasicBlockProfiler(descriptor.build(), config)
    return profile_records_detailed(profiler, shard.records)


def _store(cache: Optional[ShardCache], shard: Shard,
           profile: CorpusProfile, run_stats: Dict) -> None:
    if cache is not None:
        cache.store(shard, profile)
        run_stats["written"] += 1


def _run_pool(pending: Sequence[Shard],
              descriptor: MachineDescriptor,
              config: Optional[ProfilerConfig], jobs: int,
              shard_timeout: float, worker_fn,
              results: Dict[int, CorpusProfile], run_stats: Dict,
              cache: Optional[ShardCache]) -> List[Shard]:
    """Fan pending shards out to a process pool; return the failures."""
    failed: List[Shard] = []
    hung = False
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(pending)),
                               initializer=_init_worker)
    try:
        futures = [(pool.submit(worker_fn, descriptor, config,
                                shard.index, shard.records), shard)
                   for shard in pending]
        for future, shard in futures:
            try:
                index, profile = future.result(timeout=shard_timeout)
                results[index] = profile
                run_stats["profiled"] += 1
                _replicate_profiler_counters(profile)
                _store(cache, shard, profile, run_stats)
            except Exception as exc:  # TimeoutError, BrokenProcessPool,
                # or whatever the worker raised — all retried serially.
                if isinstance(exc, TimeoutError):
                    hung = True
                    future.cancel()
                failed.append(shard)
                telemetry.event("parallel.shard_error",
                                shard=shard.index,
                                error=type(exc).__name__)
    finally:
        if hung:
            _terminate_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
    return failed
