"""Measurement cache v3: one file per shard, keyed by content digest.

Layout (under ``.cache/``)::

    measured_v3_<tag>_<uarch>_<seed>/
        shard_<digest>.json     # {"version": 3, "digest", "count",
                                #  "throughputs": {offset: cycles},
                                #  "funnel": {...}}

Throughputs are stored by *offset within the shard* rather than by
``block_id``: a shard whose content is unchanged stays valid even when
corpus growth shifted absolute ids, which is what makes re-runs with a
grown corpus incremental — only new or changed shards are profiled.

Every write is atomic (temp file + ``os.replace``), so a run killed
mid-write leaves at worst an orphaned ``*.tmp`` the loader ignores;
it can never leave a half-written ``shard_*.json`` visible.  Loads are
defensive: wrong version, digest mismatch, truncated JSON, or a funnel
that does not account for every block all read as a miss, never as an
exception.

``import_v2`` is the merge-on-load path for the previous monolithic
cache format: a v2 (or v1) file for the same corpus is split into
per-shard entries once, after which the shards behave like natively
written v3 entries.  Per-reason drop attribution survives the split
only when it is unambiguous (a single drop reason); otherwise drops
are lumped under ``unknown_pre_v3_cache``, mirroring how v1 files were
already handled.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional

from repro.parallel.sharding import Shard

# ``CorpusProfile`` is imported lazily (see sharding.py): importing
# ``repro.eval`` here would close an import cycle through the pipeline.

CACHE_VERSION = 3

#: Funnel bucket for drops whose original reason a legacy cache no
#: longer records.
LEGACY_DROP_REASON = "unknown_pre_v3_cache"


class ShardCache:
    """Per-shard measurement cache with atomic writes."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------

    def path_for(self, shard: Shard) -> str:
        return os.path.join(self.directory,
                            f"shard_{shard.digest}.json")

    def __contains__(self, shard: Shard) -> bool:
        return os.path.exists(self.path_for(shard))

    def shard_files(self) -> list:
        return sorted(name for name in os.listdir(self.directory)
                      if name.startswith("shard_")
                      and name.endswith(".json"))

    # ------------------------------------------------------------------

    def load(self, shard: Shard) -> Optional[CorpusProfile]:
        """The shard's cached profile, or ``None`` on any defect."""
        from repro.eval.validation import CorpusProfile
        path = self.path_for(shard)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) \
                or doc.get("version") != CACHE_VERSION \
                or doc.get("digest") != shard.digest \
                or doc.get("count") != len(shard):
            return None
        funnel = doc.get("funnel") or {}
        dropped = funnel.get("dropped") or {}
        if funnel.get("total") != len(shard) or \
                funnel.get("accepted", -1) + sum(dropped.values()) \
                != len(shard):
            return None  # corrupt: funnel does not cover the shard
        offsets = doc.get("throughputs") or {}
        throughputs: Dict[int, float] = {}
        try:
            for offset, value in offsets.items():
                throughputs[shard.records[int(offset)].block_id] = value
        except (IndexError, ValueError):
            return None
        return CorpusProfile(throughputs=throughputs,
                             funnel={"total": funnel["total"],
                                     "accepted": funnel["accepted"],
                                     "dropped": dict(dropped)},
                             info=dict(doc.get("info") or {}))

    def store(self, shard: Shard, profile: CorpusProfile) -> None:
        """Atomically persist one shard's profile."""
        by_offset = {
            offset: profile.throughputs[record.block_id]
            for offset, record in enumerate(shard.records)
            if record.block_id in profile.throughputs
        }
        payload = {"version": CACHE_VERSION,
                   "digest": shard.digest,
                   "count": len(shard),
                   "throughputs": by_offset,
                   "funnel": profile.funnel,
                   "info": profile.info}
        path = self.path_for(shard)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    # ------------------------------------------------------------------

    def import_v2(self, shards: Iterable[Shard],
                  profile: CorpusProfile) -> int:
        """Split a legacy whole-corpus profile into v3 shard entries.

        A legacy file records *which* blocks were dropped (absent from
        ``throughputs``) but only corpus-wide *reason* counts, so the
        reasons are redistributed greedily over the shards' drop slots
        in order.  Per-shard attribution is therefore approximate, but
        the merged funnel — the Table-I view — reproduces the legacy
        breakdown exactly.  Shards already cached natively are left
        alone (their slots consume from the pool blindly, falling back
        to ``unknown_pre_v3_cache`` if the pool runs dry).  Returns
        the number of shards imported.
        """
        from repro.eval.validation import CorpusProfile
        pool = [[reason, count] for reason, count
                in (profile.funnel.get("dropped") or {}).items()]
        imported = 0
        for shard in sorted(shards, key=lambda s: s.index):
            throughputs = {
                record.block_id: profile.throughputs[record.block_id]
                for record in shard.records
                if record.block_id in profile.throughputs
            }
            accepted = len(throughputs)
            missing = len(shard) - accepted
            dropped: Dict[str, int] = {}
            while missing and pool:
                reason, count = pool[0]
                take = min(missing, count)
                dropped[reason] = dropped.get(reason, 0) + take
                missing -= take
                if count == take:
                    pool.pop(0)
                else:
                    pool[0][1] = count - take
            if missing:  # legacy funnel under-counted its drops
                dropped[LEGACY_DROP_REASON] = missing
            if shard in self:
                continue  # consumed its slots; keep the native entry
            self.store(shard, CorpusProfile(
                throughputs=throughputs,
                funnel={"total": len(shard), "accepted": accepted,
                        "dropped": dropped}))
            imported += 1
        return imported
