"""Measurement cache v3: one file per shard, keyed by content digest.

Layout (under ``.cache/``)::

    measured_v3_<tag>_<uarch>_<seed>/
        shard_<digest>.json     # {"version": 3, "digest", "count",
                                #  "throughputs": {offset: cycles},
                                #  "funnel": {...}}

Throughputs are stored by *offset within the shard* rather than by
``block_id``: a shard whose content is unchanged stays valid even when
corpus growth shifted absolute ids, which is what makes re-runs with a
grown corpus incremental — only new or changed shards are profiled.

Every write is atomic (temp file + ``os.replace``), so a run killed
mid-write leaves at worst an orphaned ``*.tmp`` the loader ignores;
it can never leave a half-written ``shard_*.json`` visible.  Orphaned
temps from crashed runs are swept when the cache is opened (a live
writer's temp — its pid is embedded in the name — is left alone).
Loads are defensive: wrong version, digest mismatch, truncated JSON,
or a funnel that does not account for every block all read as a miss,
never as an exception — and the offending file is moved to
``quarantine/`` (rather than left to fail again every run) unless
strict mode promotes the corruption into a
:class:`repro.errors.StrictModeViolation`.

Writes run under the resilience retry policy: a transient ``OSError``
(including the injected ``write_oserror`` chaos point) is retried with
deterministic jittered backoff; persistent failure (e.g. disk full)
degrades to "shard not cached" instead of failing the run.
``store`` returns the CRC-32 of the bytes it wrote so the run journal
(:mod:`repro.resilience.journal`) can verify cache hits on resume.

``import_v2`` is the merge-on-load path for the previous monolithic
cache format: a v2 (or v1) file for the same corpus is split into
per-shard entries once, after which the shards behave like natively
written v3 entries.  Per-reason drop attribution survives the split
only when it is unambiguous (a single drop reason); otherwise drops
are lumped under ``unknown_pre_v3_cache``, mirroring how v1 files were
already handled.
"""

from __future__ import annotations

import errno
import json
import os
import zlib
from typing import Dict, Iterable, Optional

from repro.parallel.sharding import Shard
from repro.resilience import chaos
from repro.resilience import policy as resilience
from repro.telemetry import cachestats
from repro.telemetry import core as telemetry

# ``CorpusProfile`` is imported lazily (see sharding.py): importing
# ``repro.eval`` here would close an import cycle through the pipeline.

CACHE_VERSION = 3

#: Funnel bucket for drops whose original reason a legacy cache no
#: longer records.
LEGACY_DROP_REASON = "unknown_pre_v3_cache"

#: Subdirectory corrupt shard files are moved to instead of raising.
QUARANTINE_DIR = "quarantine"

# Default provider so the unified ``caches`` section always carries a
# ``shard`` row (pure counter read); opening a ShardCache replaces it
# with an instance-bound provider that also reports on-disk size.
cachestats.register_provider(
    "shard", lambda: cachestats.registry_stats("shard"))


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid currently running?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # e.g. EPERM: exists but not ours
    return True


class ShardCache:
    """Per-shard measurement cache with atomic writes."""

    def __init__(self, directory: str,
                 retry: Optional[resilience.RetryPolicy] = None):
        self.directory = directory
        self.retry = retry or resilience.default_retry_policy()
        os.makedirs(directory, exist_ok=True)
        self._sweep_stale_temps()
        # The unified ``caches`` section tracks the most recently
        # opened shard cache (runs open exactly one); hit/miss counts
        # come from the engine's ``cache.shard.*`` counters.
        cachestats.register_provider("shard", self._cache_stats)

    def _cache_stats(self) -> cachestats.CacheStats:
        stats = cachestats.registry_stats("shard")
        try:
            stats.size = len(self.shard_files())
        except OSError:
            pass
        return stats

    # ------------------------------------------------------------------

    def path_for(self, shard: Shard) -> str:
        return os.path.join(self.directory,
                            f"shard_{shard.digest}.json")

    def __contains__(self, shard: Shard) -> bool:
        return os.path.exists(self.path_for(shard))

    def shard_files(self) -> list:
        return sorted(name for name in os.listdir(self.directory)
                      if name.startswith("shard_")
                      and name.endswith(".json"))

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.directory, QUARANTINE_DIR)

    def quarantined_files(self) -> list:
        try:
            return sorted(os.listdir(self.quarantine_dir))
        except OSError:
            return []

    # ------------------------------------------------------------------

    def _sweep_stale_temps(self) -> None:
        """Remove ``*.tmp`` orphans left by prior crashed runs.

        Temp names embed the writing pid (``<file>.<pid>.tmp``); a
        temp whose writer is dead — or whose name does not parse — is
        an orphan from a crash and is deleted.  A live writer's temp
        (another process racing this one) is left for it to finish.
        """
        swept = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(".tmp"):
                continue
            pieces = name.split(".")
            # shard_<digest>.json.<pid>.tmp -> pid is pieces[-2]
            try:
                pid = int(pieces[-2])
            except (IndexError, ValueError):
                pid = None
            if pid is not None and pid != os.getpid() \
                    and _pid_alive(pid):
                continue
            if pid == os.getpid():
                # Our own pid: any temp is a leftover from a previous
                # incarnation of this pid (we have not written yet).
                pass
            try:
                os.unlink(os.path.join(self.directory, name))
                swept += 1
            except OSError:
                pass
        if swept:
            telemetry.count("resilience.stale_temps_swept", swept)
            telemetry.event("resilience.stale_temps_swept",
                            directory=self.directory, count=swept)

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a corrupt file to ``quarantine/`` (or raise in strict)."""
        resilience.quarantine_or_raise(
            f"corrupt shard-cache file {os.path.basename(path)}",
            reason)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        dest = os.path.join(self.quarantine_dir,
                            os.path.basename(path))
        try:
            os.replace(path, dest)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                return
        telemetry.count("resilience.quarantined.cache_files")
        telemetry.count("cache.shard.evictions")
        telemetry.event("resilience.cache_file_quarantined",
                        file=os.path.basename(path), reason=reason)

    # ------------------------------------------------------------------

    def checksum(self, shard: Shard) -> Optional[int]:
        """CRC-32 of the shard file's current bytes (``None`` if absent)."""
        try:
            with open(self.path_for(shard), "rb") as fh:
                return zlib.crc32(fh.read())
        except OSError:
            return None

    def load(self, shard: Shard) -> Optional[CorpusProfile]:
        """The shard's cached profile, or ``None`` on any defect.

        A file that exists but fails validation — truncated JSON,
        garbage, wrong schema, digest mismatch, a funnel that does not
        account for every block — is quarantined so it cannot fail
        again on every future run.
        """
        from repro.eval.validation import CorpusProfile
        path = self.path_for(shard)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError:
            return None  # plain miss
        except ValueError:
            self._quarantine(path, "undecodable JSON")
            return None
        if not isinstance(doc, dict) \
                or doc.get("version") != CACHE_VERSION \
                or doc.get("digest") != shard.digest \
                or doc.get("count") != len(shard):
            self._quarantine(path, "wrong schema or digest")
            return None
        funnel = doc.get("funnel") or {}
        dropped = funnel.get("dropped") or {}
        if funnel.get("total") != len(shard) or \
                funnel.get("accepted", -1) + sum(dropped.values()) \
                != len(shard):
            # corrupt: funnel does not cover the shard
            self._quarantine(path, "funnel does not reconcile")
            return None
        offsets = doc.get("throughputs") or {}
        throughputs: Dict[int, float] = {}
        try:
            for offset, value in offsets.items():
                throughputs[shard.records[int(offset)].block_id] = value
        except (IndexError, ValueError):
            self._quarantine(path, "throughput offsets out of range")
            return None
        return CorpusProfile(throughputs=throughputs,
                             funnel={"total": funnel["total"],
                                     "accepted": funnel["accepted"],
                                     "dropped": dict(dropped)},
                             info=dict(doc.get("info") or {}))

    def store(self, shard: Shard,
              profile: CorpusProfile) -> Optional[int]:
        """Atomically persist one shard's profile.

        Returns the CRC-32 of the bytes written (for the run journal),
        or ``None`` when the write ultimately failed and the run
        degraded to "not cached" (salvage mode; strict mode raises).
        """
        by_offset = {
            offset: profile.throughputs[record.block_id]
            for offset, record in enumerate(shard.records)
            if record.block_id in profile.throughputs
        }
        payload = {"version": CACHE_VERSION,
                   "digest": shard.digest,
                   "count": len(shard),
                   "throughputs": by_offset,
                   "funnel": profile.funnel,
                   "info": profile.info}
        data = json.dumps(payload)
        path = self.path_for(shard)
        tmp = f"{path}.{os.getpid()}.tmp"

        def attempt_write(attempt: int) -> None:
            if attempt == 0 and chaos.fire("write_oserror",
                                           shard.digest):
                raise OSError(errno.EIO,
                              "chaos: transient write error")
            if chaos.fire("disk_full", shard.digest,
                          count=attempt == 0):
                raise OSError(errno.ENOSPC, "chaos: disk full")
            try:
                with open(tmp, "w") as fh:
                    fh.write(data)
                os.replace(tmp, path)
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)

        try:
            self.retry.run(attempt_write, key=shard.digest)
        except OSError as exc:
            telemetry.count("resilience.cache_write_failures")
            telemetry.event("resilience.cache_write_failure",
                            digest=shard.digest,
                            error=type(exc).__name__)
            resilience.quarantine_or_raise(
                f"cache write failed for shard {shard.digest}",
                str(exc))
            return None
        self._maybe_corrupt_after_write(shard, path)
        return zlib.crc32(data.encode())

    @staticmethod
    def _maybe_corrupt_after_write(shard: Shard, path: str) -> None:
        """Chaos points simulating a write that *looked* durable but
        left a truncated or garbage file for the next reader."""
        if chaos.fire("cache_truncate", shard.digest):
            size = os.path.getsize(path)
            with open(path, "r+") as fh:
                fh.truncate(max(1, size // 2))
        elif chaos.fire("cache_garbage", shard.digest):
            with open(path, "w") as fh:
                fh.write("\x00garbage\x7f not json {{{")

    # ------------------------------------------------------------------

    def import_v2(self, shards: Iterable[Shard],
                  profile: CorpusProfile) -> int:
        """Split a legacy whole-corpus profile into v3 shard entries.

        A legacy file records *which* blocks were dropped (absent from
        ``throughputs``) but only corpus-wide *reason* counts, so the
        reasons are redistributed greedily over the shards' drop slots
        in order.  Per-shard attribution is therefore approximate, but
        the merged funnel — the Table-I view — reproduces the legacy
        breakdown exactly.  Shards already cached natively are left
        alone (their slots consume from the pool blindly, falling back
        to ``unknown_pre_v3_cache`` if the pool runs dry).  Returns
        the number of shards imported.
        """
        from repro.eval.validation import CorpusProfile
        pool = [[reason, count] for reason, count
                in (profile.funnel.get("dropped") or {}).items()]
        imported = 0
        for shard in sorted(shards, key=lambda s: s.index):
            throughputs = {
                record.block_id: profile.throughputs[record.block_id]
                for record in shard.records
                if record.block_id in profile.throughputs
            }
            accepted = len(throughputs)
            missing = len(shard) - accepted
            dropped: Dict[str, int] = {}
            while missing and pool:
                reason, count = pool[0]
                take = min(missing, count)
                dropped[reason] = dropped.get(reason, 0) + take
                missing -= take
                if count == take:
                    pool.pop(0)
                else:
                    pool[0][1] = count - take
            if missing:  # legacy funnel under-counted its drops
                dropped[LEGACY_DROP_REASON] = missing
            if shard in self:
                continue  # consumed its slots; keep the native entry
            self.store(shard, CorpusProfile(
                throughputs=throughputs,
                funnel={"total": len(shard), "accepted": accepted,
                        "dropped": dropped}))
            imported += 1
        return imported
