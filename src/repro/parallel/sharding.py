"""Deterministic corpus sharding and order-independent merging.

The parallel engine's safety argument rests on three properties this
module provides and the test suite proves:

* **Partition.**  ``shard_corpus`` splits a corpus into contiguous
  chunks in corpus order — every record lands in exactly one shard, no
  record is duplicated, and concatenating the shards reproduces the
  corpus byte for byte.
* **Stable identity.**  Each shard's ``digest`` is a chained CRC-32
  over its blocks' *texts* (length-prefixed, so concatenation is
  unambiguous).  CRC-32 is process-stable — unlike builtin ``hash()``
  it does not depend on ``PYTHONHASHSEED`` — so workers, the parent,
  and a profiler run next week all agree on which cached shard is
  which.  The digest deliberately excludes ``block_id`` so a shard
  whose *content* is unchanged stays cache-valid even if ids shifted.
* **Canonical merge.**  ``merge_profiles`` reassembles per-shard
  profiles in shard-index order regardless of completion order, so the
  merged profile — throughput insertion order, funnel bucket order,
  every count — is byte-identical to a serial walk of the corpus.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.corpus.dataset import BlockRecord, Corpus

# NOTE: ``repro.eval.validation`` (for ``CorpusProfile``) is imported
# lazily inside the merge functions: ``repro.eval`` imports the
# pipeline, which imports this package — a module-level import here
# would make ``import repro.parallel`` order-dependent.

#: Default number of blocks per shard (``REPRO_SHARD_SIZE`` overrides
#: at the pipeline level).  Small enough that a pool keeps every worker
#: busy at bench scales, large enough that per-shard overhead (pickle,
#: cache file, merge) stays negligible.
DEFAULT_SHARD_SIZE = 32


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a corpus, with a stable content digest."""

    index: int
    records: Tuple[BlockRecord, ...]
    digest: str

    def __len__(self) -> int:
        return len(self.records)

    @property
    def block_ids(self) -> List[int]:
        return [r.block_id for r in self.records]


def shard_digest(records: Sequence[BlockRecord]) -> str:
    """Process-stable content digest of an ordered run of records.

    A chained CRC-32 over length-prefixed block texts.  Never uses
    builtin ``hash()`` (randomised per process by ``PYTHONHASHSEED``),
    so parent and workers always compute the same key.
    """
    crc = 0
    for record in records:
        data = record.block.text().encode()
        crc = zlib.crc32(f"{len(data)}:".encode(), crc)
        crc = zlib.crc32(data, crc)
    return f"{crc:08x}-{len(records)}"


def shard_corpus(corpus: Iterable[BlockRecord],
                 shard_size: int = DEFAULT_SHARD_SIZE) -> List[Shard]:
    """Split a corpus into deterministic contiguous shards.

    The split is a pure function of corpus order and ``shard_size``:
    no randomness, no hashing of ids, so every process derives the
    same shards from the same corpus.
    """
    return list(stream_shards(corpus, shard_size))


def stream_shards(records: Iterable[BlockRecord],
                  shard_size: int = DEFAULT_SHARD_SIZE
                  ) -> Iterator[Shard]:
    """Lazily cut a record stream into the shards ``shard_corpus``
    would produce — same indices, contents and content digests — while
    holding at most one shard's records at a time.

    The generator half of the streamed pipeline: ``shard_corpus`` is a
    ``list(...)`` of this, so batch and streamed sharding cannot
    diverge by construction (and ``tests/corpus/test_streaming.py``
    re-proves it with hypothesis anyway).
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    chunk: List[BlockRecord] = []
    index = 0
    for record in records:
        chunk.append(record)
        if len(chunk) == shard_size:
            frozen = tuple(chunk)
            yield Shard(index=index, records=frozen,
                        digest=shard_digest(frozen))
            chunk = []
            index += 1
    if chunk:
        frozen = tuple(chunk)
        yield Shard(index=index, records=frozen,
                    digest=shard_digest(frozen))


def merge_funnels(funnels: Sequence[Dict]) -> Dict:
    """Sum per-shard funnels; bucket order is first-encounter order."""
    from repro.eval.validation import CorpusProfile
    merged = CorpusProfile.empty_funnel()
    for funnel in funnels:
        merged["total"] += funnel.get("total", 0)
        merged["accepted"] += funnel.get("accepted", 0)
        for reason, count in (funnel.get("dropped") or {}).items():
            merged["dropped"][reason] = \
                merged["dropped"].get(reason, 0) + count
    return merged


class ProfileFolder:
    """Incremental shard-profile merge, one shard at a time.

    The streamed engine's fold stage: shards are :meth:`add`-ed in
    shard-index order as they complete and their per-shard state is
    discarded immediately — only the folded throughputs/funnel/info
    accumulate.  Folding in index order reproduces exactly what
    ``merge_profiles`` computes from the full pair list (throughput
    insertion order, funnel bucket first-encounter order, every
    count), which is why ``merge_profiles`` is itself implemented as a
    fold — batch and streamed merges cannot diverge by construction.
    """

    def __init__(self):
        from repro.eval.validation import CorpusProfile
        self._profile_cls = CorpusProfile
        self._throughputs: Dict[int, float] = {}
        self._funnel = CorpusProfile.empty_funnel()
        self._info: Dict[str, int] = {}
        self.folded = 0

    def add(self, shard: Shard, profile: CorpusProfile) -> None:
        """Fold one shard's profile in (callers supply index order)."""
        for record in shard.records:
            value = profile.throughputs.get(record.block_id)
            if value is not None:
                if record.block_id in self._throughputs:
                    raise ValueError(
                        f"duplicate block id {record.block_id} "
                        f"across shards")
                self._throughputs[record.block_id] = value
        funnel = profile.funnel
        self._funnel["total"] += funnel.get("total", 0)
        self._funnel["accepted"] += funnel.get("accepted", 0)
        for reason, count in (funnel.get("dropped") or {}).items():
            self._funnel["dropped"][reason] = \
                self._funnel["dropped"].get(reason, 0) + count
        for key, value in (profile.info or {}).items():
            self._info[key] = self._info.get(key, 0) + value
        self.folded += 1

    def result(self) -> CorpusProfile:
        return self._profile_cls(throughputs=self._throughputs,
                                 funnel=self._funnel, info=self._info)


def merge_profiles(shard_profiles: Iterable[Tuple[Shard, CorpusProfile]]
                   ) -> CorpusProfile:
    """Merge per-shard profiles into one corpus profile.

    Input order does not matter: shards are reassembled by index, so
    the result is identical whether shards finished in submission
    order, reverse order, or any interleaving — the property the
    hypothesis suite in ``tests/parallel`` exercises.
    """
    folder = ProfileFolder()
    for shard, profile in sorted(shard_profiles,
                                 key=lambda sp: sp[0].index):
        folder.add(shard, profile)
    return folder.result()


def partition_check(corpus: Corpus, shards: Sequence[Shard]) -> None:
    """Raise unless ``shards`` is exactly a partition of ``corpus``."""
    flat = [r for shard in sorted(shards, key=lambda s: s.index)
            for r in shard.records]
    if len(flat) != len(corpus):
        raise ValueError(f"sharding lost records: "
                         f"{len(flat)} != {len(corpus)}")
    for ours, theirs in zip(flat, corpus):
        if ours is not theirs and ours != theirs:
            raise ValueError("sharding reordered records")
