"""The BHive measurement framework (the paper's core contribution).

Quickstart::

    from repro.profiler import profile_block
    result = profile_block("xor %edx, %edx\\ndiv %ecx\\ntest %edx, %edx")
    print(result.throughput)
"""

from repro.profiler.ablation import (STAGE_LABELS, STAGES, TABLE1_LABELS,
                                     TABLE1_STAGES, AblationStage,
                                     config_for_stage, relaxed)
from repro.profiler.environment import Environment, EnvironmentConfig
from repro.profiler.filters import AcceptancePolicy
from repro.profiler.harness import (BasicBlockProfiler, ProfilerConfig,
                                    profile_block)
from repro.profiler.mapping import MappingOutcome, map_pages
from repro.profiler.result import (FailureReason, Measurement,
                                   ProfileResult)
from repro.profiler.unroll import (UnrollPlan, naive_plan,
                                   two_factor_plan)

__all__ = [
    "BasicBlockProfiler", "ProfilerConfig", "profile_block",
    "Environment", "EnvironmentConfig", "AcceptancePolicy",
    "MappingOutcome", "map_pages",
    "FailureReason", "Measurement", "ProfileResult",
    "UnrollPlan", "naive_plan", "two_factor_plan",
    "AblationStage", "config_for_stage", "relaxed",
    "STAGES", "STAGE_LABELS", "TABLE1_STAGES", "TABLE1_LABELS",
]
