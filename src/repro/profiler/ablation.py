"""Ablation configurations for Tables I and II.

Each stage adds one of the paper's measurement techniques:

=====================  =============================================
Stage                  Technique added
=====================  =============================================
``NONE``               nothing: Agner-Fog-style unrolled timing
``PAGE_MAPPING``       map faulting pages (one frame per page)
``SINGLE_PHYS_PAGE``   map every page to a *single* physical frame
``FTZ``                disable gradual underflow via MXCSR
``SMALL_UNROLL``       two-unroll-factor derivation (full technique)
=====================  =============================================

Table I aggregates the fraction of a corpus successfully profiled at
stages NONE / SINGLE_PHYS_PAGE / SMALL_UNROLL; Table II reports the raw
measured throughput of one large TensorFlow block at every stage (with
invariant enforcement off, so the *wrong* numbers are visible).
"""

from __future__ import annotations

import enum
from dataclasses import replace
from typing import Tuple

from repro.profiler.environment import EnvironmentConfig
from repro.profiler.filters import AcceptancePolicy
from repro.profiler.harness import ProfilerConfig


class AblationStage(enum.Enum):
    NONE = "none"
    PAGE_MAPPING = "page_mapping"
    SINGLE_PHYS_PAGE = "single_phys_page"
    FTZ = "ftz"
    SMALL_UNROLL = "small_unroll"


#: Stage order used by the benches.
STAGES: Tuple[AblationStage, ...] = tuple(AblationStage)

#: Human-readable labels matching the paper's table rows.
STAGE_LABELS = {
    AblationStage.NONE: "None",
    AblationStage.PAGE_MAPPING: "Page mapping",
    AblationStage.SINGLE_PHYS_PAGE: "Single physical page",
    AblationStage.FTZ: "Disabling gradual underflow",
    AblationStage.SMALL_UNROLL: "Using smaller unroll factor",
}


def config_for_stage(stage: AblationStage,
                     enforce_invariants: bool = True) -> ProfilerConfig:
    """Build the profiler configuration for one ablation stage."""
    acceptance = AcceptancePolicy(
        enforce_invariants=enforce_invariants,
        reject_misaligned=enforce_invariants)
    if stage is AblationStage.NONE:
        return ProfilerConfig(
            environment=EnvironmentConfig(ftz=False),
            acceptance=acceptance,
            unroll_strategy="naive",
            mapping_enabled=False)
    if stage is AblationStage.PAGE_MAPPING:
        return ProfilerConfig(
            environment=EnvironmentConfig(single_physical_page=False,
                                          ftz=False),
            acceptance=acceptance,
            unroll_strategy="naive")
    if stage is AblationStage.SINGLE_PHYS_PAGE:
        return ProfilerConfig(
            environment=EnvironmentConfig(ftz=False),
            acceptance=acceptance,
            unroll_strategy="naive")
    if stage is AblationStage.FTZ:
        return ProfilerConfig(
            environment=EnvironmentConfig(ftz=True),
            acceptance=acceptance,
            unroll_strategy="naive")
    if stage is AblationStage.SMALL_UNROLL:
        return ProfilerConfig(
            environment=EnvironmentConfig(ftz=True),
            acceptance=acceptance,
            unroll_strategy="two_factor")
    raise ValueError(stage)


#: The three stages reported in Table I.
TABLE1_STAGES: Tuple[AblationStage, ...] = (
    AblationStage.NONE,
    AblationStage.SINGLE_PHYS_PAGE,
    AblationStage.SMALL_UNROLL,
)

TABLE1_LABELS = {
    AblationStage.NONE: "None",
    AblationStage.SINGLE_PHYS_PAGE: "Mapping all accessed pages",
    AblationStage.SMALL_UNROLL: "More intelligent unrolling",
}


def relaxed(config: ProfilerConfig) -> ProfilerConfig:
    """Copy of ``config`` with invariant enforcement off (Table II)."""
    return replace(config,
                   acceptance=AcceptancePolicy(enforce_invariants=False,
                                               reject_misaligned=False))
