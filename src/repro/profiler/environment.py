"""Measurement environment setup (§III-D "Initialization").

Before the mapping run the profiler unmaps *all* pages so that every
access the block makes is observed as a fault and redirected to the
chosen physical page — nothing leaks to a stale libc mapping.  The
physical page and all general-purpose registers are filled with the
"moderately sized" constant ``0x12345600`` so indirectly-loaded
pointers are themselves valid, mappable addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.runtime.memory import (PhysicalPage, VirtualMemory, page_of)
from repro.runtime.state import INIT_CONSTANT, MachineState


@dataclass(frozen=True)
class EnvironmentConfig:
    """Knobs of the measurement environment.

    ``single_physical_page`` is the paper's headline trick: one frame
    backs every mapped virtual page, keeping the data working set
    within one page → guaranteed L1D hits on a VIPT cache.  Turning it
    off (one frame per virtual page) reproduces the 956-miss row of
    Table II.  ``ftz`` disables gradual underflow via MXCSR.
    """

    init_constant: int = INIT_CONSTANT
    single_physical_page: bool = True
    ftz: bool = True


class Environment:
    """Owns the simulated process state and its page mappings."""

    def __init__(self, config: Optional[EnvironmentConfig] = None):
        self.config = config if config is not None else EnvironmentConfig()
        self.state = MachineState()
        self.memory = VirtualMemory()
        self._shared_page: Optional[PhysicalPage] = None
        self._per_page: Dict[int, PhysicalPage] = {}

    def reset(self) -> None:
        """Unmap everything and forget allocated frames."""
        self.memory.unmap_all()
        self._shared_page = None
        self._per_page.clear()
        self.reinitialize()

    def reinitialize(self) -> None:
        """Restore registers/flags/MXCSR and refill mapped frames.

        Called before *every* execution so the mapping run and the
        measurement run compute identical address traces (Fig. 2).
        """
        self.state.initialize(self.config.init_constant,
                              ftz=self.config.ftz)
        for frame in self.memory.physical_pages:
            frame.fill(self.config.init_constant)

    def _frame_for(self, vpage: int) -> PhysicalPage:
        if self.config.single_physical_page:
            if self._shared_page is None:
                self._shared_page = self._new_frame()
            return self._shared_page
        frame = self._per_page.get(vpage)
        if frame is None:
            frame = self._new_frame()
            self._per_page[vpage] = frame
        return frame

    def _new_frame(self) -> PhysicalPage:
        frame = PhysicalPage()
        frame.fill(self.config.init_constant)
        return frame

    def map_faulting_address(self, address: int) -> None:
        """Fig. 2's ``mmapToChosenPhysPage``: map the faulting page."""
        vpage = page_of(address)
        self.memory.map_page(vpage, self._frame_for(vpage))

    @property
    def pages_mapped(self) -> int:
        return len(self.memory.mapped_pages)
