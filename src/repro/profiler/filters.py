"""Invariant enforcement and measurement acceptance (§III-C, §III-D).

Each unrolled block is timed 16 times; a measurement is accepted only
if at least 8 runs are *clean* (no L1 data/instruction miss, no
context switch) **and** identical.  Blocks with any line-crossing
access are dropped via the ``MISALIGNED_MEM_REFERENCE`` counter, and
subnormal traffic is neutralised by MXCSR FTZ at environment level.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.profiler.result import FailureReason
from repro.uarch.counters import CounterSample

#: §III-C: "timed 16 times by default".
DEFAULT_REPS = 16
#: §III-C: "at least 8 clean, identical timings".
DEFAULT_REQUIRED_IDENTICAL = 8


@dataclass(frozen=True)
class AcceptancePolicy:
    """How raw counter samples become an accepted cycle count."""

    reps: int = DEFAULT_REPS
    required_identical: int = DEFAULT_REQUIRED_IDENTICAL
    #: Enforce the §III-C invariants.  The per-block ablation study
    #: (Table II) reports raw throughput with enforcement off.
    enforce_invariants: bool = True
    #: Drop blocks with line-crossing accesses (§III-D filter).
    reject_misaligned: bool = True

    def accept(self, samples: Sequence[CounterSample]
               ) -> Tuple[Optional[int], Optional[FailureReason], int]:
        """Returns (accepted cycles, failure reason, clean run count)."""
        clean = [s for s in samples if s.is_clean]
        if self.reject_misaligned and samples \
                and samples[0].misaligned_mem_refs > 0:
            return None, FailureReason.MISALIGNED, len(clean)
        if not self.enforce_invariants:
            # Ablation mode: report the most common timing regardless.
            counts = Counter(s.cycles for s in samples)
            return counts.most_common(1)[0][0], None, len(clean)
        if not clean:
            worst = samples[0]
            reason = self._violation_reason(worst)
            return None, reason, 0
        counts = Counter(s.cycles for s in clean)
        cycles, occurrences = counts.most_common(1)[0]
        if occurrences < self.required_identical:
            return None, FailureReason.UNSTABLE, len(clean)
        return cycles, None, len(clean)

    @staticmethod
    def _violation_reason(sample: CounterSample) -> FailureReason:
        if sample.l1d_read_misses or sample.l1d_write_misses:
            return FailureReason.L1D_MISS
        if sample.l1i_misses:
            return FailureReason.L1I_MISS
        return FailureReason.UNSTABLE
