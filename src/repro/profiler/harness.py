"""Top-level profiling harness.

:class:`BasicBlockProfiler` wires together the environment, the
monitor/measure mapping loop, unroll planning, the machine's counter
interface, and invariant enforcement — the full pipeline the paper
uses to profile 2M+ basic blocks without user intervention.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from repro.errors import (ArithmeticFault, ChaosFault, MemoryFault,
                          StepBudgetExceeded,
                          UnsupportedInstructionError)
from repro.resilience import chaos
from repro.resilience import policy as resilience
from repro.telemetry import cachestats
from repro.telemetry import core as telemetry
from repro.isa.instruction import BasicBlock
from repro.isa.parser import parse_block
from repro.profiler.environment import Environment, EnvironmentConfig
from repro.profiler.filters import AcceptancePolicy
from repro.profiler.mapping import DEFAULT_MAX_FAULTS, map_pages
from repro.profiler.result import (FailureReason, Measurement,
                                   ProfileResult)
from repro.profiler.unroll import (BASE_FACTOR, NAIVE_UNROLL, UnrollPlan,
                                   naive_plan, two_factor_plan)
from repro.runtime import blockplan
from repro.runtime.executor import Executor
from repro.simcore import config as simcore
from repro.uarch.machine import Machine


@dataclass(frozen=True)
class ProfilerConfig:
    """Everything that varies between profiling modes.

    The defaults are the paper's full technique: page mapping onto a
    single physical page, FTZ enabled, two-unroll-factor derivation,
    invariants enforced.  The ablation presets in
    :mod:`repro.profiler.ablation` disable pieces selectively.
    """

    environment: EnvironmentConfig = field(
        default_factory=EnvironmentConfig)
    acceptance: AcceptancePolicy = field(default_factory=AcceptancePolicy)
    unroll_strategy: str = "two_factor"  # or "naive"
    naive_unroll: int = NAIVE_UNROLL
    mapping_enabled: bool = True
    max_faults: int = DEFAULT_MAX_FAULTS
    #: Target small unroll factor of the two-factor plan (the large
    #: one is twice this, capacity permitting).  The benches raise it
    #: to the paper's ~100/200.
    base_factor: int = BASE_FACTOR

    #: Recognised ``unroll_strategy`` values.
    STRATEGIES = ("two_factor", "naive")

    def plan_for(self, block: BasicBlock,
                 icache_bytes: int) -> UnrollPlan:
        if self.unroll_strategy == "two_factor":
            return two_factor_plan(block, icache_bytes=icache_bytes,
                                   base_factor=self.base_factor)
        if self.unroll_strategy == "naive":
            return naive_plan(self.naive_unroll)
        raise ValueError(f"unknown strategy {self.unroll_strategy!r}")


class BasicBlockProfiler:
    """Profiles arbitrary basic blocks on one simulated machine."""

    def __init__(self, machine: Machine,
                 config: Optional[ProfilerConfig] = None):
        self.machine = machine
        self.config = config if config is not None else ProfilerConfig()
        #: Corpus-level dedup: canonical block text -> finished result.
        #: Exact because a result is a pure function of (text, machine,
        #: config) — even the simulated noise is seeded from the text.
        self._memo: dict = {}
        #: Most recent block's environment, kept so the page-cache
        #: stats it accumulated can be drained after the block.
        self._last_env: Optional[Environment] = None
        #: When a lane representative is being profiled,
        #: ``repro.profiler.lanebatch`` installs a ``LaneCapture``
        #: here and ``_profile_fresh`` records the mapping witness
        #: and per-factor runs into it.  ``None`` = zero overhead.
        self._lane_capture = None
        global _LAST_PROFILER
        _LAST_PROFILER = weakref.ref(self)

    # ------------------------------------------------------------------

    def profile(self, block: Union[BasicBlock, str]) -> ProfileResult:
        """Profile one basic block; never raises on bad blocks."""
        if not telemetry.is_enabled():
            return self._profile_impl(block)
        start = time.perf_counter()
        result = self._profile_impl(block)
        self._record(result, (time.perf_counter() - start) * 1000.0)
        self._drain_page_stats()
        return result

    def _drain_page_stats(self) -> None:
        """Fold the block's page-cache stats into ``cache.page.*``.

        The hot paths in :class:`repro.runtime.memory.VirtualMemory`
        bump plain ints; this drains-and-zeroes them once per block so
        the unified ``caches`` section sees them, without the memory
        fast path ever touching the telemetry hub.  Only called while
        telemetry is enabled; a dedup hit re-drains an already-zeroed
        environment, which is a no-op.
        """
        env = self._last_env
        if env is None:
            return
        memory = env.memory
        if memory.stat_hits:
            telemetry.count("cache.page.hits", memory.stat_hits)
            memory.stat_hits = 0
        if memory.stat_misses:
            telemetry.count("cache.page.misses", memory.stat_misses)
            memory.stat_misses = 0
        if memory.stat_evictions:
            telemetry.count("cache.page.evictions",
                            memory.stat_evictions)
            memory.stat_evictions = 0

    def _record(self, result: ProfileResult, elapsed_ms: float) -> None:
        """Feed the metrics registry (telemetry enabled only)."""
        telemetry.count("profiler.blocks_total")
        telemetry.observe("profiler.block_latency_ms", elapsed_ms)
        if result.ok:
            telemetry.count("profiler.blocks_accepted")
        else:
            telemetry.count(f"profiler.failure.{result.failure.value}")
            if result.failure is FailureReason.QUARANTINED:
                telemetry.count("resilience.quarantined.blocks")
        if result.num_faults:
            telemetry.count("profiler.faults_intercepted",
                            result.num_faults)
        if result.pages_mapped:
            telemetry.count("profiler.pages_mapped", result.pages_mapped)
        if result.subnormal_events:
            telemetry.count("profiler.subnormal_events",
                            result.subnormal_events)
        if result.extra.get("fastpath_extrapolated"):
            telemetry.count("profiler.fastpath_extrapolated")
        if result.extra.get("blockplan_compiled"):
            telemetry.count("profiler.blockplan_compiled")
        if result.extra.get("chaos_block_poison"):
            telemetry.count("profiler.chaos_block_poison")
        if result.extra.get("lanes_vectorized"):
            telemetry.count("profiler.lanes_vectorized")
        if result.extra.get("triage_revalidated"):
            telemetry.count("profiler.triage_revalidated")
        if result.extra.get("step_budget_exceeded"):
            telemetry.count("profiler.step_budget_exceeded")

    def _profile_impl(self, block: Union[BasicBlock, str]
                      ) -> ProfileResult:
        if isinstance(block, str):
            block = parse_block(block)
        text = block.text()
        if not simcore.enabled():
            return self._profile_guarded(block, text)
        result = self._memo.get(text)
        if result is None:
            result = self._profile_guarded(block, text)
            self._memo[text] = result
            if telemetry.is_enabled():
                telemetry.count("cache.dedup.misses")
        elif telemetry.is_enabled():
            telemetry.count("cache.dedup.hits")
        return result

    def _profile_guarded(self, block: BasicBlock,
                         text: str) -> ProfileResult:
        """Quarantine barrier: one hostile block never kills the run.

        Known failure shapes (faults, unsupported instructions) are
        handled inside ``_profile_fresh`` and become their own funnel
        buckets.  Anything that still escapes — an injected chaos
        fault, the executor's step-budget watchdog, or a genuine bug
        surfacing on one pathological block — is degraded into the
        ``quarantined`` bucket here (or re-raised under ``--strict``).

        Configuration errors are not block failures: they raise before
        the guard so a misconfigured run fails loudly, not one
        quarantine per block.
        """
        if self.config.unroll_strategy not in \
                ProfilerConfig.STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.config.unroll_strategy!r}")
        try:
            return self._profile_fresh(block, text)
        except Exception as exc:
            return self._quarantined_result(text, exc)

    def _quarantined_result(self, text: str,
                            exc: Exception) -> ProfileResult:
        resilience.quarantine_or_raise(
            f"block quarantined ({type(exc).__name__})", str(exc))
        extra: dict = {}
        if isinstance(exc, ChaosFault):
            # Rides the info plumbing (result.extra -> CorpusProfile
            # .info -> shard cache -> merge) so injections that fired
            # inside pool workers stay visible to the parent's report.
            extra["chaos_block_poison"] = 1.0
        if isinstance(exc, StepBudgetExceeded):
            extra["step_budget_exceeded"] = 1.0
        telemetry.event("resilience.block_quarantined",
                        reason=type(exc).__name__,
                        detail=str(exc)[:200])
        return ProfileResult(
            text, self.machine.name,
            failure=FailureReason.QUARANTINED,
            detail=f"{type(exc).__name__}: {exc}"[:200],
            extra=extra)

    def _profile_fresh(self, block: BasicBlock,
                       text: str) -> ProfileResult:
        uarch = self.machine.name
        chaos.poison(text)

        if not self.machine.supports(block):
            return ProfileResult(text, uarch,
                                 failure=FailureReason.UNSUPPORTED_ISA)
        if not block.is_supported:
            return ProfileResult(text, uarch,
                                 failure=FailureReason.UNSUPPORTED)

        plan = self.config.plan_for(
            block, icache_bytes=self.machine.desc.l1i.size)
        env = Environment(self.config.environment)
        self._last_env = env
        env.reset()

        mapping = map_pages(env, block, unroll=plan.max_factor,
                            max_faults=self.config.max_faults,
                            enable_mapping=self.config.mapping_enabled)
        if self._lane_capture is not None \
                and mapping.trace is not None:
            # Signature-periodicity witness of the mapping run, taken
            # *before* Machine.run can lazily stamp event periodicity
            # onto the same trace — the lane runner predicts exactly
            # this (see repro.profiler.lanebatch).
            self._lane_capture.witness = \
                (mapping.trace.steady_from, mapping.trace.period) \
                if mapping.trace.period else None
        if not mapping.success:
            return ProfileResult(text, uarch, failure=mapping.failure,
                                 num_faults=mapping.num_faults,
                                 pages_mapped=mapping.pages_mapped,
                                 detail=mapping.detail)

        # Fast path: the mapping run's trace *is* the measurement
        # trace (re-initialisation makes every execution identical),
        # and each smaller factor's trace is its prefix — so the two
        # per-factor functional re-executions are skipped entirely.
        reuse = simcore.enabled() and mapping.trace is not None \
            and mapping.trace.unroll == plan.max_factor
        executor = None if reuse else Executor(env.state, env.memory)
        measurements: List[Measurement] = []
        accepted_cycles: List[int] = []
        subnormal_events = 0
        extrapolated = False
        #: Results already produced by a combined two-factor run,
        #: keyed by unroll factor.
        pending: dict = {}
        combine = reuse and len(plan.factors) == 2 \
            and plan.factors[0] < plan.factors[1] == plan.max_factor
        for unroll in plan.factors:
            try:
                if unroll in pending:
                    trace = mapping.trace
                    run = pending.pop(unroll)
                elif combine and unroll == plan.factors[0]:
                    # Combined two-factor run: one simulation of the
                    # large factor with a checkpoint at the small one.
                    # When the machine cannot certify the checkpoint
                    # it still returns a valid large-factor result —
                    # keep it and time the small factor separately.
                    trace = mapping.trace.prefix(unroll)
                    big = self.machine.run(
                        block, plan.max_factor, mapping.trace,
                        env.memory, reps=self.config.acceptance.reps,
                        checkpoint_unroll=unroll)
                    pending[plan.max_factor] = big
                    if self._lane_capture is not None:
                        # Captured at creation: if the small factor
                        # fails acceptance the pending entry is never
                        # popped, but lane clones may still pass it
                        # and need the large factor to replay.
                        self._lane_capture.runs[plan.max_factor] = big
                    if big.checkpoint is not None:
                        run = big.checkpoint
                    else:
                        run = self.machine.run(
                            block, unroll, trace, env.memory,
                            reps=self.config.acceptance.reps)
                elif reuse:
                    trace = mapping.trace \
                        if unroll == plan.max_factor \
                        else mapping.trace.prefix(unroll)
                    run = self.machine.run(block, unroll, trace,
                                           env.memory,
                                           reps=self.config.acceptance
                                           .reps)
                else:
                    env.reinitialize()
                    trace = executor.execute_block(block, unroll=unroll)
                    run = self.machine.run(block, unroll, trace,
                                           env.memory,
                                           reps=self.config.acceptance
                                           .reps)
                subnormal_events += trace.subnormal_count
            except MemoryFault as fault:
                return ProfileResult(text, uarch,
                                     failure=FailureReason.SEGFAULT,
                                     detail=f"{fault.address:#x}")
            except ArithmeticFault:
                return ProfileResult(text, uarch,
                                     failure=FailureReason.SIGFPE)
            except UnsupportedInstructionError as exc:
                return ProfileResult(text, uarch,
                                     failure=FailureReason.UNSUPPORTED,
                                     detail=str(exc))
            if self._lane_capture is not None:
                self._lane_capture.runs[unroll] = run
            if run.fastpath.get("extrapolated"):
                extrapolated = True
            cycles, failure, clean = \
                self.config.acceptance.accept(run.samples)
            base = run.samples[0]
            if failure is not None:
                return ProfileResult(
                    text, uarch, failure=failure,
                    num_faults=mapping.num_faults,
                    pages_mapped=env.pages_mapped,
                    measurements=tuple(measurements),
                    detail=f"unroll={unroll}")
            measurements.append(Measurement(
                unroll=unroll, cycles=cycles, clean_runs=clean,
                total_runs=len(run.samples),
                l1d_read_misses=base.l1d_read_misses,
                l1d_write_misses=base.l1d_write_misses,
                l1i_misses=base.l1i_misses,
                misaligned_refs=base.misaligned_mem_refs))
            accepted_cycles.append(cycles)

        throughput = plan.derive_throughput(tuple(accepted_cycles))
        # ``extra`` is informational only (surfaced as the run
        # report's ``fastpath_extrapolated`` / ``blockplan_compiled``
        # buckets) — it never feeds the funnel, so accepted/dropped
        # totals stay byte-identical with either switch off.
        extra = {"fastpath_extrapolated": 1.0} if extrapolated else {}
        if blockplan.enabled():
            extra["blockplan_compiled"] = 1.0
        return ProfileResult(
            text, uarch,
            throughput=max(throughput, 0.0),
            measurements=tuple(measurements),
            pages_mapped=env.pages_mapped,
            num_faults=mapping.num_faults,
            subnormal_events=subnormal_events,
            extra=extra)

    # ------------------------------------------------------------------

    def profile_many(self, blocks: Iterable[Union[BasicBlock, str]]
                     ) -> List[ProfileResult]:
        """Profile a corpus; order of results matches the input.

        When batch lanes are active (``repro.runtime.lanes``), a
        pre-pass seeds the dedup memo with certified lane-clone
        results; the scalar loop below is unchanged either way and
        simply finds those results as memo hits.  When triage is
        active (``repro.triage``, opt-in), an earlier pre-pass seeds
        the memo with revalidated cached measurements — blocks it
        cannot vouch for fall through to lanes and the scalar loop
        unchanged — and freshly measured blocks are journaled after
        the loop for future revalidation.
        """
        from repro import triage
        from repro.profiler import lanebatch
        with telemetry.span("profiler.profile_many",
                            uarch=self.machine.name) as sp:
            items = [parse_block(b) if isinstance(b, str) else b
                     for b in blocks]
            triage.prepare_triage(self, items)
            lanebatch.prepare_lanes(self, items)
            results = [self.profile(block) for block in items]
            triage.absorb_results(self, items, results)
            sp.annotate(blocks=len(results),
                        accepted=sum(1 for r in results if r.ok),
                        fastpath_extrapolated=sum(
                            1 for r in results
                            if r.extra.get("fastpath_extrapolated")),
                        blockplan_compiled=sum(
                            1 for r in results
                            if r.extra.get("blockplan_compiled")),
                        lanes_vectorized=sum(
                            1 for r in results
                            if r.extra.get("lanes_vectorized")),
                        triage_revalidated=sum(
                            1 for r in results
                            if r.extra.get("triage_revalidated")))
        return results


#: Weak reference to the most recently constructed profiler, so the
#: dedup-memo stats provider can report the live memo's size without
#: keeping profilers alive.
_LAST_PROFILER: Optional[weakref.ref] = None


def _dedup_cache_stats() -> cachestats.CacheStats:
    """Unified-telemetry provider for the corpus dedup memo."""
    stats = cachestats.registry_stats("dedup")
    profiler = _LAST_PROFILER() if _LAST_PROFILER is not None else None
    if profiler is not None:
        stats.size = len(profiler._memo)
    return stats


cachestats.register_provider("dedup", _dedup_cache_stats)


def profile_block(block: Union[BasicBlock, str],
                  uarch: str = "haswell",
                  config: Optional[ProfilerConfig] = None,
                  seed: int = 0) -> ProfileResult:
    """One-shot convenience: profile a block on a fresh machine."""
    return BasicBlockProfiler(Machine(uarch, seed=seed), config) \
        .profile(block)
