"""Lane formation and certified clone replay for ``profile_many``.

This is the profiler half of batch-lane vectorization
(:mod:`repro.runtime.lanes` is the runtime half).  Before
``profile_many`` walks a corpus with the unchanged scalar loop, a
pre-pass groups shape-identical blocks into lanes, runs each lane in
numpy lockstep, and — when the lane *representative*'s scalar profile
confirms every prediction of that lockstep run (the cross-check) —
replays the representative's measurement schedule for each surviving
clone with the clone's own seeded noise stream.  Replayed results are
pre-seeded into the profiler's dedup memo; the scalar loop then finds
them exactly where a duplicate block's result would sit.

Byte-identity is structural, not aspirational:

* The lockstep run certifies that every clone computes the same
  address stream, fault sequence, page set, and signature-periodicity
  witness as the representative — so the representative's ``RunResult``
  (schedule cycles + base counter sample) is *the* scalar outcome for
  each clone as well.
* Clone noise is re-drawn from ``Machine._rng(clone_block, unroll)``
  exactly as ``Machine.run`` would, so samples, acceptance and
  throughput match a scalar run bit for bit.
* Any mismatch between prediction and the representative's scalar
  profile — or any block the lane evacuates — simply leaves the memo
  unseeded: the scalar loop profiles it from scratch.  Lanes can only
  fall back, never alter bytes.

Evacuation rules (documented in docs/performance.md): chaos
``block_poison`` targets never enter a lane; divergent effective
addresses, divergent signature periods, and count-zero disagreement on
memory-destination shifts evacuate the divergent members; step-budget
trips and lanes dissolved down to the representative give up entirely.

The informational ``lanes_vectorized`` bucket (``ProfileResult.extra``
→ ``CorpusProfile.info``) mirrors ``fastpath_extrapolated``: it
reports lane coverage and never feeds the accept/drop funnel.  The
dedup-cache hit/miss counters do skew between lanes on and off (a
pre-seeded clone registers as a memo hit); that skew is
observability-only and deliberately outside the differential payload.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import BasicBlock
from repro.profiler.result import FailureReason, Measurement, \
    ProfileResult
from repro.resilience import chaos
from repro.runtime import lanes
from repro.simcore import config as simcore
from repro.telemetry import core as telemetry

#: Representative failures that contradict a "this lane ran clean"
#: certificate.  Acceptance failures (unstable timing, miss budgets)
#: are *not* here: they depend on per-block noise and are re-derived
#: per clone during replay.
_CERT_BREAKERS = {
    FailureReason.QUARANTINED, FailureReason.SEGFAULT,
    FailureReason.SIGFPE, FailureReason.UNSUPPORTED,
    FailureReason.UNSUPPORTED_ISA, FailureReason.INVALID_ADDRESS,
    FailureReason.TOO_MANY_FAULTS,
}

_LANE_FAILURES = {
    "invalid_address": FailureReason.INVALID_ADDRESS,
    "too_many_faults": FailureReason.TOO_MANY_FAULTS,
}


@dataclass
class LaneCapture:
    """What the representative's scalar profile exposes for replay.

    Installed as ``profiler._lane_capture`` around the
    representative's ``_profile_guarded`` call; ``_profile_fresh``
    records the mapping-run witness and each factor's ``RunResult``
    into it (and is a strict no-op when no capture is installed).
    """

    #: Signature-periodicity outcome of the mapping run,
    #: ``(steady_from, period)`` or ``None`` — captured *before*
    #: ``Machine.run`` can lazily stamp event periodicity.
    witness: Optional[Tuple[int, int]] = None
    #: unroll factor -> RunResult for every factor the scalar loop
    #: simulated (including combined-run checkpoints).
    runs: Dict[int, object] = field(default_factory=dict)


def batching_active(profiler) -> bool:
    """Can lanes run at all under this profiler's configuration?

    Lanes ride the dedup memo (simcore) and the certified single-page
    mapping semantics; any configuration outside that envelope simply
    profiles scalar.
    """
    return (lanes.enabled()
            and lanes.lane_width() >= 2
            and simcore.enabled()
            and profiler.config.mapping_enabled
            and profiler.config.environment.single_physical_page)


def form_groups(blocks: Sequence[BasicBlock],
                texts: Optional[Sequence[str]] = None
                ) -> "Dict[str, List[int]]":
    """Group block indices by lane fingerprint, first-appearance order.

    A pure function of the blocks' fingerprints: permuting the input
    permutes member order within groups but never their partition,
    and no step involves ``hash()`` — the property tests pin both.
    Only the first occurrence of each distinct text joins a group
    (later duplicates are dedup-memo hits in the scalar loop anyway);
    lane-ineligible blocks (``fingerprint`` → ``None``) are left out.
    """
    if texts is None:
        texts = [block.text() for block in blocks]
    groups: "Dict[str, List[int]]" = {}
    seen: set = set()
    for i, block in enumerate(blocks):
        if texts[i] in seen:
            continue
        seen.add(texts[i])
        key = lanes.fingerprint(block)
        if key is None:
            continue
        groups.setdefault(key, []).append(i)
    return groups


def prepare_lanes(profiler, items: Sequence[BasicBlock]) -> None:
    """Pre-seed ``profiler._memo`` with certified lane-clone results.

    Called by ``profile_many`` before its scalar loop.  Every block a
    lane cannot vouch for is simply not seeded — evacuation *is* the
    absence of a memo entry.
    """
    if not batching_active(profiler):
        return
    texts = [block.text() for block in items]
    width = lanes.lane_width()
    for indices in form_groups(items, texts).values():
        fresh = [i for i in indices
                 if texts[i] not in profiler._memo
                 and not chaos.should_fire("block_poison", texts[i])]
        for start in range(0, len(fresh), width):
            chunk = fresh[start:start + width]
            if len(chunk) < 2:
                continue
            _run_lane(profiler,
                      [items[i] for i in chunk],
                      [texts[i] for i in chunk])


def _count(name: str, value: int = 1) -> None:
    if telemetry.is_enabled():
        telemetry.count(name, value)


def _run_lane(profiler, blocks: List[BasicBlock],
              texts: List[str]) -> None:
    """Certify one lane and replay its survivors into the memo."""
    plan = profiler.config.plan_for(
        blocks[0], icache_bytes=profiler.machine.desc.l1i.size)
    _count("lanes.formed")
    _count("lanes.members", len(texts))
    try:
        program = lanes.program_for(blocks, texts)
        outcome = lanes.certify(
            program, unroll=plan.max_factor,
            max_faults=profiler.config.max_faults,
            init_constant=profiler.config.environment.init_constant)
    except lanes.LaneGiveUp:
        _count("lanes.evacuated", len(texts))
        return
    except Exception:
        # A lane-runner defect must degrade to the scalar path, not
        # take the corpus down: nothing seeded, everything scalar.
        _count("lanes.evacuated", len(texts))
        _count("lanes.runner_error")
        return
    evacuated = sum(outcome.evacuated.values())
    if evacuated:
        _count("lanes.evacuated", evacuated)

    # The representative always pays the full scalar price — its
    # profile is both the cross-check oracle and the replay template.
    capture = LaneCapture()
    profiler._lane_capture = capture
    try:
        rep_result = profiler._profile_guarded(blocks[0], texts[0])
    finally:
        profiler._lane_capture = None
    if telemetry.is_enabled():
        profiler._drain_page_stats()
    profiler._memo[texts[0]] = rep_result

    if not _crosscheck(rep_result, capture, outcome):
        _count("lanes.crosscheck_failed")
        return

    rep_result.extra["lanes_vectorized"] = 1.0
    for i in range(1, len(texts)):
        if not outcome.survivors[i]:
            continue
        if outcome.failure is not None:
            # Mapping-level failure (invalid address / fault budget):
            # the certificate says every member faults identically,
            # down to the reported address in ``detail``.
            clone: Optional[ProfileResult] = ProfileResult(
                texts[i], profiler.machine.name,
                failure=rep_result.failure,
                num_faults=rep_result.num_faults,
                pages_mapped=rep_result.pages_mapped,
                detail=rep_result.detail)
        else:
            clone = _replay_clone(profiler, plan, blocks[i],
                                  texts[i], rep_result, capture)
        if clone is None:
            continue
        clone.extra["lanes_vectorized"] = 1.0
        profiler._memo[texts[i]] = clone
        _count("lanes.cloned")


def _crosscheck(rep_result: ProfileResult, capture: LaneCapture,
                outcome: "lanes.LaneOutcome") -> bool:
    """Does the representative's scalar profile confirm the lane run?

    Any disagreement invalidates the whole certificate: the clones
    stay un-seeded and the scalar loop profiles them from scratch.
    The representative's own (scalar, authoritative) result is kept
    either way.
    """
    predicted = _LANE_FAILURES.get(outcome.failure)
    if outcome.failure is not None:
        return (rep_result.failure is predicted
                and rep_result.num_faults == outcome.num_faults
                and rep_result.pages_mapped == outcome.pages_mapped)
    return (rep_result.failure not in _CERT_BREAKERS
            and rep_result.subnormal_events == 0
            and capture.witness == outcome.witness
            and rep_result.num_faults == outcome.num_faults
            and rep_result.pages_mapped == outcome.pages_mapped)


def _replay_clone(profiler, plan, block: BasicBlock, text: str,
                  rep_result: ProfileResult,
                  capture: LaneCapture) -> Optional[ProfileResult]:
    """Re-derive one clone's ProfileResult from the lane certificate.

    A verbatim mirror of ``_profile_fresh``'s factor loop with the
    simulation replaced by the captured representative runs: the
    deterministic schedule transfers unchanged (same trace by
    certificate), only the noise stream is re-drawn per clone exactly
    as ``Machine.run`` would draw it.  Returns ``None`` when the
    capture is missing a factor (the clone then evacuates to scalar).
    """
    machine = profiler.machine
    config = profiler.config
    uarch = machine.name
    measurements: List[Measurement] = []
    accepted_cycles: List[float] = []
    extrapolated = False
    reps = config.acceptance.reps
    for unroll in plan.factors:
        run = capture.runs.get(unroll)
        if run is None or not run.samples:
            return None
        if run.fastpath.get("extrapolated"):
            extrapolated = True
        # Reconstruct the noiseless base sample (Machine.run derives
        # samples[0] from it, preserving every non-cycles counter).
        base = dataclasses.replace(run.samples[0],
                                   cycles=run.base_cycles,
                                   context_switches=0)
        rng = machine._rng(block, unroll)
        samples = [machine._perturb(base, rng) for _ in range(reps)]
        cycles, failure, clean = config.acceptance.accept(samples)
        if failure is not None:
            return ProfileResult(
                text, uarch, failure=failure,
                num_faults=rep_result.num_faults,
                pages_mapped=rep_result.pages_mapped,
                measurements=tuple(measurements),
                detail=f"unroll={unroll}")
        base_sample = samples[0]
        measurements.append(Measurement(
            unroll=unroll, cycles=cycles, clean_runs=clean,
            total_runs=len(samples),
            l1d_read_misses=base_sample.l1d_read_misses,
            l1d_write_misses=base_sample.l1d_write_misses,
            l1i_misses=base_sample.l1i_misses,
            misaligned_refs=base_sample.misaligned_mem_refs))
        accepted_cycles.append(cycles)

    throughput = plan.derive_throughput(tuple(accepted_cycles))
    extra = {"fastpath_extrapolated": 1.0} if extrapolated else {}
    from repro.runtime import blockplan
    if blockplan.enabled():
        extra["blockplan_compiled"] = 1.0
    return ProfileResult(
        text, uarch,
        throughput=max(throughput, 0.0),
        measurements=tuple(measurements),
        pages_mapped=rep_result.pages_mapped,
        num_faults=rep_result.num_faults,
        subnormal_events=rep_result.subnormal_events,
        extra=extra)
