"""Per-instruction latency and reciprocal-throughput measurement.

The paper's background surveys llvm-exegesis: a tool that measures one
*opcode's* latency by generating a micro-benchmark around it.  This
module provides the same capability on our simulated machines, using
the classic two-benchmark construction:

* **latency**: a serial chain — each instance consumes the previous
  instance's result, so steady-state cycles/instruction = latency;
* **reciprocal throughput**: independent instances spread over many
  registers, so steady-state cycles/instruction = port-pressure bound.

Both are measured through the ordinary block profiler, so the numbers
come out of the same pipeline the suite uses (and inherit its
invariant enforcement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ReproError, UnknownOpcodeError
from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.opcodes import opcode_info
from repro.isa.operands import Imm
from repro.isa.registers import lookup
from repro.profiler.harness import BasicBlockProfiler
from repro.uarch.machine import Machine

#: GPR pool for the throughput benchmark (no rsp: keep it simple).
_GPRS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "r8", "r9",
         "r10", "r11", "r12", "r13", "r14")
_XMMS = tuple(f"xmm{i}" for i in range(13))


@dataclass(frozen=True)
class InstructionTimings:
    """Measured timings for one opcode form."""

    mnemonic: str
    latency: Optional[float]
    reciprocal_throughput: Optional[float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lat = "-" if self.latency is None else f"{self.latency:.2f}"
        rtp = "-" if self.reciprocal_throughput is None \
            else f"{self.reciprocal_throughput:.2f}"
        return f"{self.mnemonic}: lat={lat} rthru={rtp}"


def _operand_template(mnemonic: str) -> Tuple[str, bool]:
    """(operand kind, is_vector) the benchmark should use."""
    info = opcode_info(mnemonic)
    if info.unsupported:
        raise ReproError(f"{mnemonic} cannot be benchmarked")
    return ("vec" if info.vec else "gpr"), info.vec


def _chain_block(mnemonic: str, length: int = 8) -> BasicBlock:
    """Serial chain: inst(reg, reg) with a single register."""
    kind, _ = _operand_template(mnemonic)
    reg = lookup("xmm0") if kind == "vec" else lookup("rax")
    other = lookup("xmm1") if kind == "vec" else lookup("rbx")
    info = opcode_info(mnemonic)
    instrs: List[Instruction] = []
    for _ in range(length):
        instrs.append(_build(mnemonic, info, dst=reg, src=reg))
    # Avoid zero idioms hiding the chain (xor r,r breaks deps).
    if instrs[0].is_zero_idiom:
        instrs = [_build(mnemonic, info, dst=reg, src=other)
                  for _ in range(length)]
        # Chain through alternation: dst must also be a source.
        if not info.reads_dst:
            raise ReproError(
                f"{mnemonic} has no serial-chain form")
    return BasicBlock(instrs, source="latency-bench")


def _throughput_block(mnemonic: str, width: int = 10) -> BasicBlock:
    """Independent instances across ``width`` registers."""
    kind, _ = _operand_template(mnemonic)
    pool = _XMMS if kind == "vec" else _GPRS
    info = opcode_info(mnemonic)
    instrs = []
    for i in range(width):
        dst = lookup(pool[i % len(pool)])
        src = lookup(pool[(i + 1) % len(pool)])
        instrs.append(_build(mnemonic, info, dst=dst, src=src))
    return BasicBlock(instrs, source="throughput-bench")


def _build(mnemonic: str, info, dst, src) -> Instruction:
    if 1 in info.arity and 2 not in info.arity:
        return Instruction(mnemonic, (dst,))
    if info.arity and min(a for a in info.arity if a > 0) >= 3 \
            and not info.reads_dst:
        return Instruction(mnemonic, (dst, dst, src))
    if mnemonic.startswith("v") and 3 in info.arity:
        return Instruction(mnemonic, (dst, dst, src))
    if info.group in ("shift",):
        return Instruction(mnemonic, (dst, Imm(3)))
    return Instruction(mnemonic, (dst, src))


class InstructionBenchmark:
    """llvm-exegesis-style opcode timing on a simulated machine."""

    def __init__(self, uarch: str = "haswell", seed: int = 0):
        self.machine = Machine(uarch, seed=seed)
        self.profiler = BasicBlockProfiler(self.machine)

    def latency(self, mnemonic: str) -> Optional[float]:
        """Serial-chain cycles per instruction (None if unmeasurable).

        Unknown mnemonics raise (a typo is not a measurement result).
        """
        try:
            block = _chain_block(mnemonic)
        except UnknownOpcodeError:
            raise
        except ReproError:
            return None
        result = self.profiler.profile(block)
        if not result.ok:
            return None
        return result.throughput / len(block)

    def reciprocal_throughput(self, mnemonic: str) -> Optional[float]:
        """Independent-instance cycles per instruction."""
        try:
            block = _throughput_block(mnemonic)
        except UnknownOpcodeError:
            raise
        except ReproError:
            return None
        result = self.profiler.profile(block)
        if not result.ok:
            return None
        return result.throughput / len(block)

    def measure(self, mnemonic: str) -> InstructionTimings:
        return InstructionTimings(
            mnemonic=mnemonic,
            latency=self.latency(mnemonic),
            reciprocal_throughput=self.reciprocal_throughput(mnemonic))

    def measure_many(self, mnemonics) -> List[InstructionTimings]:
        return [self.measure(m) for m in mnemonics]
