"""The monitor/measure page-mapping protocol of Fig. 2.

The paper forks a child (``measure``) under ``ptrace`` and has the
parent (``monitor``) intercept each SIGSEGV: if the faulting address is
mappable, the monitor maps its page onto the chosen physical page,
rewinds the child to the start with registers and memory re-initialised,
and resumes; after ``maxNumFaults`` it gives up.

Here the child is the functional executor and SIGSEGV is
:class:`~repro.errors.MemoryFault`; the control flow is identical,
including the full restart (re-initialisation guarantees that the
final measurement run reproduces the mapping run's address trace).

With the simulation-core fast path enabled (:mod:`repro.simcore`), the
full restart is replaced by a checkpointing session
(:class:`repro.simcore.fastrun.BlockRun`) that resumes after each
mapped fault and extrapolates the steady tail — provably producing the
same trace and the same page mappings, which the differential suite
under ``tests/simcore`` verifies block by block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import (ArithmeticFault, InvalidAddressFault, MemoryFault,
                          UnsupportedInstructionError)
from repro.isa.instruction import BasicBlock
from repro.profiler.environment import Environment
from repro.profiler.result import FailureReason
from repro.runtime.executor import Executor
from repro.runtime.memory import is_valid_address
from repro.runtime.trace import ExecutionTrace
from repro.simcore import config as simcore
from repro.simcore.fastrun import BlockRun

#: Fig. 2's ``maxNumFaults``.
DEFAULT_MAX_FAULTS = 64


@dataclass
class MappingOutcome:
    """Result of the monitor loop."""

    success: bool
    num_faults: int = 0
    pages_mapped: int = 0
    failure: Optional[FailureReason] = None
    detail: str = ""
    #: Trace of the first complete (post-mapping) execution.
    trace: Optional[ExecutionTrace] = None


def map_pages(env: Environment, block: BasicBlock, unroll: int,
              max_faults: int = DEFAULT_MAX_FAULTS,
              enable_mapping: bool = True) -> MappingOutcome:
    """Run the monitor loop until the unrolled block executes cleanly.

    With ``enable_mapping=False`` (the "None" row of Table I) faults
    are fatal, exactly like running Agner Fog's script on an arbitrary
    block.
    """
    executor = Executor(env.state, env.memory)
    num_faults = 0
    session = None
    if simcore.enabled():
        env.reinitialize()
        session = BlockRun(executor, block, unroll)
    while True:
        try:
            if session is not None:
                trace = session.run()
            else:
                env.reinitialize()
                trace = executor.execute_block(block, unroll=unroll)
        except InvalidAddressFault as fault:
            return MappingOutcome(False, num_faults, env.pages_mapped,
                                  FailureReason.INVALID_ADDRESS,
                                  f"address {fault.address:#x}")
        except MemoryFault as fault:
            if not enable_mapping:
                return MappingOutcome(False, num_faults, env.pages_mapped,
                                      FailureReason.SEGFAULT,
                                      f"address {fault.address:#x}")
            if not is_valid_address(fault.address):
                return MappingOutcome(False, num_faults, env.pages_mapped,
                                      FailureReason.INVALID_ADDRESS,
                                      f"address {fault.address:#x}")
            num_faults += 1
            if num_faults > max_faults:
                return MappingOutcome(False, num_faults, env.pages_mapped,
                                      FailureReason.TOO_MANY_FAULTS)
            env.map_faulting_address(fault.address)
            continue
        except ArithmeticFault as fault:
            return MappingOutcome(False, num_faults, env.pages_mapped,
                                  FailureReason.SIGFPE, str(fault))
        except UnsupportedInstructionError as exc:
            return MappingOutcome(False, num_faults, env.pages_mapped,
                                  FailureReason.UNSUPPORTED, str(exc))
        return MappingOutcome(True, num_faults, env.pages_mapped,
                              trace=trace)
