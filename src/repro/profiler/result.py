"""Profiling results and failure taxonomy."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class FailureReason(enum.Enum):
    """Why a basic block could not be successfully profiled.

    The ablation benches aggregate these to reproduce Table I; the
    taxonomy mirrors the failure modes the paper describes.
    """

    SEGFAULT = "segfault"                # unmapped access, no mapping stage
    INVALID_ADDRESS = "invalid_address"  # isValidAddr() failed (Fig. 2)
    TOO_MANY_FAULTS = "too_many_faults"  # maxNumFaults exceeded (Fig. 2)
    SIGFPE = "sigfpe"                    # divide error under canonical init
    UNSUPPORTED = "unsupported_instruction"
    L1D_MISS = "l1d_cache_miss"          # invariant violated (§III-C)
    L1I_MISS = "l1i_cache_miss"          # invariant violated (§III-C)
    MISALIGNED = "misaligned_access"     # MISALIGNED_MEM_REFERENCE filter
    UNSTABLE = "unstable_timing"         # <8 of 16 identical clean runs
    UNSUPPORTED_ISA = "isa_not_supported"  # e.g. AVX2 block on Ivy Bridge
    #: A parallel worker died or timed out on the shard holding this
    #: block and the serial retry failed too (repro.parallel).
    WORKER_FAILURE = "worker_failure"
    #: The block was quarantined by the resilience layer: its
    #: simulation raised unexpectedly (including injected chaos
    #: faults) or tripped the executor's step-budget watchdog
    #: (repro.resilience).  In salvage mode these degrade to this
    #: bucket; ``--strict`` promotes them into run failures.
    QUARANTINED = "quarantined"


@dataclass
class Measurement:
    """One accepted timing of an unrolled block."""

    unroll: int
    cycles: int
    clean_runs: int
    total_runs: int
    l1d_read_misses: int = 0
    l1d_write_misses: int = 0
    l1i_misses: int = 0
    misaligned_refs: int = 0


@dataclass
class ProfileResult:
    """Outcome of profiling one basic block on one machine.

    ``throughput`` follows IACA's convention (the paper's §III-B):
    average cycles per basic-block iteration at steady state — the
    *inverse* of the textbook meaning.
    """

    block_text: str
    uarch: str
    throughput: Optional[float] = None
    failure: Optional[FailureReason] = None
    measurements: Tuple[Measurement, ...] = ()
    pages_mapped: int = 0
    num_faults: int = 0
    subnormal_events: int = 0
    detail: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Was the block *successfully profiled* in the paper's sense?

        Executed without crashing, no cache misses, reproducible.
        """
        return self.failure is None and self.throughput is not None

    def __repr__(self) -> str:
        if self.ok:
            return (f"ProfileResult({self.uarch}, "
                    f"throughput={self.throughput:.2f})")
        return f"ProfileResult({self.uarch}, failure={self.failure})"
