"""Unroll-factor selection and throughput derivation (§III-B).

Two strategies:

* **Naive** (Eq. 1): unroll ``u`` times (typically 100, as in Ithemal
  and uops.info), measure once, divide — simple, but the footprint of
  a large block unrolled 100x overflows L1I, violating the modeling
  assumptions.
* **Two-factor** (Eq. 2, the paper's contribution): measure at two
  smaller factors ``u < u'`` that both reach steady state and report
  ``(cycles(u') - cycles(u)) / (u' - u)``.  Warm-up cost cancels in the
  difference, so the factors only need to reach steady state, not to
  amortise it — which is what lets large numerical kernels fit in the
  instruction cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.isa.instruction import BasicBlock

#: The unroll factor the naive strategy uses (the paper: "a typical
#: unroll factor is 100").
NAIVE_UNROLL = 100

#: Default small factor of the two-factor plan (``ProfilerConfig``
#: overrides; the benches use the paper's ~100).
BASE_FACTOR = 16


@dataclass(frozen=True)
class UnrollPlan:
    """The unroll factors to measure and how to derive throughput."""

    factors: Tuple[int, ...]

    @property
    def max_factor(self) -> int:
        return max(self.factors)

    def derive_throughput(self, cycles: Tuple[int, ...]) -> float:
        """Apply Eq. 1 or Eq. 2 to the measured cycle counts."""
        if len(self.factors) == 1:
            return cycles[0] / self.factors[0]
        (u1, u2), (c1, c2) = self.factors, cycles
        return (c2 - c1) / (u2 - u1)


def naive_plan(unroll: int = NAIVE_UNROLL) -> UnrollPlan:
    return UnrollPlan(factors=(unroll,))


def two_factor_plan(block: BasicBlock,
                    icache_bytes: int = 32 * 1024,
                    base_factor: int = BASE_FACTOR,
                    headroom: float = 0.75) -> UnrollPlan:
    """Pick (u, 2u) such that 2u copies fit comfortably in L1I.

    ``headroom`` leaves room for the harness's own code, mirroring the
    real suite.  Factors are floored at 2/4 so even enormous blocks get
    two distinct measurements.
    """
    budget = int(icache_bytes * headroom)
    per_copy = max(block.byte_length, 1)
    u2 = min(2 * base_factor, max(4, budget // per_copy))
    u1 = max(2, u2 // 2)
    if u1 == u2:
        u2 = u1 + 1
    return UnrollPlan(factors=(u1, u2))
