"""repro.resilience — fault injection, crash-safe resume, degradation.

Three cooperating layers (see docs/robustness.md):

* :mod:`repro.resilience.chaos` — deterministic, seeded fault
  injection at named points throughout the pipeline (``--chaos SPEC``
  / ``$REPRO_CHAOS``), so every failure scenario is reproducible.
* :mod:`repro.resilience.journal` — an append-only, checksummed run
  journal giving killed runs crash-safe ``--resume`` with
  byte-identical output.
* :mod:`repro.resilience.policy` — bounded retries with deterministic
  jittered backoff, the executor's step-budget watchdog, and the
  strict/salvage switch that decides whether quarantines fail the run.
"""

from repro.errors import (ChaosFault, StepBudgetExceeded,
                          StrictModeViolation)
from repro.resilience.chaos import (CRASH_EXIT_CODE, FAULT_POINTS,
                                    PIPELINE_FAULT_POINTS,
                                    SERVE_FAULT_POINTS, ChaosPolicy,
                                    ChaosSpecError)
from repro.resilience.journal import (JOURNAL_NAME, RunJournal,
                                      journal_line, parse_journal_line)
from repro.resilience.policy import (DEFAULT_STEP_BUDGET, RetryPolicy,
                                     default_retry_policy,
                                     forced_step_budget, forced_strict,
                                     quarantine_or_raise, set_step_budget,
                                     set_strict, step_budget,
                                     strict_mode)

__all__ = [
    # chaos
    "ChaosPolicy", "ChaosSpecError", "ChaosFault", "FAULT_POINTS",
    "PIPELINE_FAULT_POINTS", "SERVE_FAULT_POINTS", "CRASH_EXIT_CODE",
    # journal
    "RunJournal", "JOURNAL_NAME", "journal_line", "parse_journal_line",
    # policy
    "RetryPolicy", "default_retry_policy", "DEFAULT_STEP_BUDGET",
    "step_budget", "set_step_budget", "forced_step_budget",
    "strict_mode", "set_strict", "forced_strict",
    "quarantine_or_raise",
    # errors
    "StepBudgetExceeded", "StrictModeViolation",
]
