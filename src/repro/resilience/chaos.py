"""Deterministic chaos / fault injection.

Every hostile scenario the pipeline must survive — a worker process
dying, a worker hanging past its deadline, a shard-cache file arriving
truncated or as garbage, a transient ``OSError`` on an atomic write, a
full disk, a block whose simulation raises out of nowhere — is woven
through the stack as a *named fault point*.  A seeded
:class:`ChaosPolicy` (``--chaos SPEC`` on the CLI, ``$REPRO_CHAOS`` in
the environment, or :func:`forced` in tests) arms those points.

Determinism is the whole design: whether a point fires for a given key
is a pure function of ``(seed, point, key, attempt)`` — a keyed hash
compared against the point's rate — never of wall clock, call order,
or process identity.  The same spec therefore injects the same faults
into a serial run, a pooled run, and a re-run next week, which is what
lets the differential suites assert that every fault is *transparent*
(retried/quarantined without changing output bytes) or *accounted*
(visible in the funnel and the run report's resilience section).

Spec grammar (see docs/robustness.md)::

    SPEC    := <seed> [":" entry ("," entry)*]
    entry   := <point> "=" <rate>        # rate in [0, 1]
             | "all" "=" <rate>          # every point at once
             | "hang_s" "=" <seconds>    # how long worker_hang sleeps

    e.g.  --chaos "42:worker_crash=0.1,write_oserror=0.2"
          REPRO_CHAOS="7:all=0.05" pytest tests/parallel

Worker-process-only faults (``worker_crash``, ``worker_hang``) are
additionally gated on :func:`in_worker`, so a serial in-process run —
or the parent's own serial rescue of a crashed shard — never hard-kills
the main process.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ChaosFault
from repro.telemetry import core as telemetry

ENV_VAR = "REPRO_CHAOS"

#: Fault points woven through the batch pipeline, in pipeline order.
PIPELINE_FAULT_POINTS: Tuple[str, ...] = (
    "worker_crash",    # worker process hard-exits at shard start
    "worker_hang",     # worker sleeps past the shard deadline
    "cache_truncate",  # shard-cache write leaves truncated JSON
    "cache_garbage",   # shard-cache write leaves non-JSON garbage
    "write_oserror",   # transient OSError on the atomic write (1st try)
    "disk_full",       # persistent ENOSPC on the atomic write
    "block_poison",    # RuntimeError surfaces mid-simulation
)

#: Fault points specific to the ``repro serve`` daemon (request path).
SERVE_FAULT_POINTS: Tuple[str, ...] = (
    "serve_accept_error",  # daemon: accepted connection dies immediately
    "serve_slow_client",   # daemon: response stalls mid-write (hang_s)
    "serve_queue_full",    # daemon: admission queue reports full
)

#: Every named fault point.
FAULT_POINTS: Tuple[str, ...] = \
    PIPELINE_FAULT_POINTS + SERVE_FAULT_POINTS

#: Hard exit code used by the ``worker_crash`` point (recognisable in
#: worker post-mortems; the parent only ever sees BrokenProcessPool).
CRASH_EXIT_CODE = 113

DEFAULT_HANG_SECONDS = 30.0


class ChaosSpecError(ValueError):
    """The ``--chaos`` / ``$REPRO_CHAOS`` spec could not be parsed."""


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, rate-per-point fault plan.

    ``should_fire`` is deterministic and order-independent: the hash
    covers the seed, the point name, the caller-supplied key (shard
    digest, block text, ...) and the attempt number, so retries can opt
    into *transient* semantics by hashing the attempt in, and
    *persistent* semantics by leaving it at 0.
    """

    seed: int
    rates: Dict[str, float] = field(default_factory=dict)
    hang_seconds: float = DEFAULT_HANG_SECONDS
    #: The spec string this policy was parsed from ("" if programmatic).
    spec: str = ""

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse the ``<seed>[:point=rate,...]`` grammar."""
        text = spec.strip()
        head, _, tail = text.partition(":")
        try:
            seed = int(head)
        except ValueError:
            raise ChaosSpecError(
                f"chaos spec must start with an integer seed: {spec!r}")
        rates: Dict[str, float] = {}
        hang_seconds = DEFAULT_HANG_SECONDS
        for entry in filter(None, (e.strip()
                                   for e in tail.split(","))):
            name, sep, value = entry.partition("=")
            name = name.strip()
            if not sep:
                raise ChaosSpecError(
                    f"chaos entry {entry!r} is not <name>=<value>")
            try:
                number = float(value)
            except ValueError:
                raise ChaosSpecError(
                    f"chaos entry {entry!r} has a non-numeric value")
            if name == "hang_s":
                hang_seconds = number
            elif name == "all":
                for point in FAULT_POINTS:
                    rates[point] = number
            elif name in FAULT_POINTS:
                rates[name] = number
            else:
                raise ChaosSpecError(
                    f"unknown fault point {name!r} "
                    f"(expected one of {', '.join(FAULT_POINTS)})")
        for point, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ChaosSpecError(
                    f"rate for {point!r} must be in [0, 1], got {rate}")
        return cls(seed=seed, rates=rates, hang_seconds=hang_seconds,
                   spec=text)

    # ------------------------------------------------------------------

    def rate(self, point: str) -> float:
        return self.rates.get(point, 0.0)

    def should_fire(self, point: str, key: str,
                    attempt: int = 0) -> bool:
        """Pure decision function — no state, no clock, no RNG.

        blake2b rather than CRC-32: CRC is linear, so near-identical
        keys (or the same key at successive attempts) land in a
        narrow band of hash values and a rate threshold degenerates
        to all-or-nothing across them.  A cryptographic hash makes
        the per-key decisions independent — and it is just as
        process-stable (never ``PYTHONHASHSEED``-dependent).
        """
        rate = self.rates.get(point, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        token = f"{self.seed}|{point}|{key}|{attempt}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2 ** 64 < rate


# ---------------------------------------------------------------------------
# Process-wide switchboard (mirrors repro.simcore.config)
# ---------------------------------------------------------------------------

#: Programmatic override; ``None`` defers to the environment.
_override: Optional[ChaosPolicy] = None
_OVERRIDE_OFF = ChaosPolicy(seed=0)  # sentinel for "forced off"

#: Parsed-env memo: (raw env string, policy) so ``active()`` stays a
#: dict lookup on the hot path instead of a parse.
_env_cache: Tuple[Optional[str], Optional[ChaosPolicy]] = (None, None)

#: Set by the pool-worker initialiser; worker-only faults key off it.
_in_worker = False


def active() -> Optional[ChaosPolicy]:
    """The armed policy, or ``None`` when chaos is off (the default)."""
    global _env_cache
    if _override is not None:
        return None if _override is _OVERRIDE_OFF else _override
    raw = os.environ.get(ENV_VAR)
    if not raw or not raw.strip():
        return None
    cached_raw, cached_policy = _env_cache
    if raw != cached_raw:
        _env_cache = (raw, ChaosPolicy.parse(raw))
    return _env_cache[1]


def set_policy(policy: Optional[ChaosPolicy]) -> None:
    """Force a policy (or ``None`` to defer to ``$REPRO_CHAOS``)."""
    global _override
    _override = policy


@contextmanager
def forced(policy: Optional[ChaosPolicy]) -> Iterator[None]:
    """Temporarily arm ``policy`` (``None`` forces chaos *off*)."""
    global _override
    saved = _override
    _override = _OVERRIDE_OFF if policy is None else policy
    try:
        yield
    finally:
        _override = saved


def mark_worker() -> None:
    """Flag this process as a pool worker (worker faults may fire)."""
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    return _in_worker


# ---------------------------------------------------------------------------
# Fire helpers
# ---------------------------------------------------------------------------

def should_fire(point: str, key: str, attempt: int = 0) -> bool:
    """Decision only — no accounting.  False when chaos is off."""
    policy = active()
    return policy is not None and policy.should_fire(point, key,
                                                     attempt)


def account(point: str, key: str = "") -> None:
    """Record one injection in the run's telemetry.

    Called by the site that *observes* the fault in the parent process
    — worker-side firings are invisible to the parent's registry, so
    the engine mirrors the (deterministic) decision on its side.
    """
    telemetry.count(f"resilience.fault_injected.{point}")
    telemetry.event("resilience.fault_injected", point=point,
                    key=str(key)[:120])


def fire(point: str, key: str, attempt: int = 0,
         count: bool = True) -> bool:
    """Decide and (optionally) account in one step."""
    if not should_fire(point, key, attempt):
        return False
    if count:
        account(point, key)
    return True


def poison(key: str) -> None:
    """Raise :class:`ChaosFault` if ``block_poison`` fires for ``key``.

    Accounting is deliberately *not* done here: poisoned blocks are
    visible through the ``quarantined`` funnel bucket and the
    ``chaos_block_poison`` info tally, which — unlike a process-local
    counter — survive the trip back from pool workers.
    """
    if fire("block_poison", key, count=False):
        raise ChaosFault("block_poison", key[:80])
