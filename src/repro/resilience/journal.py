"""Crash-safe run journal: append-only NDJSON with per-line checksums.

One journal lives next to each v3 shard-cache directory
(``journal.ndjson``).  It records the run's identity (a ``begin``
record: uarch, seed, corpus digest, shard count) followed by one
``shard`` record per completed shard — its content digest plus a
CRC-32 of the exact bytes the cache wrote for it.

The file is designed to be killed mid-write at any byte:

* every record carries a ``crc`` of its own serialized payload, so a
  torn final line (SIGKILL during ``write``) fails its self-check and
  is dropped on load instead of crashing the loader;
* records are appended with ``flush`` + ``fsync``, so a record that a
  resumed run acts on was durable before the shard was reported done;
* a journal whose ``begin`` record does not match the resuming run
  (different corpus, uarch, or seed) is rotated out and restarted —
  the shard cache itself stays valid either way, the journal only adds
  verification on top.

On resume the engine cross-checks every cache hit against the
journal's recorded checksum and quarantines mismatches (see
``repro.parallel.engine``), which is what turns "the cache file looks
like JSON" into "the cache file holds exactly the bytes a completed
shard wrote".
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Optional, TextIO

JOURNAL_VERSION = 1

#: Default journal filename inside a shard-cache directory.
JOURNAL_NAME = "journal.ndjson"


def journal_line(record: Dict) -> str:
    """Serialize a record with its own integrity checksum appended.

    The line format is shared beyond the run journal: the serve-side
    request journal (:mod:`repro.serve.requestlog`) and the triage
    store reuse it so every crash-safe NDJSON file in the tree fails
    torn writes the same way.
    """
    payload = json.dumps(record, sort_keys=True)
    crc = zlib.crc32(payload.encode())
    return json.dumps({"crc": crc, "rec": record}, sort_keys=True)


def parse_journal_line(line: str) -> Optional[Dict]:
    """A record that passes its self-check, else ``None``."""
    try:
        doc = json.loads(line)
        record = doc["rec"]
        payload = json.dumps(record, sort_keys=True)
        if zlib.crc32(payload.encode()) != doc["crc"]:
            return None
        return record if isinstance(record, dict) else None
    except (ValueError, KeyError, TypeError):
        return None


class RunJournal:
    """Append-only NDJSON journal for one shard-cache directory."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[TextIO] = None
        #: digest -> checksum of the cache bytes, from prior runs.
        self.completed: Dict[str, int] = {}
        #: Records dropped for failing their self-check on load.
        self.torn_records = 0
        self.resumed = False

    # ------------------------------------------------------------------

    def open(self, meta: Dict) -> Dict[str, int]:
        """Open for this run; returns verified completions to resume.

        ``meta`` identifies the run (uarch, seed, corpus digest, shard
        count).  A prior journal with the same identity is continued —
        its intact ``shard`` records become :attr:`completed`.  A
        missing, corrupt, or mismatched journal starts fresh.
        """
        self.completed = {}
        self.torn_records = 0
        self.resumed = False
        prior = self._read_existing(meta)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if prior is not None:
            self.completed = prior
            self.resumed = True
            self._fh = open(self.path, "a")
            self._append({"kind": "resume", "meta": meta,
                          "known": len(prior)})
        else:
            self._fh = open(self.path, "w")
            self._append({"kind": "begin",
                          "version": JOURNAL_VERSION, "meta": meta})
        return dict(self.completed)

    def _read_existing(self, meta: Dict) -> Optional[Dict[str, int]]:
        """Completions from a compatible prior journal, else ``None``."""
        try:
            with open(self.path) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return None
        completed: Dict[str, int] = {}
        begun = False
        for line in lines:
            if not line.strip():
                continue
            record = parse_journal_line(line)
            if record is None:
                self.torn_records += 1
                continue
            kind = record.get("kind")
            if kind == "begin":
                if record.get("version") != JOURNAL_VERSION \
                        or record.get("meta") != meta:
                    return None  # different run: rotate
                begun = True
            elif kind == "shard":
                digest = record.get("digest")
                checksum = record.get("checksum")
                if isinstance(digest, str) \
                        and isinstance(checksum, int):
                    completed[digest] = checksum
        return completed if begun else None

    # ------------------------------------------------------------------

    def record_shard(self, digest: str, index: int,
                     checksum: int) -> None:
        """Durably record one completed shard (flush + fsync)."""
        self._append({"kind": "shard", "digest": digest,
                      "index": index, "checksum": checksum})
        self.completed[digest] = checksum

    def _append(self, record: Dict) -> None:
        assert self._fh is not None, "journal not opened"
        self._fh.write(journal_line(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
