"""Retry, deadline, and degradation policy.

Three knobs, all deterministic and all environment-overridable:

* :class:`RetryPolicy` — bounded attempts with deterministic jittered
  exponential backoff.  The jitter is hashed from ``(seed, key,
  attempt)``, never drawn from an RNG, so two runs of the same corpus
  back off identically and the differential suites stay byte-exact.
* **Step budget** — a per-``execute_block`` watchdog ceiling consulted
  by the executor once per unrolled block copy.  A pathological block
  (or an injected hang) trips :class:`repro.errors.StepBudgetExceeded`
  at a deterministic dynamic position instead of stalling a worker
  until the coarse shard deadline.
* **Strict vs salvage** — salvage (the default) degrades: quarantined
  blocks land in the ``quarantined`` funnel bucket, corrupt cache
  files are moved to ``quarantine/``, failed cache writes are skipped.
  Strict (``--strict`` / ``REPRO_STRICT=1``) promotes any of those
  into :class:`repro.errors.StrictModeViolation` so CI fails fast.
"""

from __future__ import annotations

import os
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.errors import StrictModeViolation
from repro.telemetry import core as telemetry

ENV_STRICT = "REPRO_STRICT"
ENV_STEP_BUDGET = "REPRO_STEP_BUDGET"

#: Default per-``execute_block`` step ceiling.  The deepest legitimate
#: run the pipeline produces (latency/port benches: ~1k-instruction
#: unrolled bodies at unroll ~1000) stays well under 10^6 steps; the
#: ceiling exists to convert runaways into quarantines, not to shave
#: honest work.
DEFAULT_STEP_BUDGET = 8_000_000

_TRUTHY = ("1", "true", "yes", "on")


# ---------------------------------------------------------------------------
# Strict / salvage mode
# ---------------------------------------------------------------------------

_strict_override: Optional[bool] = None


def strict_mode() -> bool:
    """Is ``--strict`` active? (salvage — ``False`` — is the default)"""
    if _strict_override is not None:
        return _strict_override
    return os.environ.get(ENV_STRICT, "").strip().lower() in _TRUTHY


def set_strict(value: Optional[bool]) -> None:
    """Force strict/salvage; ``None`` defers to ``$REPRO_STRICT``."""
    global _strict_override
    _strict_override = None if value is None else bool(value)


@contextmanager
def forced_strict(value: bool) -> Iterator[None]:
    global _strict_override
    saved = _strict_override
    _strict_override = bool(value)
    try:
        yield
    finally:
        _strict_override = saved


def quarantine_or_raise(what: str, detail: str = "") -> None:
    """The single strict/salvage decision point.

    Salvage mode returns (the caller degrades); strict mode raises
    :class:`StrictModeViolation` so the quarantine fails the run.
    """
    if strict_mode():
        raise StrictModeViolation(what, detail)


# ---------------------------------------------------------------------------
# Step budget
# ---------------------------------------------------------------------------

_budget_override: Optional[int] = None
_budget_env_cache: Tuple[Optional[str], int] = (None,
                                                DEFAULT_STEP_BUDGET)


def step_budget() -> int:
    """Per-``execute_block`` step ceiling (``REPRO_STEP_BUDGET``)."""
    global _budget_env_cache
    if _budget_override is not None:
        return _budget_override
    raw = os.environ.get(ENV_STEP_BUDGET)
    if not raw or not raw.strip():
        return DEFAULT_STEP_BUDGET
    cached_raw, cached = _budget_env_cache
    if raw != cached_raw:
        _budget_env_cache = (raw, max(1, int(raw)))
    return _budget_env_cache[1]


def set_step_budget(value: Optional[int]) -> None:
    global _budget_override
    _budget_override = None if value is None else max(1, int(value))


@contextmanager
def forced_step_budget(value: int) -> Iterator[None]:
    global _budget_override
    saved = _budget_override
    _budget_override = max(1, int(value))
    try:
        yield
    finally:
        _budget_override = saved


# ---------------------------------------------------------------------------
# Retry with deterministic jittered backoff
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with deterministic jittered backoff.

    ``backoff_ms(key, attempt)`` grows exponentially from ``base_ms``
    (capped at ``max_ms``) and is scaled by a jitter factor in
    ``[0.5, 1.5)`` hashed from ``(seed, key, attempt)`` — reproducible
    across runs, de-synchronised across keys (the reason jitter exists
    at all), and free of RNG state that could bleed into the
    simulation's own seeding.
    """

    max_attempts: int = 3
    base_ms: float = 5.0
    multiplier: float = 2.0
    max_ms: float = 200.0
    seed: int = 0

    def backoff_ms(self, key: str, attempt: int) -> float:
        """Delay *before* retry number ``attempt`` (1-based)."""
        base = min(self.base_ms * self.multiplier ** (attempt - 1),
                   self.max_ms)
        token = f"{self.seed}|{key}|{attempt}".encode()
        jitter = 0.5 + zlib.crc32(token) / 2 ** 32
        return base * jitter

    def run(self, fn: Callable[[int], object], *, key: str,
            retry_on: Tuple[Type[BaseException], ...] = (OSError,),
            sleep: Callable[[float], None] = time.sleep):
        """Call ``fn(attempt)`` until it succeeds or attempts run out.

        Retries only on ``retry_on``; each retry is counted
        (``resilience.retries``) and its backoff observed
        (``resilience.backoff_ms``) before sleeping.  The final
        attempt's exception propagates to the caller, which owns the
        degrade-or-raise decision.
        """
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            if attempt:
                delay_ms = self.backoff_ms(key, attempt)
                telemetry.count("resilience.retries")
                telemetry.observe("resilience.backoff_ms", delay_ms)
                telemetry.event("resilience.retry", key=str(key)[:120],
                                attempt=attempt,
                                backoff_ms=round(delay_ms, 3))
                sleep(delay_ms / 1000.0)
            try:
                return fn(attempt)
            except retry_on as exc:
                last = exc
        assert last is not None
        raise last


def default_retry_policy(seed: int = 0) -> RetryPolicy:
    return RetryPolicy(seed=seed)
