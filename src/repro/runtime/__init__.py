"""Simulated process substrate: state, memory, functional execution."""

from repro.runtime.executor import Executor, evaluate_condition
from repro.runtime.memory import (MAX_USER_ADDRESS, MIN_USER_ADDRESS,
                                  PAGE_SIZE, PhysicalPage, VirtualMemory,
                                  is_valid_address, page_base, page_of)
from repro.runtime.state import INIT_CONSTANT, MachineState, state_equal
from repro.runtime.trace import ExecutionTrace, InstrEvent, MemAccess

__all__ = [
    "Executor", "evaluate_condition",
    "VirtualMemory", "PhysicalPage", "PAGE_SIZE",
    "MIN_USER_ADDRESS", "MAX_USER_ADDRESS",
    "is_valid_address", "page_base", "page_of",
    "MachineState", "INIT_CONSTANT", "state_equal",
    "ExecutionTrace", "InstrEvent", "MemAccess",
]
