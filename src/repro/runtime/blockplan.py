"""Kill-switch configuration for block-compiled execution plans.

Mirrors :mod:`repro.simcore.config` (the fast-path switch): plans are
on by default, can be disabled for a process via ``REPRO_NO_BLOCKPLAN``
or ``set_enabled(False)``, and tests/benches can force either setting
within a scope via :func:`forced`.  Lives in its own dependency-free
module so :mod:`repro.runtime.memory`, :mod:`repro.runtime.executor`,
the CLI and the tests can all import it without touching the
executor↔plan import cycle.

The differential suite and the ``blockplan-differential`` CI leg prove
that flipping this switch never changes a single serialized byte of
any profile — it only changes how fast the bytes are produced.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Set to a truthy value ("1", "true", "yes", "on") to disable block
#: plans for the whole process, including pool workers that inherit
#: the environment.
ENV_VAR = "REPRO_NO_BLOCKPLAN"

_DISABLING = ("1", "true", "yes", "on")

#: Programmatic override; ``None`` defers to the environment.
_override: Optional[bool] = None


def enabled() -> bool:
    """True when block-compiled plans should be used."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() not in _DISABLING


def set_enabled(value: Optional[bool]) -> None:
    """Set the programmatic override (``None`` restores env control)."""
    global _override
    _override = value


@contextmanager
def forced(value: bool) -> Iterator[None]:
    """Force plans on/off within a scope (tests and benchmarks)."""
    global _override
    previous = _override
    _override = value
    try:
        yield
    finally:
        _override = previous
