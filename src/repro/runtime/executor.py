"""Functional executor: runs basic blocks against state + memory.

This is the simulated analogue of the child process in the paper's
Fig. 2 pseudocode (``executeUnrolledBasicBlock``).  It computes real
values — the CRC example's pointer chain through the lookup table
behaves exactly as on hardware — so the page-mapping loop discovers
the same virtual pages a real run would.

Faults propagate as :class:`repro.errors.MemoryFault` /
:class:`InvalidAddressFault` / :class:`ArithmeticFault`;
:mod:`repro.profiler.mapping` plays the monitor role and intercepts
them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.errors import (ArithmeticFault, StepBudgetExceeded,
                          UnsupportedInstructionError)
from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import Imm, Mem, is_imm, is_mem, is_reg
from repro.isa.registers import Register, lookup
from repro.resilience import policy as _resilience_policy
from repro.runtime import blockplan, fpmath
from repro.runtime.memory import VirtualMemory
from repro.runtime.state import MachineState
from repro.runtime.trace import ExecutionTrace, InstrEvent, MemAccess
from repro.telemetry import core as telemetry

_MASK = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: (1 << 64) - 1,
         16: (1 << 128) - 1, 32: (1 << 256) - 1}

_LANE_BITS = {"b": 8, "w": 16, "d": 32, "q": 64}


def _sext(value: int, width_bytes: int) -> int:
    bits = width_bytes * 8
    value &= (1 << bits) - 1
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _parity(byte: int) -> bool:
    return bin(byte & 0xFF).count("1") % 2 == 0


def evaluate_condition(cc: str, flags: Dict[str, bool]) -> bool:
    """Evaluate a condition-code suffix against the flags."""
    cf, zf, sf, of, pf = (flags["cf"], flags["zf"], flags["sf"],
                          flags["of"], flags["pf"])
    table: Dict[str, bool] = {
        "e": zf, "z": zf, "ne": not zf, "nz": not zf,
        "l": sf != of, "ge": sf == of,
        "le": zf or sf != of, "g": not zf and sf == of,
        "b": cf, "c": cf, "ae": not cf, "nc": not cf,
        "be": cf or zf, "a": not cf and not zf,
        "s": sf, "ns": not sf, "o": of, "no": not of,
        "p": pf, "np": not pf,
    }
    return table[cc]


class Executor:
    """Executes instructions, recording an :class:`ExecutionTrace`."""

    def __init__(self, state: MachineState, memory: VirtualMemory):
        self.state = state
        self.memory = memory
        self._event: InstrEvent = InstrEvent(index=-1, slot=-1)
        #: Bound block plans (block -> step tuple), managed by
        #: :func:`repro.runtime.plan.bound_plan`.
        self._plans: Dict[BasicBlock, tuple] = {}

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def execute_block(self, block: BasicBlock,
                      unroll: int = 1) -> ExecutionTrace:
        """Execute ``unroll`` back-to-back copies of ``block``.

        Raises on faults; the caller (monitor) handles them.
        """
        trace = ExecutionTrace(block_len=len(block), unroll=unroll)
        events_append = trace.events.append
        index = 0
        # Step-budget watchdog (repro.resilience): bounds the dynamic
        # instruction count so one pathological block cannot stall the
        # whole run.  Checked once per unrolled copy — cheap enough to
        # not perturb the hot loop, tight enough to trip within one
        # block length of the budget.
        budget = _resilience_policy.step_budget()
        if blockplan.enabled():
            # The hottest loop in the simulator: each block is compiled
            # once into pre-bound step closures (operand accessors,
            # widths, address recipes and flag thunks all resolved at
            # compile time) and replayed here.  Steps that could not be
            # compiled fall back to the interpreted handler, so errors
            # and annotations surface at the same dynamic position.
            steps = tuple(enumerate(_plan.bound_plan(self, block)))
            make_event = InstrEvent
            for _ in range(unroll):
                if index > budget:
                    raise StepBudgetExceeded(index, budget)
                for slot, step in steps:
                    event = make_event(index=index, slot=slot)
                    step(event)
                    events_append(event)
                    index += 1
        else:
            # Interpreted path: semantic handlers pre-resolved per
            # static slot, every per-event lookup bound to a local.  A
            # slot without a handler falls back to
            # ``execute_instruction`` so unsupported instructions raise
            # at the same dynamic position with the same message.
            plan = handler_plan(block)
            execute_instruction = self.execute_instruction
            for _ in range(unroll):
                if index > budget:
                    raise StepBudgetExceeded(index, budget)
                for slot, (instr, handler) in enumerate(plan):
                    event = InstrEvent(index=index, slot=slot)
                    self._event = event
                    if handler is None:
                        execute_instruction(instr)
                    else:
                        handler(self, instr)
                    events_append(event)
                    index += 1
        if telemetry.is_enabled():
            telemetry.count("runtime.blocks_executed")
            telemetry.count("runtime.instructions_executed", index)
        return trace

    def execute_instruction(self, instr: Instruction) -> InstrEvent:
        info = instr.info
        if info.unsupported:
            raise UnsupportedInstructionError(instr.mnemonic)
        handler = _SEMANTICS.get(info.semantic)
        if handler is None:
            raise UnsupportedInstructionError(
                f"{instr.mnemonic} (no semantics for {info.semantic})")
        handler(self, instr)
        return self._event

    # ------------------------------------------------------------------
    # Operand plumbing
    # ------------------------------------------------------------------

    def effective_address(self, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self.state.read(mem.base)
        if mem.index is not None:
            addr += self.state.read(mem.index) * mem.scale
        return addr & _MASK[8]

    def _mem_width(self, instr: Instruction, op: Mem,
                   width: Optional[int]) -> int:
        if width is not None:
            return width
        w = instr.memory_access_width
        return w or op.width

    def load(self, address: int, width: int) -> int:
        value = self.memory.read_int(address, width)
        self._event.accesses.append(MemAccess(address, width, False))
        return value

    def store(self, address: int, width: int, value: int) -> None:
        self.memory.write_int(address, width, value)
        self._event.accesses.append(MemAccess(address, width, True))

    def read_op(self, instr: Instruction, op, width: Optional[int] = None
                ) -> int:
        """Read an operand as an unsigned integer of ``width`` bytes."""
        if is_reg(op):
            return self.state.read(op)
        if is_imm(op):
            w = width or instr.operand_width
            return op.value & _MASK[min(w, 8)]
        assert is_mem(op)
        w = self._mem_width(instr, op, width)
        return self.load(self.effective_address(op), w)

    def write_op(self, instr: Instruction, op, value: int,
                 width: Optional[int] = None) -> None:
        if is_reg(op):
            vex = instr.mnemonic.startswith("v")
            self.state.write(op, value, vex=vex)
            return
        assert is_mem(op)
        w = self._mem_width(instr, op, width)
        self.store(self.effective_address(op), w, value)

    def op_width(self, instr: Instruction, op) -> int:
        if is_reg(op):
            return op.width // 8
        if is_mem(op):
            return self._mem_width(instr, op, None)
        return instr.operand_width

    # -- flags ----------------------------------------------------------

    def _set_logic_flags(self, result: int, width: int) -> None:
        bits = width * 8
        result &= (1 << bits) - 1
        self.state.set_flags(
            cf=False, of=False,
            zf=result == 0,
            sf=bool(result >> (bits - 1)),
            pf=_parity(result),
            af=False,
        )

    def _set_add_flags(self, a: int, b: int, carry_in: int,
                       width: int) -> int:
        bits = width * 8
        mask = (1 << bits) - 1
        raw = (a & mask) + (b & mask) + carry_in
        result = raw & mask
        sa, sb, sr = a >> (bits - 1) & 1, b >> (bits - 1) & 1, \
            result >> (bits - 1) & 1
        self.state.set_flags(
            cf=raw > mask,
            zf=result == 0,
            sf=bool(sr),
            of=(sa == sb) and (sr != sa),
            pf=_parity(result),
            af=((a & 0xF) + (b & 0xF) + carry_in) > 0xF,
        )
        return result

    def _set_sub_flags(self, a: int, b: int, borrow_in: int,
                       width: int) -> int:
        bits = width * 8
        mask = (1 << bits) - 1
        a &= mask
        b &= mask
        result = (a - b - borrow_in) & mask
        sa, sb, sr = a >> (bits - 1), b >> (bits - 1), result >> (bits - 1)
        self.state.set_flags(
            cf=a < b + borrow_in,
            zf=result == 0,
            sf=bool(sr),
            of=(sa != sb) and (sr != sa),
            pf=_parity(result),
            af=(a & 0xF) < (b & 0xF) + borrow_in,
        )
        return result

    # -- vector plumbing --------------------------------------------------

    def vec_width_bits(self, instr: Instruction) -> int:
        widths = [op.width for op in instr.operands
                  if is_reg(op) and op.is_vector]
        return max(widths) if widths else 128

    def read_vec(self, instr: Instruction, op, total_bits: int) -> int:
        if is_reg(op):
            return self.state.read(op) & _MASK[total_bits // 8]
        if is_imm(op):
            return op.value
        assert is_mem(op)
        w = instr.memory_access_width or total_bits // 8
        value = self.load(self.effective_address(op), w)
        return value  # zero-extended into the vector

    def fp_sources(self, instr: Instruction) -> List:
        """Data sources for an FP/vector op (VEX 3-op aware)."""
        ops = list(instr.operands)
        if len(ops) == 3 and not is_imm(ops[2]):
            return ops[1:]
        if len(ops) >= 2:
            srcs = [ops[0], ops[1]] if instr.info.reads_dst else [ops[1]]
            return srcs
        return ops


# ----------------------------------------------------------------------
# Semantics handlers
# ----------------------------------------------------------------------

_SEMANTICS: Dict[str, Callable[[Executor, Instruction], None]] = {}


def handler_plan(block: BasicBlock):
    """Pre-resolved ``(instruction, handler)`` pairs for one block.

    ``None`` handlers mark instructions that cannot execute (unknown
    semantics or explicitly unsupported); callers invoke
    ``Executor.execute_instruction`` for those so the exact error is
    raised at the exact dynamic position a naive loop would raise it.
    """
    plan = []
    for instr in block.instructions:
        info = instr.info
        handler = None if info.unsupported \
            else _SEMANTICS.get(info.semantic)
        plan.append((instr, handler))
    return plan


def _semantic(name: str):
    def register(fn):
        _SEMANTICS[name] = fn
        return fn
    return register


def _names(*aliases: str):
    def register(fn):
        for alias in aliases:
            _SEMANTICS[alias] = fn
        return fn
    return register


# -- data movement ------------------------------------------------------

@_semantic("mov")
def _mov(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    ex.write_op(instr, dst, ex.read_op(instr, src, width), width)


@_semantic("movzx")
def _movzx(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    src_w = ex.op_width(instr, src)
    ex.write_op(instr, dst, ex.read_op(instr, src, src_w))


@_semantic("movsx")
def _movsx(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    src_w = ex.op_width(instr, src)
    value = _sext(ex.read_op(instr, src, src_w), src_w)
    ex.write_op(instr, dst, value & _MASK[ex.op_width(instr, dst)])


@_semantic("lea")
def _lea(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    assert is_mem(src)
    ex.write_op(instr, dst, ex.effective_address(src)
                & _MASK[dst.width // 8])


@_semantic("xchg")
def _xchg(ex: Executor, instr: Instruction) -> None:
    a, b = instr.operands
    width = instr.operand_width
    va = ex.read_op(instr, a, width)
    vb = ex.read_op(instr, b, width)
    ex.write_op(instr, a, vb, width)
    ex.write_op(instr, b, va, width)


# -- scalar integer ALU ---------------------------------------------------

def _binary_alu(ex: Executor, instr: Instruction, compute, flag_kind: str):
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    a = ex.read_op(instr, dst, width)
    b = ex.read_op(instr, src, width)
    if is_imm(src):
        b = _sext(src.value, min(width, 8)) & _MASK[width]
    if flag_kind == "add":
        result = ex._set_add_flags(a, b, 0, width)
    elif flag_kind == "sub":
        result = ex._set_sub_flags(a, b, 0, width)
    else:
        result = compute(a, b) & _MASK[width]
        ex._set_logic_flags(result, width)
    ex.write_op(instr, dst, result, width)


@_semantic("add")
def _add(ex, instr):
    _binary_alu(ex, instr, None, "add")


@_semantic("sub")
def _sub(ex, instr):
    _binary_alu(ex, instr, None, "sub")


@_semantic("and")
def _and(ex, instr):
    _binary_alu(ex, instr, lambda a, b: a & b, "logic")


@_semantic("or")
def _or(ex, instr):
    _binary_alu(ex, instr, lambda a, b: a | b, "logic")


@_semantic("xor")
def _xor(ex, instr):
    _binary_alu(ex, instr, lambda a, b: a ^ b, "logic")


@_semantic("adc")
def _adc(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    a = ex.read_op(instr, dst, width)
    b = ex.read_op(instr, src, width)
    result = ex._set_add_flags(a, b, int(ex.state.flags["cf"]), width)
    ex.write_op(instr, dst, result, width)


@_semantic("sbb")
def _sbb(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    a = ex.read_op(instr, dst, width)
    b = ex.read_op(instr, src, width)
    result = ex._set_sub_flags(a, b, int(ex.state.flags["cf"]), width)
    ex.write_op(instr, dst, result, width)


@_semantic("cmp")
def _cmp(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = max(ex.op_width(instr, dst), 1)
    a = ex.read_op(instr, dst, width)
    b = ex.read_op(instr, src, width)
    if is_imm(src):
        b = _sext(src.value, min(width, 8)) & _MASK[width]
    ex._set_sub_flags(a, b, 0, width)


@_semantic("test")
def _test(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = max(ex.op_width(instr, dst), 1)
    result = ex.read_op(instr, dst, width) & ex.read_op(instr, src, width)
    ex._set_logic_flags(result, width)


@_semantic("inc")
def _inc(ex: Executor, instr: Instruction) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    saved_cf = ex.state.flags["cf"]
    result = ex._set_add_flags(ex.read_op(instr, op, width), 1, 0, width)
    ex.state.flags["cf"] = saved_cf  # inc/dec preserve CF
    ex.write_op(instr, op, result, width)


@_semantic("dec")
def _dec(ex: Executor, instr: Instruction) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    saved_cf = ex.state.flags["cf"]
    result = ex._set_sub_flags(ex.read_op(instr, op, width), 1, 0, width)
    ex.state.flags["cf"] = saved_cf
    ex.write_op(instr, op, result, width)


@_semantic("neg")
def _neg(ex: Executor, instr: Instruction) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    value = ex.read_op(instr, op, width)
    result = ex._set_sub_flags(0, value, 0, width)
    ex.state.flags["cf"] = value != 0
    ex.write_op(instr, op, result, width)


@_semantic("not")
def _not(ex: Executor, instr: Instruction) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    ex.write_op(instr, op, ~ex.read_op(instr, op, width) & _MASK[width],
                width)


@_semantic("bt")
def _bt(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    bit = ex.read_op(instr, src, width) % (width * 8)
    ex.state.flags["cf"] = bool(
        (ex.read_op(instr, dst, width) >> bit) & 1)


@_semantic("bswap")
def _bswap(ex: Executor, instr: Instruction) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    value = ex.read_op(instr, op, width)
    swapped = int.from_bytes(value.to_bytes(width, "little"), "big")
    ex.write_op(instr, op, swapped, width)


# -- multiply / divide ----------------------------------------------------

@_semantic("imul")
def _imul(ex: Executor, instr: Instruction) -> None:
    ops = instr.operands
    rax, rdx = lookup("rax"), lookup("rdx")
    if len(ops) == 1:
        width = ex.op_width(instr, ops[0])
        a = _sext(ex.state.read(rax) & _MASK[width], width)
        b = _sext(ex.read_op(instr, ops[0], width), width)
        product = a * b
        bits = width * 8
        ex.state.write(rax, product & _MASK[width])
        ex.state.write(rdx, (product >> bits) & _MASK[width])
        overflow = product != _sext(product & _MASK[width], width)
        ex.state.set_flags(cf=overflow, of=overflow)
        return
    dst = ops[0]
    width = ex.op_width(instr, dst)
    if len(ops) == 2:
        a = _sext(ex.read_op(instr, dst, width), width)
        b = _sext(ex.read_op(instr, ops[1], width), width)
    else:
        a = _sext(ex.read_op(instr, ops[1], width), width)
        b = _sext(ex.read_op(instr, ops[2], width), width)
    product = a * b
    truncated = product & _MASK[width]
    overflow = product != _sext(truncated, width)
    ex.state.set_flags(cf=overflow, of=overflow)
    ex.write_op(instr, dst, truncated, width)


@_semantic("mul")
def _mul(ex: Executor, instr: Instruction) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    rax, rdx = lookup("rax"), lookup("rdx")
    a = ex.state.read(rax) & _MASK[width]
    b = ex.read_op(instr, op, width)
    product = a * b
    bits = width * 8
    high = (product >> bits) & _MASK[width]
    ex.state.write(rax, product & _MASK[width])
    ex.state.write(rdx, high)
    ex.state.set_flags(cf=high != 0, of=high != 0)


def _divide(ex: Executor, instr: Instruction, signed: bool) -> None:
    op = instr.operands[0]
    width = ex.op_width(instr, op)
    bits = width * 8
    rax, rdx = lookup("rax"), lookup("rdx")
    low = ex.state.read(rax) & _MASK[width]
    high = ex.state.read(rdx) & _MASK[width]
    dividend = (high << bits) | low
    divisor = ex.read_op(instr, op, width)
    # Record the latency class BEFORE faulting: the div's timing depends
    # on operand width and on the zeroed-high-half fast path the paper's
    # case study discusses.
    ex._event.div_class = (bits, high == 0)
    if signed:
        dividend = _sext(low, width) if high in (0, _MASK[width]) \
            else dividend - (1 << (2 * bits)) \
            * ((dividend >> (2 * bits - 1)) & 1)
        divisor = _sext(divisor, width)
    if divisor == 0:
        raise ArithmeticFault("divide by zero")
    quotient = int(dividend / divisor) if signed else dividend // divisor
    remainder = dividend - quotient * divisor
    limit = 1 << (bits - 1) if signed else 1 << bits
    if not (-limit <= quotient < limit):
        raise ArithmeticFault("divide overflow")
    ex.state.write(rax, quotient & _MASK[width])
    ex.state.write(rdx, remainder & _MASK[width])


@_semantic("div")
def _div(ex, instr):
    _divide(ex, instr, signed=False)


@_semantic("idiv")
def _idiv(ex, instr):
    _divide(ex, instr, signed=True)


# -- shifts ---------------------------------------------------------------

def _shift_count(ex: Executor, instr: Instruction, width: int) -> int:
    if len(instr.operands) == 1:
        return 1
    count = ex.read_op(instr, instr.operands[1], 1)
    return count & (0x3F if width == 8 else 0x1F)


def _shift_op(ex: Executor, instr: Instruction, compute) -> None:
    dst = instr.operands[0]
    width = ex.op_width(instr, dst)
    count = _shift_count(ex, instr, width)
    value = ex.read_op(instr, dst, width)
    if count:
        result, cf = compute(value, count, width * 8)
        result &= _MASK[width]
        ex.state.set_flags(cf=cf, zf=result == 0,
                           sf=bool(result >> (width * 8 - 1)),
                           pf=_parity(result), of=False, af=False)
        ex.write_op(instr, dst, result, width)


@_names("shl", "sal")
def _shl(ex, instr):
    _shift_op(ex, instr, lambda v, c, bits:
              (v << c, bool((v >> (bits - c)) & 1) if c <= bits else False))


@_semantic("shr")
def _shr(ex, instr):
    _shift_op(ex, instr, lambda v, c, bits:
              (v >> c, bool((v >> (c - 1)) & 1)))


@_semantic("sar")
def _sar(ex, instr):
    def compute(v, c, bits):
        signed = _sext(v, bits // 8)
        return (signed >> c, bool((signed >> (c - 1)) & 1))
    _shift_op(ex, instr, compute)


@_semantic("rol")
def _rol(ex, instr):
    def compute(v, c, bits):
        c %= bits
        rotated = ((v << c) | (v >> (bits - c))) if c else v
        return rotated, bool(rotated & 1)
    _shift_op(ex, instr, compute)


@_semantic("ror")
def _ror(ex, instr):
    def compute(v, c, bits):
        c %= bits
        rotated = ((v >> c) | (v << (bits - c))) if c else v
        return rotated, bool((rotated >> (bits - 1)) & 1)
    _shift_op(ex, instr, compute)


@_names("shld", "shrd")
def _shift_double(ex: Executor, instr: Instruction) -> None:
    dst, src, cnt = instr.operands
    width = ex.op_width(instr, dst)
    bits = width * 8
    count = ex.read_op(instr, cnt, 1) & (0x3F if width == 8 else 0x1F)
    if not count:
        return
    a = ex.read_op(instr, dst, width)
    b = ex.read_op(instr, src, width)
    if instr.mnemonic == "shld":
        combined = (a << bits) | b
        result = (combined >> (bits - count)) & _MASK[width]
    else:
        combined = (b << bits) | a
        result = (combined >> count) & _MASK[width]
    ex._set_logic_flags(result, width)
    ex.write_op(instr, dst, result, width)


# -- bit scans ------------------------------------------------------------

@_names("bsf", "tzcnt")
def _bsf(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    value = ex.read_op(instr, src, width)
    if value == 0:
        ex.state.flags["zf"] = True
        if instr.mnemonic == "tzcnt":
            ex.write_op(instr, dst, width * 8, width)
        return
    ex.state.flags["zf"] = False
    ex.write_op(instr, dst, (value & -value).bit_length() - 1, width)


@_names("bsr", "lzcnt")
def _bsr(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    value = ex.read_op(instr, src, width)
    if value == 0:
        ex.state.flags["zf"] = True
        if instr.mnemonic == "lzcnt":
            ex.write_op(instr, dst, width * 8, width)
        return
    ex.state.flags["zf"] = False
    top = value.bit_length() - 1
    result = top if instr.mnemonic == "bsr" else width * 8 - 1 - top
    ex.write_op(instr, dst, result, width)


@_semantic("popcnt")
def _popcnt(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    value = ex.read_op(instr, src, width)
    ex._set_logic_flags(value, width)
    ex.write_op(instr, dst, bin(value).count("1"), width)


# -- widening / flags-driven ----------------------------------------------

@_semantic("cdq")
def _cdq(ex: Executor, instr: Instruction) -> None:
    eax = ex.state.read(lookup("eax"))
    ex.state.write(lookup("edx"),
                   0xFFFFFFFF if eax & 0x80000000 else 0)


@_semantic("cqo")
def _cqo(ex: Executor, instr: Instruction) -> None:
    rax = ex.state.read(lookup("rax"))
    ex.state.write(lookup("rdx"),
                   _MASK[8] if rax >> 63 else 0)


@_semantic("cdqe")
def _cdqe(ex: Executor, instr: Instruction) -> None:
    eax = ex.state.read(lookup("eax"))
    ex.state.write(lookup("rax"), _sext(eax, 4) & _MASK[8])


@_semantic("cmov")
def _cmov(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = ex.op_width(instr, dst)
    value = ex.read_op(instr, src, width)  # source is always read
    if evaluate_condition(instr.info.cc, ex.state.flags):
        ex.write_op(instr, dst, value, width)
    elif width == 4 and is_reg(dst):
        # 32-bit cmov still zero-extends the destination.
        ex.write_op(instr, dst, ex.read_op(instr, dst, width), width)


@_semantic("setcc")
def _setcc(ex: Executor, instr: Instruction) -> None:
    taken = evaluate_condition(instr.info.cc, ex.state.flags)
    ex.write_op(instr, instr.operands[0], int(taken), 1)


# -- stack ---------------------------------------------------------------

@_semantic("push")
def _push(ex: Executor, instr: Instruction) -> None:
    rsp = lookup("rsp")
    width = max(instr.operand_width, 8)
    sp = (ex.state.read(rsp) - width) & _MASK[8]
    ex.state.write(rsp, sp)
    ex.store(sp, width, ex.read_op(instr, instr.operands[0], width))


@_semantic("pop")
def _pop(ex: Executor, instr: Instruction) -> None:
    rsp = lookup("rsp")
    width = max(instr.operand_width, 8)
    sp = ex.state.read(rsp)
    ex.write_op(instr, instr.operands[0], ex.load(sp, width), width)
    ex.state.write(rsp, (sp + width) & _MASK[8])


@_semantic("nop")
def _nop(ex: Executor, instr: Instruction) -> None:
    return None


@_semantic("vzero")
def _vzeroupper(ex: Executor, instr: Instruction) -> None:
    for name in list(ex.state.vec):
        ex.state.vec[name] &= _MASK[16]


# -- vector moves / transfers ----------------------------------------------

@_semantic("vec_mov")
def _vec_mov(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    scalar_w = {"movss": 4, "movsd": 8}.get(instr.mnemonic.lstrip("v"))
    if scalar_w is not None:
        if is_reg(dst) and is_reg(src):
            # Merge the low lane, keep the rest of dst.
            old = ex.state.read(dst)
            value = ex.state.read(src) & _MASK[scalar_w]
            merged = (old & ~_MASK[scalar_w]) | value
            ex.state.write(dst, merged,
                           vex=instr.mnemonic.startswith("v"))
        elif is_reg(dst):
            value = ex.read_op(instr, src, scalar_w)
            ex.state.write(dst, value, vex=True)  # load zero-extends
        else:
            value = ex.state.read(src) & _MASK[scalar_w]
            ex.write_op(instr, dst, value, scalar_w)
        return
    width_bits = ex.vec_width_bits(instr)
    value = ex.read_vec(instr, src, width_bits)
    if is_reg(dst):
        ex.state.write(dst, value, vex=instr.mnemonic.startswith("v"))
    else:
        ex.write_op(instr, dst, value, width_bits // 8)


@_semantic("vec_xfer")
def _vec_xfer(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = instr.memory_access_width or \
        (8 if instr.mnemonic.endswith("q") else 4)
    value = ex.read_op(instr, src, width) & _MASK[width]
    if is_reg(dst) and dst.is_vector:
        ex.state.write(dst, value, vex=True)
    else:
        ex.write_op(instr, dst, value, width)


@_semantic("movmsk")
def _movmsk(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    lane_bits = {"movmskps": 32, "movmskpd": 64, "pmovmskb": 8}[
        instr.mnemonic.lstrip("v")]
    value = ex.state.read(src)
    lanes = fpmath.lanes_of(value, src.width, lane_bits)
    mask = 0
    for i, lane in enumerate(lanes):
        if lane >> (lane_bits - 1):
            mask |= 1 << i
    ex.write_op(instr, dst, mask, 4)


@_semantic("extract")
def _extract(ex: Executor, instr: Instruction) -> None:
    dst, src, sel = instr.operands
    width = instr.memory_access_width or 4
    lane = sel.value if is_imm(sel) else 0
    value = ex.state.read(src)
    lanes = fpmath.lanes_of(value, src.width, width * 8)
    ex.write_op(instr, dst, lanes[lane % len(lanes)], width)


@_semantic("insert")
def _insert(ex: Executor, instr: Instruction) -> None:
    if len(instr.operands) == 4:  # VEX: dst, src1, src2, imm
        dst, src1, src2, sel = instr.operands
        base = ex.state.read(src1)
    else:
        dst, src2, sel = instr.operands
        src1 = dst
        base = ex.state.read(dst)
    width = instr.memory_access_width or 4
    lane = (sel.value if is_imm(sel) else 0)
    value = ex.read_op(instr, src2, width) & _MASK[width]
    lane_bits = width * 8
    n_lanes = dst.width // lane_bits
    lane %= n_lanes
    mask = _MASK[width] << (lane * lane_bits)
    result = (base & ~mask) | (value << (lane * lane_bits))
    ex.state.write(dst, result, vex=instr.mnemonic.startswith("v"))


# -- vector logic -----------------------------------------------------------

def _vec_bitwise(ex: Executor, instr: Instruction, compute) -> None:
    dst = instr.operands[0]
    width_bits = ex.vec_width_bits(instr)
    srcs = ex.fp_sources(instr)
    values = [ex.read_vec(instr, s, width_bits) for s in srcs]
    if len(values) == 1:
        values.insert(0, ex.state.read(dst))
    result = compute(values[0], values[1]) & _MASK[width_bits // 8]
    ex.state.write(dst, result, vex=instr.mnemonic.startswith("v"))


@_semantic("vxor")
def _vxor(ex, instr):
    _vec_bitwise(ex, instr, lambda a, b: a ^ b)


@_semantic("vand")
def _vand(ex, instr):
    _vec_bitwise(ex, instr, lambda a, b: a & b)


@_semantic("vor")
def _vor(ex, instr):
    _vec_bitwise(ex, instr, lambda a, b: a | b)


@_semantic("vandn")
def _vandn(ex, instr):
    _vec_bitwise(ex, instr, lambda a, b: ~a & b)


@_semantic("ptest")
def _ptest(ex: Executor, instr: Instruction) -> None:
    a, b = instr.operands[-2:]
    width_bits = ex.vec_width_bits(instr)
    va = ex.read_vec(instr, a, width_bits)
    vb = ex.read_vec(instr, b, width_bits)
    ex.state.set_flags(zf=(va & vb) == 0, cf=(~va & vb) == 0,
                       sf=False, of=False, pf=False, af=False)


# -- vector integer ---------------------------------------------------------

def _mnemonic_lane_bits(mnemonic: str) -> int:
    name = mnemonic.lstrip("v")
    for suffix, bits in (("b", 8), ("w", 16), ("d", 32), ("q", 64)):
        if name.endswith(suffix):
            return bits
    return 32


def _vec_int_lanes(ex: Executor, instr: Instruction, compute) -> None:
    dst = instr.operands[0]
    width_bits = ex.vec_width_bits(instr)
    lane_bits = _mnemonic_lane_bits(instr.mnemonic)
    srcs = ex.fp_sources(instr)
    values = [ex.read_vec(instr, s, width_bits) for s in srcs]
    if len(values) == 1:
        values.insert(0, ex.state.read(dst) & _MASK[width_bits // 8])
    lanes = [fpmath.lanes_of(v, width_bits, lane_bits) for v in values]
    out = [compute(*vals) & ((1 << lane_bits) - 1)
           for vals in zip(*lanes)]
    ex.state.write(dst, fpmath.lanes_to_int(out, lane_bits),
                   vex=instr.mnemonic.startswith("v"))


@_semantic("vec_int")
def _vec_int(ex: Executor, instr: Instruction) -> None:
    name = instr.mnemonic.lstrip("v")
    lane_bits = _mnemonic_lane_bits(instr.mnemonic)
    half = 1 << (lane_bits - 1)

    def signed(x):
        return x - (1 << lane_bits) if x >= half else x

    ops = {
        "padd": lambda a, b: a + b,
        "psub": lambda a, b: a - b,
        "pmaxs": lambda a, b: a if signed(a) >= signed(b) else b,
        "pmins": lambda a, b: a if signed(a) <= signed(b) else b,
        "pmaxu": max, "pminu": min,
        "pavg": lambda a, b: (a + b + 1) >> 1,
    }
    if name.startswith("pabs"):
        _vec_int_lanes(ex, instr, lambda a: abs(signed(a)))
        return
    for prefix, fn in ops.items():
        if name.startswith(prefix):
            _vec_int_lanes(ex, instr, fn)
            return
    raise UnsupportedInstructionError(instr.mnemonic)


@_semantic("vec_cmp")
def _vec_cmp(ex: Executor, instr: Instruction) -> None:
    name = instr.mnemonic.lstrip("v")
    lane_bits = _mnemonic_lane_bits(instr.mnemonic)
    ones = (1 << lane_bits) - 1
    half = 1 << (lane_bits - 1)

    def signed(x):
        return x - (1 << lane_bits) if x >= half else x

    if name.startswith("pcmpeq"):
        _vec_int_lanes(ex, instr, lambda a, b: ones if a == b else 0)
    else:
        _vec_int_lanes(ex, instr,
                       lambda a, b: ones if signed(a) > signed(b) else 0)


@_semantic("vec_imul")
def _vec_imul(ex: Executor, instr: Instruction) -> None:
    name = instr.mnemonic.lstrip("v")
    if name == "pmuludq":
        _vec_int_lanes(ex, instr, lambda a, b: a * b)  # approximate lanes
    elif name == "pmaddwd":
        _vec_int_lanes(ex, instr, lambda a, b: a * b)  # approximation
    else:
        _vec_int_lanes(ex, instr, lambda a, b: a * b)


@_semantic("vec_shift")
def _vec_shift(ex: Executor, instr: Instruction) -> None:
    dst = instr.operands[0]
    width_bits = ex.vec_width_bits(instr)
    lane_bits = _mnemonic_lane_bits(instr.mnemonic)
    srcs = ex.fp_sources(instr)
    count_op = srcs[-1]
    if is_imm(count_op):
        count = count_op.value
    else:
        count = ex.read_vec(instr, count_op, 128) & _MASK[8]
    data_src = srcs[0] if len(srcs) > 1 else dst
    value = ex.read_vec(instr, data_src, width_bits)
    lanes = fpmath.lanes_of(value, width_bits, lane_bits)
    name = instr.mnemonic.lstrip("v")
    if count >= lane_bits:
        out = [0] * len(lanes)
    elif name.startswith("psll"):
        out = [(lane << count) & ((1 << lane_bits) - 1) for lane in lanes]
    elif name.startswith("psrl"):
        out = [lane >> count for lane in lanes]
    else:  # psra*
        half = 1 << (lane_bits - 1)
        out = [((lane - (1 << lane_bits)) >> count) & ((1 << lane_bits) - 1)
               if lane >= half else lane >> count for lane in lanes]
    ex.state.write(dst, fpmath.lanes_to_int(out, lane_bits),
                   vex=instr.mnemonic.startswith("v"))


# -- shuffles ----------------------------------------------------------------

@_semantic("shuffle")
def _shuffle(ex: Executor, instr: Instruction) -> None:
    """Generic shuffle family (shufps, pshufd, palignr, blends...).

    Lane routing is implemented for the common members; rarely-used
    members fall back to a deterministic byte rotation — the timing
    model only needs the dataflow, which is identical.
    """
    ops = list(instr.operands)
    imm = ops.pop().value if is_imm(ops[-1]) else 0
    dst = ops[0]
    width_bits = ex.vec_width_bits(instr)
    srcs = ops[1:] if len(ops) > 1 else [dst]
    values = [ex.read_vec(instr, s, width_bits) for s in srcs]
    name = instr.mnemonic.lstrip("v")
    if name == "pshufd":
        lanes = fpmath.lanes_of(values[0], width_bits, 32)
        out = [lanes[(imm >> (2 * i)) & 3] for i in range(len(lanes))]
        result = fpmath.lanes_to_int(out, 32)
    elif name == "shufps":
        a = fpmath.lanes_of(ex.state.read(dst), width_bits, 32)
        b = fpmath.lanes_of(values[-1], width_bits, 32)
        out = [a[imm & 3], a[(imm >> 2) & 3],
               b[(imm >> 4) & 3], b[(imm >> 6) & 3]]
        out += [0] * (width_bits // 32 - 4)
        result = fpmath.lanes_to_int(out, 32)
    elif name.startswith("pshufb"):
        data = values[0] if len(values) == 1 else values[0]
        mask_v = values[-1]
        data_b = fpmath.lanes_of(ex.state.read(dst)
                                 if len(values) == 1 else values[0],
                                 width_bits, 8)
        mask_b = fpmath.lanes_of(mask_v, width_bits, 8)
        out = [0 if m & 0x80 else data_b[m & 0x0F]
               for m in mask_b]
        result = fpmath.lanes_to_int(out, 8)
    else:
        # Deterministic fallback: byte-rotate the xor of the sources.
        mixed = 0
        for v in values:
            mixed ^= v
        rot = (imm % 16 + 1) * 8
        total = width_bits
        mixed &= (1 << total) - 1
        result = ((mixed << rot) | (mixed >> (total - rot))) \
            & ((1 << total) - 1)
    ex.state.write(dst, result, vex=instr.mnemonic.startswith("v"))


@_semantic("unpack")
def _unpack(ex: Executor, instr: Instruction) -> None:
    dst = instr.operands[0]
    width_bits = ex.vec_width_bits(instr)
    name = instr.mnemonic.lstrip("v")
    lane_bits = {"bw": 8, "dq": 32, "qdq": 64, "ps": 32, "pd": 64}
    for suffix, bits in lane_bits.items():
        if name.endswith(suffix):
            lb = bits
            break
    else:
        lb = 32
    srcs = ex.fp_sources(instr)
    values = [ex.read_vec(instr, s, width_bits) for s in srcs]
    if len(values) == 1:
        values.insert(0, ex.state.read(dst))
    a = fpmath.lanes_of(values[0], width_bits, lb)
    b = fpmath.lanes_of(values[1], width_bits, lb)
    n = len(a)
    take_high = "h" in name[:7]
    half = a[n // 2:] if take_high else a[:n // 2]
    other = b[n // 2:] if take_high else b[:n // 2]
    out = []
    for x, y in zip(half, other):
        out.extend((x, y))
    ex.state.write(dst, fpmath.lanes_to_int(out, lb),
                   vex=instr.mnemonic.startswith("v"))


@_semantic("broadcast")
def _broadcast(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands
    width = instr.memory_access_width or 4
    value = ex.read_op(instr, src, width) & _MASK[width]
    n = dst.width // (width * 8)
    ex.state.write(dst, fpmath.lanes_to_int([value] * n, width * 8),
                   vex=True)


@_semantic("insert128")
def _insert128(ex: Executor, instr: Instruction) -> None:
    dst, src1, src2, sel = instr.operands
    base = ex.state.read(src1)
    value = ex.read_vec(instr, src2, 128) & _MASK[16]
    if sel.value & 1:
        result = (base & _MASK[16]) | (value << 128)
    else:
        result = (base & ~_MASK[16]) | value
    ex.state.write(dst, result, vex=True)


@_semantic("extract128")
def _extract128(ex: Executor, instr: Instruction) -> None:
    dst, src, sel = instr.operands
    value = ex.state.read(src)
    lane = (value >> 128) if sel.value & 1 else value & _MASK[16]
    if is_reg(dst):
        ex.state.write(dst, lane & _MASK[16], vex=True)
    else:
        ex.write_op(instr, dst, lane & _MASK[16], 16)


@_semantic("perm2")
def _perm2(ex: Executor, instr: Instruction) -> None:
    dst, src1, src2, sel = instr.operands
    halves = [ex.state.read(src1) & _MASK[16],
              ex.state.read(src1) >> 128,
              ex.read_vec(instr, src2, 256) & _MASK[16],
              ex.read_vec(instr, src2, 256) >> 128]
    lo = halves[sel.value & 3] if not (sel.value & 0x08) else 0
    hi = halves[(sel.value >> 4) & 3] if not (sel.value & 0x80) else 0
    ex.state.write(dst, (hi << 128) | lo, vex=True)


# -- floating point ----------------------------------------------------------

def _fp_lane_bits(instr: Instruction) -> int:
    return 64 if instr.info.fp == "f64" else 32


def _fp_is_scalar(instr: Instruction) -> bool:
    return instr.mnemonic.lstrip("v").endswith(("ss", "sd"))


def _fp_op(ex: Executor, instr: Instruction, op) -> None:
    """Shared body of packed/scalar FP arithmetic with assist tracking."""
    dst = instr.operands[0]
    lane_bits = _fp_lane_bits(instr)
    width_bits = ex.vec_width_bits(instr)
    srcs = ex.fp_sources(instr)
    values = [ex.read_vec(instr, s,
                          lane_bits if _fp_is_scalar(instr) and is_mem(s)
                          else width_bits)
              for s in srcs]
    if instr.info.reads_dst and len(values) == 1:
        values.insert(0, ex.state.read(dst) & _MASK[width_bits // 8])
    if _fp_is_scalar(instr):
        lane_sets = [[v & ((1 << lane_bits) - 1)] for v in values]
        out, assist = fpmath.lanewise_fp(lane_sets, lane_bits, op,
                                         ex.state.ftz)
        # Scalar ops merge into the untouched upper bits: legacy SSE
        # keeps the destination's, VEX 3-op forms take src1's.
        if instr.mnemonic.startswith("v") or instr.info.reads_dst:
            base = values[0]
        else:
            base = ex.state.read(dst) & _MASK[width_bits // 8]
        result = (base & ~((1 << lane_bits) - 1)) | out[0]
    else:
        lane_sets = [fpmath.lanes_of(v, width_bits, lane_bits)
                     for v in values]
        out, assist = fpmath.lanewise_fp(lane_sets, lane_bits, op,
                                         ex.state.ftz)
        result = fpmath.lanes_to_int(out, lane_bits)
    if assist:
        ex._event.subnormal = True
    ex.state.write(dst, result, vex=instr.mnemonic.startswith("v"))


@_semantic("fp_add")
def _fp_add(ex: Executor, instr: Instruction) -> None:
    name = instr.mnemonic.lstrip("v")
    if name.startswith("add"):
        op = lambda a, b: a + b  # noqa: E731
    elif name.startswith("sub"):
        op = lambda a, b: a - b  # noqa: E731
    elif name.startswith("min"):
        op = min
    else:
        op = max
    _fp_op(ex, instr, op)


@_semantic("fp_mul")
def _fp_mul(ex, instr):
    _fp_op(ex, instr, lambda a, b: a * b)


@_semantic("fp_div")
def _fp_div(ex, instr):
    def div(a, b):
        if b == 0.0:
            return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
        return a / b
    _fp_op(ex, instr, div)


@_semantic("fp_sqrt")
def _fp_sqrt(ex, instr):
    _fp_op(ex, instr, lambda a, *rest:
           math.sqrt(a) if a >= 0 else math.nan)


@_semantic("fp_rcp")
def _fp_rcp(ex, instr):
    name = instr.mnemonic.lstrip("v")
    if name.startswith("rsqrt"):
        _fp_op(ex, instr, lambda a, *rest:
               1.0 / math.sqrt(a) if a > 0 else math.inf)
    else:
        _fp_op(ex, instr, lambda a, *rest:
               1.0 / a if a != 0 else math.inf)


@_semantic("hadd")
def _hadd(ex: Executor, instr: Instruction) -> None:
    dst = instr.operands[0]
    lane_bits = _fp_lane_bits(instr)
    width_bits = ex.vec_width_bits(instr)
    srcs = ex.fp_sources(instr)
    values = [ex.read_vec(instr, s, width_bits) for s in srcs]
    if len(values) == 1:
        values.insert(0, ex.state.read(dst))
    a = fpmath.lanes_of(values[0], width_bits, lane_bits)
    b = fpmath.lanes_of(values[1], width_bits, lane_bits)
    pairs = [(a[i], a[i + 1]) for i in range(0, len(a), 2)] + \
            [(b[i], b[i + 1]) for i in range(0, len(b), 2)]
    lane_sets = [[p[0] for p in pairs], [p[1] for p in pairs]]
    out, assist = fpmath.lanewise_fp(lane_sets, lane_bits,
                                     lambda x, y: x + y, ex.state.ftz)
    if assist:
        ex._event.subnormal = True
    ex.state.write(dst, fpmath.lanes_to_int(out, lane_bits),
                   vex=instr.mnemonic.startswith("v"))


@_semantic("fp_round")
def _fp_round(ex, instr):
    _fp_op(ex, instr, lambda a, *rest: float(round(a)))


@_semantic("fp_cmp")
def _fp_cmp(ex: Executor, instr: Instruction) -> None:
    lane_bits = _fp_lane_bits(instr)
    ones = (1 << lane_bits) - 1
    _fp_op(ex, instr, lambda a, b: -1.0 if a == b else 0.0)
    # Rewrite result lanes to all-ones/zero masks (approximation).
    dst = instr.operands[0]
    value = ex.state.read(dst)
    width_bits = dst.width
    lanes = fpmath.lanes_of(value, width_bits, lane_bits)
    out = [ones if lane else 0 for lane in lanes]
    ex.state.write(dst, fpmath.lanes_to_int(out, lane_bits),
                   vex=instr.mnemonic.startswith("v"))


@_semantic("comi")
def _comi(ex: Executor, instr: Instruction) -> None:
    a, b = instr.operands[-2:]
    lane_bits = _fp_lane_bits(instr)
    va = fpmath.bits_to_float(
        ex.read_vec(instr, a, 128) & ((1 << lane_bits) - 1), lane_bits)
    vb = fpmath.bits_to_float(
        ex.read_vec(instr, b, 128) & ((1 << lane_bits) - 1), lane_bits)
    if math.isnan(va) or math.isnan(vb):
        ex.state.set_flags(zf=True, pf=True, cf=True,
                           sf=False, of=False, af=False)
    else:
        ex.state.set_flags(zf=va == vb, pf=False, cf=va < vb,
                           sf=False, of=False, af=False)


@_semantic("cvt")
def _cvt(ex: Executor, instr: Instruction) -> None:
    dst, src = instr.operands[:2]
    name = instr.mnemonic.lstrip("v")
    if name.startswith("cvtsi2"):
        lane_bits = 32 if name.endswith("ss") else 64
        src_w = ex.op_width(instr, src) if not is_reg(src) \
            else src.width // 8
        value = float(_sext(ex.read_op(instr, src, src_w), src_w))
        bits = fpmath.float_to_bits(value, lane_bits)
        old = ex.state.read(dst)
        merged = (old & ~((1 << lane_bits) - 1)) | bits
        ex.state.write(dst, merged, vex=instr.mnemonic.startswith("v"))
        return
    if name.startswith(("cvttss2si", "cvttsd2si", "cvtss2si", "cvtsd2si")):
        lane_bits = 64 if "sd" in name else 32
        value = fpmath.bits_to_float(
            ex.read_vec(instr, src, 128) & ((1 << lane_bits) - 1),
            lane_bits)
        if math.isnan(value) or math.isinf(value):
            result = 1 << (dst.width - 1)
        else:
            result = int(value) & ((1 << dst.width) - 1)
        ex.write_op(instr, dst, result)
        return
    if name in ("cvtss2sd", "cvtsd2ss"):
        src_bits = 32 if name == "cvtss2sd" else 64
        dst_bits = 96 - src_bits
        value = fpmath.bits_to_float(
            ex.read_vec(instr, src, 128) & ((1 << src_bits) - 1), src_bits)
        bits = fpmath.float_to_bits(value, dst_bits)
        old = ex.state.read(dst)
        merged = (old & ~((1 << dst_bits) - 1)) | bits
        if fpmath.is_subnormal(value, dst_bits) and not ex.state.ftz:
            ex._event.subnormal = True
        ex.state.write(dst, merged, vex=instr.mnemonic.startswith("v"))
        return
    # Packed conversions.
    width_bits = ex.vec_width_bits(instr)
    value = ex.read_vec(instr, src, width_bits)
    if name == "cvtdq2ps":
        lanes = fpmath.lanes_of(value, width_bits, 32)
        out = [fpmath.float_to_bits(float(_sext(v, 4)), 32) for v in lanes]
        ex.state.write(dst, fpmath.lanes_to_int(out, 32), vex=True)
    elif name in ("cvtps2dq", "cvttps2dq"):
        lanes = fpmath.lanes_of(value, width_bits, 32)
        out = []
        for v in lanes:
            f = fpmath.bits_to_float(v, 32)
            out.append(0x80000000 if math.isnan(f) or math.isinf(f)
                       else int(f) & 0xFFFFFFFF)
        ex.state.write(dst, fpmath.lanes_to_int(out, 32), vex=True)
    elif name == "cvtdq2pd":
        lanes = fpmath.lanes_of(value & 0xFFFFFFFFFFFFFFFF, 64, 32)
        out = [fpmath.float_to_bits(float(_sext(v, 4)), 64) for v in lanes]
        ex.state.write(dst, fpmath.lanes_to_int(out, 64), vex=True)
    else:  # cvtpd2dq
        lanes = fpmath.lanes_of(value, width_bits, 64)
        out = []
        for v in lanes:
            f = fpmath.bits_to_float(v, 64)
            out.append(0x80000000 if math.isnan(f) or math.isinf(f)
                       else int(f) & 0xFFFFFFFF)
        out += [0] * len(out)
        ex.state.write(dst, fpmath.lanes_to_int(out, 32), vex=True)


@_semantic("fma")
def _fma(ex: Executor, instr: Instruction) -> None:
    dst, src2, src3 = instr.operands
    lane_bits = _fp_lane_bits(instr)
    width_bits = ex.vec_width_bits(instr)
    name = instr.mnemonic
    order = name[len(name.rstrip("0123456789" + "psd")) - 0:]
    digits = "".join(ch for ch in name if ch.isdigit())
    a = ex.state.read(dst) & _MASK[width_bits // 8]
    b = ex.read_vec(instr, src2, width_bits)
    c = ex.read_vec(instr, src3, width_bits)
    if digits == "132":
        mul1, mul2, addend = a, c, b
    elif digits == "213":
        mul1, mul2, addend = b, a, c
    else:  # 231
        mul1, mul2, addend = b, c, a
    negate_product = name.startswith("vfnm")
    subtract = "sub" in name

    def fma_op(x, y, z):
        product = x * y
        if negate_product:
            product = -product
        return product - z if subtract else product + z

    scalar = _fp_is_scalar(instr)
    if scalar:
        sets = [[v & ((1 << lane_bits) - 1)] for v in (mul1, mul2, addend)]
    else:
        sets = [fpmath.lanes_of(v, width_bits, lane_bits)
                for v in (mul1, mul2, addend)]
    out, assist = fpmath.lanewise_fp(sets, lane_bits, fma_op, ex.state.ftz)
    if assist:
        ex._event.subnormal = True
    if scalar:
        result = (a & ~((1 << lane_bits) - 1)) | out[0]
    else:
        result = fpmath.lanes_to_int(out, lane_bits)
    ex.state.write(dst, result, vex=True)


# Imported last: repro.runtime.plan compiles against the handlers and
# helpers defined above, so the module must be fully initialised first.
# Safe in either import order — if plan.py is imported first, its own
# top-level ``from repro.runtime.executor import ...`` runs this module
# to completion before this line executes.
from repro.runtime import plan as _plan  # noqa: E402
