"""IEEE-754 lane helpers for the vector/FP semantics.

Vector register values are plain Python ints (bit vectors).  These
helpers split them into lanes, run float math through ``struct`` (so
f32 results are correctly rounded to single precision), and detect
subnormal inputs/outputs — the events behind the paper's 20x
"gradual underflow" slowdowns and the MXCSR FTZ/DAZ mitigation.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, List, Tuple

F32_MIN_NORMAL = 2.0 ** -126
F64_MIN_NORMAL = 2.0 ** -1022


def lanes_of(value: int, total_bits: int, lane_bits: int) -> List[int]:
    """Split an integer bit-vector into little-endian lanes."""
    mask = (1 << lane_bits) - 1
    return [(value >> (i * lane_bits)) & mask
            for i in range(total_bits // lane_bits)]


def lanes_to_int(lanes: List[int], lane_bits: int) -> int:
    value = 0
    for i, lane in enumerate(lanes):
        value |= (lane & ((1 << lane_bits) - 1)) << (i * lane_bits)
    return value


def bits_to_float(bits: int, lane_bits: int) -> float:
    if lane_bits == 32:
        return struct.unpack("<f", bits.to_bytes(4, "little"))[0]
    return struct.unpack("<d", bits.to_bytes(8, "little"))[0]


def float_to_bits(value: float, lane_bits: int) -> int:
    try:
        if lane_bits == 32:
            packed = struct.pack("<f", value)
        else:
            packed = struct.pack("<d", value)
    except (OverflowError, ValueError):
        # Overflow to infinity with the right sign, like the hardware.
        inf = math.inf if value > 0 else -math.inf
        packed = struct.pack("<f" if lane_bits == 32 else "<d", inf)
    return int.from_bytes(packed, "little")


def is_subnormal(value: float, lane_bits: int) -> bool:
    if value == 0.0 or math.isnan(value) or math.isinf(value):
        return False
    limit = F32_MIN_NORMAL if lane_bits == 32 else F64_MIN_NORMAL
    return abs(value) < limit


def flush_if_subnormal(value: float, lane_bits: int, ftz: bool) -> float:
    if ftz and is_subnormal(value, lane_bits):
        return math.copysign(0.0, value)
    return value


def lanewise_fp(src_lanes: List[List[int]], lane_bits: int,
                op: Callable[..., float], ftz: bool
                ) -> Tuple[List[int], bool]:
    """Apply ``op`` lane-by-lane across the given source bit-vectors.

    Returns (result lanes, subnormal_event).  ``subnormal_event`` is
    True when, with FTZ/DAZ *off*, any input or un-flushed output lane
    is subnormal — i.e. the hardware would have taken a microcode
    assist.  With FTZ on, inputs/outputs are flushed and no assist
    fires (the paper's "disable gradual underflow" configuration).
    """
    n = len(src_lanes[0])
    out: List[int] = []
    assist = False
    for i in range(n):
        inputs = [bits_to_float(src[i], lane_bits) for src in src_lanes]
        if any(is_subnormal(x, lane_bits) for x in inputs):
            if ftz:
                inputs = [flush_if_subnormal(x, lane_bits, True)
                          for x in inputs]
            else:
                assist = True
        try:
            result = op(*inputs)
        except (ZeroDivisionError, ValueError):
            result = math.nan if any(x == 0 for x in inputs) else math.inf
        # Assist detection must look at the *rounded* target-precision
        # value: a product like 1e-55 underflows straight to zero in
        # f32 (no assist on real hardware), while 4e-45 rounds to a
        # representable subnormal (assist unless FTZ).
        bits = float_to_bits(result, lane_bits)
        rounded = bits_to_float(bits, lane_bits)
        if is_subnormal(rounded, lane_bits):
            if ftz:
                result = math.copysign(0.0, result)
                bits = float_to_bits(result, lane_bits)
            else:
                assist = True
        out.append(bits)
    return out, assist
