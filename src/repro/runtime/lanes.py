"""Batch-lane vectorized execution over a matrix of machine states.

The scalar pipeline simulates one block per Python dispatch loop even
though a corpus is full of *same-shaped* blocks — identical mnemonics
and operand shapes, differing only in immediate values.  This module
runs N such blocks in **lockstep** as one numpy matrix of machine
states (the batched counterpart of the flattened slot arrays in
:mod:`repro.runtime.state`): one compiled step per static instruction
slot updates a whole lane per dispatch.

The lane run is a *certificate*, not a measurement.  It proves that
every member of the lane — started from the canonical initial state —
computes the identical address stream, the identical fault/mapping
sequence, and the identical signature-periodicity outcome as the lane
representative.  Under that certificate the representative's scalar
profile (trace, schedule, cache annotations) transfers to every clone
byte-for-byte; only the seeded measurement noise is re-drawn per clone
(:mod:`repro.profiler.lanebatch`).  Blocks that diverge — a different
effective address, a different period, a chaos ``block_poison``, a
step-budget trip — **evacuate** to the untouched scalar path, so
results stay byte-identical by construction.

Mirrored protocols (kept in exact step with their scalar sources):

* iteration loop, rollback-on-fault, signature history and
  smallest-lag period scan: :class:`repro.simcore.fastrun.BlockRun`;
* fault interception, invalid-address and fault-budget outcomes:
  :func:`repro.profiler.mapping.map_pages`;
* per-semantic operand/flag semantics: the compiled binders in
  :mod:`repro.runtime.plan` (several are imported and re-used so the
  two compilers cannot drift apart on widths).

Kill switches mirror the ``--no-fastpath`` discipline:
``REPRO_NO_LANES=1`` (or :func:`forced`) disables lanes entirely;
``REPRO_LANE_WIDTH`` caps members per lane (width 1 degenerates to
the scalar path — no lane ever forms).  Without numpy the module
stays importable and :func:`enabled` is simply ``False``.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # numpy is optional: without it lanes are inert, never broken.
    import numpy as _np
except Exception:  # pragma: no cover - exercised via forced absence
    _np = None

from repro.isa.encoder import instruction_length
from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import is_imm, is_mem, is_reg
from repro.isa.registers import GPR_BASES, GPR_INDEX
from repro.resilience.policy import step_budget
from repro.runtime.executor import _MASK, _sext
from repro.runtime.memory import (MAX_USER_ADDRESS, MIN_USER_ADDRESS,
                                  PAGE_SIZE, page_base, page_of)
from repro.runtime.plan import _op_width
from repro.simcore.periodicity import MAX_PERIOD, is_pure_register_block
from repro.telemetry import cachestats
from repro.telemetry import core as telemetry

_MASK64 = _MASK[8]
_RAX = GPR_INDEX["rax"]
_RDX = GPR_INDEX["rdx"]
_RSP = GPR_INDEX["rsp"]

# ---------------------------------------------------------------------------
# Kill switch + lane width (mirrors repro.simcore.config)
# ---------------------------------------------------------------------------

ENV_VAR = "REPRO_NO_LANES"
WIDTH_VAR = "REPRO_LANE_WIDTH"
DEFAULT_LANE_WIDTH = 16

_DISABLING = ("1", "true", "yes", "on")

#: Programmatic override; ``None`` defers to the environment.
_override: Optional[bool] = None
_width_override: Optional[int] = None


def available() -> bool:
    """Is the numpy backend importable at all?"""
    return _np is not None


def enabled() -> bool:
    """Is batch-lane vectorized profiling active?"""
    if _np is None:
        return False
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() not in _DISABLING


def set_enabled(value: Optional[bool]) -> None:
    """Force lanes on/off; ``None`` defers to ``$REPRO_NO_LANES``."""
    global _override
    _override = None if value is None else bool(value)


@contextmanager
def forced(value: bool) -> Iterator[None]:
    """Temporarily force lanes on or off (tests, benches)."""
    global _override
    saved = _override
    _override = bool(value)
    try:
        yield
    finally:
        _override = saved


def lane_width() -> int:
    """Members per lane (``$REPRO_LANE_WIDTH``, default 16, min 1)."""
    if _width_override is not None:
        return _width_override
    raw = os.environ.get(WIDTH_VAR, "").strip()
    if not raw:
        return DEFAULT_LANE_WIDTH
    try:
        width = int(raw)
    except ValueError:
        return DEFAULT_LANE_WIDTH
    return max(1, width)


def set_lane_width(value: Optional[int]) -> None:
    """Force the lane width; ``None`` defers to ``$REPRO_LANE_WIDTH``."""
    global _width_override
    _width_override = None if value is None else max(1, int(value))


@contextmanager
def forced_width(value: int) -> Iterator[None]:
    """Temporarily force the lane width (tests, benches)."""
    global _width_override
    saved = _width_override
    _width_override = max(1, int(value))
    try:
        yield
    finally:
        _width_override = saved


# ---------------------------------------------------------------------------
# Fingerprints: the pure grouping key
# ---------------------------------------------------------------------------

class LaneGiveUp(Exception):
    """The whole lane cannot be certified; every member goes scalar."""


class _LaneFault(Exception):
    """Lane-uniform access to an unmapped page (mirrors MemoryFault)."""

    def __init__(self, address: int):
        super().__init__(f"{address:#x}")
        self.address = address


class _LaneInvalid(Exception):
    """Lane-uniform access outside user space (InvalidAddressFault)."""

    def __init__(self, address: int):
        super().__init__(f"{address:#x}")
        self.address = address


def _reg_sig(reg) -> str:
    return f"{reg.kind}{reg.slot}.{reg.width}.{reg.bit_offset}"


def _operand_sig(op) -> str:
    if is_reg(op):
        return "r:" + _reg_sig(op)
    if is_mem(op):
        base = _reg_sig(op.base) if op.base is not None else "-"
        index = _reg_sig(op.index) if op.index is not None else "-"
        return f"m:{base}:{index}:{op.scale}:{op.disp}:{op.width}"
    return "i"  # immediates vary freely within a lane


def fingerprint(block: BasicBlock) -> Optional[str]:
    """Canonical lane key of a block, or ``None`` if lane-ineligible.

    Two blocks with equal fingerprints are *shape-identical*: same
    mnemonics, operand kinds, concrete registers, memory recipes
    (base/index/scale/disp), widths, and per-instruction encoded
    lengths — only immediate *values* (within the same encoding
    class, pinned by the length component) may differ.  Equal
    fingerprints therefore imply the same unroll plan and the same
    per-instruction timing model inputs.

    The key is a plain string built without ``hash()``, so grouping
    is stable across processes and ``PYTHONHASHSEED`` values — a
    property the lane-formation tests pin.
    """
    parts: List[str] = []
    for instr in block.instructions:
        info = instr.info
        if info.semantic not in _VEC_COMPILERS:
            return None
        if info.fp or info.vec or info.unsupported:
            return None
        ops = instr.operands
        for op in ops:
            if is_reg(op):
                if op.kind != "gpr":
                    return None
            elif is_mem(op):
                for reg in (op.base, op.index):
                    if reg is not None and reg.kind != "gpr":
                        return None
        if info.semantic in ("setcc", "cmov") and info.cc not in VEC_CC:
            return None
        if info.semantic == "cmov" and not is_reg(ops[0]):
            return None  # conditional store = divergent access stream
        if info.semantic == "imul" and len(ops) < 2:
            return None  # widening rdx:rax form stays interpreted
        parts.append("|".join(
            [instr.mnemonic, info.semantic, str(len(ops)),
             str(instr.operand_width),
             str(instr.memory_access_width or 0),
             str(instruction_length(instr))]
            + [_operand_sig(op) for op in ops]))
    if not parts:
        return None
    return f"{len(parts)};{block.byte_length};" + ";".join(parts)


# ---------------------------------------------------------------------------
# Vectorized flag thunks (element-wise replicas of plan.py's binders)
# ---------------------------------------------------------------------------

if _np is not None:
    #: Parity of the low result byte (True = even) — numpy lookup
    #: table equivalent of ``repro.runtime.plan._PARITY``.
    _PARITY_NP = _np.array(
        [bin(i).count("1") % 2 == 0 for i in range(256)], dtype=bool)
    _U64 = _np.uint64


def _parity(result):
    return _PARITY_NP[(result & _U64(0xFF)).astype(_np.intp)]


def vec_add_flags(width: int) -> Callable:
    """Element-wise replica of ``plan._add_flags_binder(width)``.

    ``thunk(F, a, b, carry) -> result``: updates the six flag columns
    of the ``(n, 6)`` bool matrix ``F`` and returns the masked result
    column, exactly as the scalar thunk does per element.
    """
    bits = width * 8
    mask = _MASK[width]
    m = _U64(mask)
    s = _U64(bits - 1)

    def thunk(F, a, b, carry):
        aa = a & m
        bb = b & m
        if width == 8:
            t = aa + bb            # wraps: carry detected by compare
            result = t + carry
            cf = (t < aa) | (result < t)
        else:
            raw = aa + bb + carry  # < 2**33, no wrap
            result = raw & m
            cf = raw > m
        sa = (a >> s) & _U64(1)
        sb = (b >> s) & _U64(1)
        sr = (result >> s) & _U64(1)
        F[:, 0] = cf
        F[:, 3] = result == 0
        F[:, 4] = sr == _U64(1)
        F[:, 5] = (sa == sb) & (sr != sa)
        F[:, 1] = _parity(result)
        F[:, 2] = ((a & _U64(0xF)) + (b & _U64(0xF)) + carry) > _U64(0xF)
        return result
    return thunk


def vec_sub_flags(width: int) -> Callable:
    """Element-wise replica of ``plan._sub_flags_binder(width)``."""
    mask = _MASK[width]
    m = _U64(mask)
    s = _U64(width * 8 - 1)

    def thunk(F, a, b, borrow):
        aa = a & m
        bb = b & m
        result = (aa - bb - borrow) & m  # uint64 wrap ≡ python & mask
        sa = aa >> s
        sb = bb >> s
        sr = result >> s
        bw = borrow != 0
        # scalar: a < b + borrow — guard the b+1 == 2**64 wrap case.
        F[:, 0] = _np.where(bw, aa <= bb, aa < bb)
        F[:, 3] = result == 0
        F[:, 4] = sr == _U64(1)
        F[:, 5] = (sa != sb) & (sr != sa)
        F[:, 1] = _parity(result)
        F[:, 2] = (aa & _U64(0xF)) < ((bb & _U64(0xF)) + borrow)
        return result
    return thunk


def vec_logic_flags(width: int) -> Callable:
    """Element-wise replica of ``plan._logic_flags_binder(width)``."""
    m = _U64(_MASK[width])
    s = _U64(width * 8 - 1)

    def thunk(F, result):
        result = result & m
        F[:, 0] = False
        F[:, 5] = False
        F[:, 2] = False
        F[:, 3] = result == 0
        F[:, 4] = (result >> s) == _U64(1)
        F[:, 1] = _parity(result)
        return result
    return thunk


#: Condition evaluators over the ``(n, 6)`` flag matrix — columns
#: cf=0 pf=1 af=2 zf=3 sf=4 of=5, same expressions as
#: ``plan._CC_COMPILED`` element-wise.  Each returns a fresh bool
#: column (never a live view).
VEC_CC: Dict[str, Callable] = {
    "e": lambda F: F[:, 3].copy(), "z": lambda F: F[:, 3].copy(),
    "ne": lambda F: ~F[:, 3], "nz": lambda F: ~F[:, 3],
    "l": lambda F: F[:, 4] != F[:, 5],
    "ge": lambda F: F[:, 4] == F[:, 5],
    "le": lambda F: F[:, 3] | (F[:, 4] != F[:, 5]),
    "g": lambda F: ~F[:, 3] & (F[:, 4] == F[:, 5]),
    "b": lambda F: F[:, 0].copy(), "c": lambda F: F[:, 0].copy(),
    "ae": lambda F: ~F[:, 0], "nc": lambda F: ~F[:, 0],
    "be": lambda F: F[:, 0] | F[:, 3],
    "a": lambda F: ~F[:, 0] & ~F[:, 3],
    "s": lambda F: F[:, 4].copy(), "ns": lambda F: ~F[:, 4],
    "o": lambda F: F[:, 5].copy(), "no": lambda F: ~F[:, 5],
    "p": lambda F: F[:, 1].copy(), "np": lambda F: ~F[:, 1],
}


# ---------------------------------------------------------------------------
# Vector operand accessors
# ---------------------------------------------------------------------------

def _vreg_get(reg) -> Callable:
    """get(R) -> uint64 column of the register view (copy-safe)."""
    if reg.kind != "gpr":
        raise LaneGiveUp("non-GPR register")
    s = reg.slot
    if reg.width == 64:
        def get(R, _s=s):
            # .copy(): a full-width read must not alias the slot it
            # came from (xchg writes between its two reads/writes).
            return R.G[:, _s].copy()
        return get
    off = _U64(reg.bit_offset)
    m = _U64((1 << reg.width) - 1)

    def get(R, _s=s, _o=off, _m=m):
        return (R.G[:, _s] >> _o) & _m
    return get


def _vreg_put(reg) -> Callable:
    """put(R, value, where=None) mirroring ``MachineState.write``."""
    if reg.kind != "gpr":
        raise LaneGiveUp("non-GPR register")
    s = reg.slot
    m = _U64((1 << reg.width) - 1)
    if reg.width >= 32:
        def put(R, value, where=None, _s=s, _m=m):
            v = value & _m  # 32-bit writes zero-extend the slot
            if where is None:
                R.G[:, _s] = v
            else:
                R.G[:, _s] = _np.where(where, v, R.G[:, _s])
        return put
    keep = _U64(~reg.mask & _MASK64)
    off = _U64(reg.bit_offset)

    def put(R, value, where=None, _s=s, _m=m, _k=keep, _o=off):
        v = (R.G[:, _s] & _k) | ((value & _m) << _o)
        if where is None:
            R.G[:, _s] = v
        else:
            R.G[:, _s] = _np.where(where, v, R.G[:, _s])
    return put


def _vea(mem) -> Callable:
    """ea(R) -> uint64 address column (mirrors ``plan._ea_binder``)."""
    d = _U64(mem.disp & _MASK64)
    base = _vreg_get(mem.base) if mem.base is not None else None
    index = _vreg_get(mem.index) if mem.index is not None else None
    scale = _U64(mem.scale)
    if base is None and index is None:
        def ea(R, _d=d):
            return _np.full(R.n, _d, dtype=_np.uint64)
        return ea
    if index is None:
        def ea(R, _d=d, _b=base):
            return _b(R) + _d  # uint64 wrap ≡ & 2**64-1
        return ea
    if base is None:
        def ea(R, _d=d, _i=index, _s=scale):
            return _i(R) * _s + _d
        return ea

    def ea(R, _d=d, _b=base, _i=index, _s=scale):
        return _b(R) + _i(R) * _s + _d
    return ea


def _vread(instrs: Sequence[Instruction], op_idx: int,
           width: Optional[int] = None) -> Callable:
    """read(R) -> value column, mirroring ``plan._read_binder``.

    Immediate operands become a per-member constant column — the one
    place members of a lane are allowed to differ.
    """
    op = instrs[0].operands[op_idx]
    if is_reg(op):
        return _vreg_get(op)
    if is_imm(op):
        vals = []
        for ins in instrs:
            w = width or ins.operand_width
            vals.append(ins.operands[op_idx].value & _MASK[min(w, 8)])
        col = _np.array(vals, dtype=_np.uint64)

        def read(R, _c=col):
            return _c
        return read
    w = width if width is not None \
        else (instrs[0].memory_access_width or op.width)
    eab = _vea(op)

    def read(R, _eab=eab, _w=w):
        return R.mem_read(_eab(R), _w)
    return read


def _vwrite(instrs: Sequence[Instruction], op_idx: int,
            width: Optional[int] = None) -> Callable:
    """write(R, value, where=None), mirroring ``plan._write_binder``."""
    op = instrs[0].operands[op_idx]
    if is_reg(op):
        return _vreg_put(op)
    if not is_mem(op):
        raise LaneGiveUp("immediate destination")
    w = width if width is not None \
        else (instrs[0].memory_access_width or op.width)
    eab = _vea(op)

    def write(R, value, where=None, _eab=eab, _w=w):
        if where is not None:
            # A masked store would give lane members different access
            # streams; compilers must evacuate or give up instead.
            raise LaneGiveUp("conditional memory store")
        R.mem_write(_eab(R), _w, value)
    return write


# ---------------------------------------------------------------------------
# Per-semantic vector compilers: compile(instrs) -> step(R)
# ---------------------------------------------------------------------------

_VEC_COMPILERS: Dict[str, Callable] = {}


def _vec(*names: str):
    def register(fn):
        for name in names:
            _VEC_COMPILERS[name] = fn
        return fn
    return register


@_vec("mov")
def _v_mov(instrs):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    read = _vread(instrs, 1, width)
    write = _vwrite(instrs, 0, width)

    def step(R):
        write(R, read(R))
    return step


@_vec("movzx")
def _v_movzx(instrs):
    instr = instrs[0]
    src_w = _op_width(instr, instr.operands[1])
    read = _vread(instrs, 1, src_w)
    write = _vwrite(instrs, 0, None)

    def step(R):
        write(R, read(R))
    return step


@_vec("movsx")
def _v_movsx(instrs):
    instr = instrs[0]
    src_w = _op_width(instr, instr.operands[1])
    read = _vread(instrs, 1, src_w)
    write = _vwrite(instrs, 0, None)
    sign = _U64(1 << (src_w * 8 - 1))
    modulus = _U64((1 << (src_w * 8)) & _MASK64) if src_w < 8 else None
    dmask = _U64(_MASK[_op_width(instr, instr.operands[0])])

    def step(R):
        v = read(R)
        if modulus is not None:
            v = _np.where(v >= sign, v - modulus, v)
        write(R, v & dmask)
    return step


@_vec("lea")
def _v_lea(instrs):
    instr = instrs[0]
    dst, src = instr.operands
    if not is_mem(src) or not is_reg(dst):
        raise LaneGiveUp("non-standard lea")
    mask = _U64(_MASK[dst.width // 8])
    eab = _vea(src)
    write = _vwrite(instrs, 0, None)

    def step(R):
        write(R, eab(R) & mask)
    return step


@_vec("xchg")
def _v_xchg(instrs):
    instr = instrs[0]
    width = instr.operand_width
    ra = _vread(instrs, 0, width)
    rb = _vread(instrs, 1, width)
    wa = _vwrite(instrs, 0, width)
    wb = _vwrite(instrs, 1, width)

    def step(R):
        va = ra(R)
        vb = rb(R)
        wa(R, vb)
        wb(R, va)
    return step


def _v_binary(instrs, kind, compute=None):
    instr = instrs[0]
    dst, src = instr.operands
    width = _op_width(instr, dst)
    ra = _vread(instrs, 0, width)
    wb = _vwrite(instrs, 0, width)
    if is_imm(src):
        # sign-extended immediates, one column slot per lane member
        col = _np.array(
            [_sext(ins.operands[1].value, min(width, 8)) & _MASK[width]
             for ins in instrs], dtype=_np.uint64)

        def rb(R, _c=col):
            return _c
    else:
        rb = _vread(instrs, 1, width)
    if kind == "add":
        thunk = vec_add_flags(width)

        def step(R):
            wb(R, thunk(R.F, ra(R), rb(R), _U64(0)))
    elif kind == "sub":
        thunk = vec_sub_flags(width)

        def step(R):
            wb(R, thunk(R.F, ra(R), rb(R), _U64(0)))
    else:
        thunk = vec_logic_flags(width)

        def step(R):
            wb(R, thunk(R.F, compute(ra(R), rb(R))))
    return step


@_vec("add")
def _v_add(instrs):
    return _v_binary(instrs, "add")


@_vec("sub")
def _v_sub(instrs):
    return _v_binary(instrs, "sub")


@_vec("and")
def _v_and(instrs):
    return _v_binary(instrs, "logic", lambda a, b: a & b)


@_vec("or")
def _v_or(instrs):
    return _v_binary(instrs, "logic", lambda a, b: a | b)


@_vec("xor")
def _v_xor(instrs):
    return _v_binary(instrs, "logic", lambda a, b: a ^ b)


def _v_carry(instrs, kind):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    ra = _vread(instrs, 0, width)
    rb = _vread(instrs, 1, width)  # adc/sbb imm NOT sign-extended
    wb = _vwrite(instrs, 0, width)
    thunk = vec_add_flags(width) if kind == "add" \
        else vec_sub_flags(width)

    def step(R):
        a = ra(R)
        b = rb(R)
        carry = R.F[:, 0].astype(_np.uint64)
        wb(R, thunk(R.F, a, b, carry))
    return step


@_vec("adc")
def _v_adc(instrs):
    return _v_carry(instrs, "add")


@_vec("sbb")
def _v_sbb(instrs):
    return _v_carry(instrs, "sub")


@_vec("cmp")
def _v_cmp(instrs):
    instr = instrs[0]
    dst, src = instr.operands
    width = max(_op_width(instr, dst), 1)
    ra = _vread(instrs, 0, width)
    thunk = vec_sub_flags(width)
    if is_imm(src):
        col = _np.array(
            [_sext(ins.operands[1].value, min(width, 8)) & _MASK[width]
             for ins in instrs], dtype=_np.uint64)

        def step(R, _c=col):
            thunk(R.F, ra(R), _c, _U64(0))
        return step
    rb = _vread(instrs, 1, width)

    def step(R):
        thunk(R.F, ra(R), rb(R), _U64(0))
    return step


@_vec("test")
def _v_test(instrs):
    instr = instrs[0]
    width = max(_op_width(instr, instr.operands[0]), 1)
    ra = _vread(instrs, 0, width)
    rb = _vread(instrs, 1, width)
    thunk = vec_logic_flags(width)

    def step(R):
        thunk(R.F, ra(R) & rb(R))
    return step


def _v_incdec(instrs, kind):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    ra = _vread(instrs, 0, width)
    wb = _vwrite(instrs, 0, width)
    thunk = vec_add_flags(width) if kind == "add" \
        else vec_sub_flags(width)

    def step(R):
        saved_cf = R.F[:, 0].copy()
        result = thunk(R.F, ra(R), _U64(1), _U64(0))
        R.F[:, 0] = saved_cf  # inc/dec preserve CF
        wb(R, result)
    return step


@_vec("inc")
def _v_inc(instrs):
    return _v_incdec(instrs, "add")


@_vec("dec")
def _v_dec(instrs):
    return _v_incdec(instrs, "sub")


@_vec("neg")
def _v_neg(instrs):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    ra = _vread(instrs, 0, width)
    wb = _vwrite(instrs, 0, width)
    thunk = vec_sub_flags(width)

    def step(R):
        value = ra(R)
        result = thunk(R.F, _U64(0), value, _U64(0))
        R.F[:, 0] = value != 0
        wb(R, result)
    return step


@_vec("not")
def _v_not(instrs):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    mask = _U64(_MASK[width])
    ra = _vread(instrs, 0, width)
    wb = _vwrite(instrs, 0, width)

    def step(R):
        wb(R, ~ra(R) & mask)
    return step


@_vec("bt")
def _v_bt(instrs):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    bits = _U64(width * 8)
    rs = _vread(instrs, 1, width)
    rd = _vread(instrs, 0, width)

    def step(R):
        bit = rs(R) % bits  # src read first: access order matters
        R.F[:, 0] = ((rd(R) >> bit) & _U64(1)) != 0
    return step


@_vec("bswap")
def _v_bswap(instrs):
    instr = instrs[0]
    width = _op_width(instr, instr.operands[0])
    ra = _vread(instrs, 0, width)
    wb = _vwrite(instrs, 0, width)
    shifts = [(_U64(8 * i), _U64(8 * (width - 1 - i)))
              for i in range(width)]

    def step(R):
        value = ra(R)
        result = _np.zeros(R.n, dtype=_np.uint64)
        for down, up in shifts:
            result |= ((value >> down) & _U64(0xFF)) << up
        wb(R, result)
    return step


def _v_shift(instrs, compute):
    """Shift/rotate family — count first, value read unconditionally,
    no flag/state change where the masked count is zero (mirrors
    ``plan._c_shift``).  A memory destination with per-member
    count-zero disagreement evacuates the divergent rows: their
    access streams (read-only vs read+write) differ."""
    instr = instrs[0]
    dst = instr.operands[0]
    width = _op_width(instr, dst)
    bits = width * 8
    mask = _U64(_MASK[width])
    sign = _U64(bits - 1)
    cmask = _U64(0x3F if width == 8 else 0x1F)
    dst_is_mem = is_mem(dst)
    ra = _vread(instrs, 0, width)
    wb = _vwrite(instrs, 0, width)
    rc = _vread(instrs, 1, 1) if len(instr.operands) > 1 else None

    def step(R):
        if rc is None:
            count = _np.ones(R.n, dtype=_np.uint64)
        else:
            count = rc(R) & cmask
        nz = count != 0
        if dst_is_mem:
            R.enforce_uniform(nz, "shift-count")
            if not bool(nz[0]):
                ra(R)  # scalar still performs the read access
                return
            nz = None  # uniform: apply unconditionally
        value = ra(R)
        if nz is not None and not bool(nz.any()):
            return  # no member shifts: value was read, nothing changes
        safe = _np.where(nz, count, _U64(1)) if nz is not None else count
        result, cf = compute(value, safe, bits)
        result = result & mask
        zf = result == 0
        sf = (result >> sign) == _U64(1)
        pf = _parity(result)
        if nz is None or bool(nz.all()):
            R.F[:, 0] = cf
            R.F[:, 3] = zf
            R.F[:, 4] = sf
            R.F[:, 1] = pf
            R.F[:, 5] = False
            R.F[:, 2] = False
            wb(R, result)
        else:
            R.F[:, 0] = _np.where(nz, cf, R.F[:, 0])
            R.F[:, 3] = _np.where(nz, zf, R.F[:, 3])
            R.F[:, 4] = _np.where(nz, sf, R.F[:, 4])
            R.F[:, 1] = _np.where(nz, pf, R.F[:, 1])
            R.F[:, 5] &= ~nz
            R.F[:, 2] &= ~nz
            wb(R, result, where=nz)
    return step


@_vec("shl", "sal")
def _v_shl(instrs):
    def compute(v, c, bits):
        ok = c <= _U64(bits)
        sh = _np.where(ok, _U64(bits) - c, _U64(1))
        cf = _np.where(ok, ((v >> sh) & _U64(1)) != 0, False)
        return v << c, cf
    return _v_shift(instrs, compute)


@_vec("shr")
def _v_shr(instrs):
    def compute(v, c, bits):
        return v >> c, ((v >> (c - _U64(1))) & _U64(1)) != 0
    return _v_shift(instrs, compute)


@_vec("sar")
def _v_sar(instrs):
    def compute(v, c, bits):
        signed = v.astype(_np.int64)
        if bits < 64:
            signed = _np.where(v >= _U64(1 << (bits - 1)),
                               signed - _np.int64(1 << bits), signed)
        ci = c.astype(_np.int64)
        cf = ((signed >> (ci - 1)) & 1) != 0
        return (signed >> ci).astype(_np.uint64), cf
    return _v_shift(instrs, compute)


@_vec("rol")
def _v_rol(instrs):
    def compute(v, c, bits):
        cm = c % _U64(bits)
        rsh = _np.where(cm > 0, _U64(bits) - cm, _U64(0))
        rotated = (v << cm) | (v >> rsh)  # cm == 0 yields v exactly
        return rotated, (rotated & _U64(1)) != 0
    return _v_shift(instrs, compute)


@_vec("ror")
def _v_ror(instrs):
    def compute(v, c, bits):
        cm = c % _U64(bits)
        lsh = _np.where(cm > 0, _U64(bits) - cm, _U64(0))
        rotated = (v >> cm) | (v << lsh)
        return rotated, ((rotated >> _U64(bits - 1)) & _U64(1)) != 0
    return _v_shift(instrs, compute)


@_vec("setcc")
def _v_setcc(instrs):
    instr = instrs[0]
    cond = VEC_CC.get(instr.info.cc)
    if cond is None:
        raise LaneGiveUp("unknown condition")
    wb = _vwrite(instrs, 0, 1)

    def step(R):
        wb(R, cond(R.F).astype(_np.uint64))
    return step


@_vec("cmov")
def _v_cmov(instrs):
    instr = instrs[0]
    dst, src = instr.operands
    cond = VEC_CC.get(instr.info.cc)
    if cond is None:
        raise LaneGiveUp("unknown condition")
    if not is_reg(dst):
        raise LaneGiveUp("cmov to memory")
    width = _op_width(instr, dst)
    rs = _vread(instrs, 1, width)
    wb = _vwrite(instrs, 0, width)
    rd = _vread(instrs, 0, width) if width == 4 else None

    def step(R):
        value = rs(R)  # source is always read
        taken = cond(R.F)
        if rd is not None:
            # 32-bit cmov still zero-extends the destination.
            wb(R, _np.where(taken, value, rd(R)))
        else:
            wb(R, value, where=taken)
    return step


@_vec("push")
def _v_push(instrs):
    instr = instrs[0]
    width = max(instr.operand_width, 8)
    rs = _vread(instrs, 0, width)
    wu = _U64(width)

    def step(R):
        sp = R.G[:, _RSP] - wu
        R.G[:, _RSP] = sp
        value = rs(R)  # source read after the rsp update (scalar order)
        R.mem_write(sp, width, value)
    return step


@_vec("pop")
def _v_pop(instrs):
    instr = instrs[0]
    width = max(instr.operand_width, 8)
    wb = _vwrite(instrs, 0, width)
    wu = _U64(width)

    def step(R):
        sp = R.G[:, _RSP].copy()  # dst write may alias rsp
        value = R.mem_read(sp, width)
        wb(R, value)
        R.G[:, _RSP] = sp + wu
    return step


@_vec("nop")
def _v_nop(instrs):
    def step(R):
        return None
    return step


@_vec("cdq")
def _v_cdq(instrs):
    def step(R):
        R.G[:, _RDX] = _np.where(
            (R.G[:, _RAX] & _U64(0x80000000)) != 0,
            _U64(0xFFFFFFFF), _U64(0))
    return step


@_vec("cqo")
def _v_cqo(instrs):
    def step(R):
        R.G[:, _RDX] = _np.where(
            (R.G[:, _RAX] >> _U64(63)) != 0, _U64(_MASK64), _U64(0))
    return step


@_vec("cdqe")
def _v_cdqe(instrs):
    def step(R):
        v = R.G[:, _RAX] & _U64(0xFFFFFFFF)
        R.G[:, _RAX] = _np.where(v >= _U64(0x80000000),
                                 v - _U64(1 << 32), v)
    return step


@_vec("imul")
def _v_imul(instrs):
    instr = instrs[0]
    ops = instr.operands
    if len(ops) == 1:
        raise LaneGiveUp("widening imul")
    dst = ops[0]
    width = _op_width(instr, dst)
    sign = 1 << (width * 8 - 1)
    modulus = 1 << (width * 8)
    mask = _MASK[width]
    if len(ops) == 2:
        ra = _vread(instrs, 0, width)
        rb = _vread(instrs, 1, width)
    else:
        ra = _vread(instrs, 1, width)
        rb = _vread(instrs, 2, width)
    wb = _vwrite(instrs, 0, width)

    def step(R):
        a = ra(R)
        b = rb(R)
        n = R.n
        result = _np.empty(n, dtype=_np.uint64)
        ovf = _np.empty(n, dtype=bool)
        # exact signed products need python ints (can exceed 64 bits)
        for i in range(n):
            ai = int(a[i])
            if ai >= sign:
                ai -= modulus
            bi = int(b[i])
            if bi >= sign:
                bi -= modulus
            product = ai * bi
            truncated = product & mask
            t = truncated - modulus if truncated >= sign else truncated
            ovf[i] = product != t
            result[i] = truncated
        R.F[:, 0] = ovf
        R.F[:, 5] = ovf
        wb(R, result)
    return step


# ---------------------------------------------------------------------------
# Lane programs + cache
# ---------------------------------------------------------------------------

@dataclass
class LaneProgram:
    """One compiled lockstep program over N shape-identical blocks."""

    steps: List[Callable]
    block_len: int
    width: int
    pure: bool


_PROGRAM_CACHE: "OrderedDict[Tuple[str, ...], LaneProgram]" = OrderedDict()
_PROGRAM_CACHE_CAP = 256


def _count(name: str, value: int = 1) -> None:
    if telemetry.is_enabled():
        telemetry.count(name, value)


def program_for(blocks: Sequence[BasicBlock],
                texts: Sequence[str]) -> LaneProgram:
    """Compile (or fetch) the lockstep program for one lane."""
    key = tuple(texts)
    program = _PROGRAM_CACHE.get(key)
    if program is not None:
        _PROGRAM_CACHE.move_to_end(key)
        _count("cache.lanes.hits")
        return program
    _count("cache.lanes.misses")
    program = _build_program(blocks)
    if len(_PROGRAM_CACHE) >= _PROGRAM_CACHE_CAP:
        _PROGRAM_CACHE.popitem(last=False)
        _count("cache.lanes.evictions")
    _PROGRAM_CACHE[key] = program
    return program


def clear_program_cache() -> None:
    _PROGRAM_CACHE.clear()


def _build_program(blocks: Sequence[BasicBlock]) -> LaneProgram:
    first = blocks[0]
    steps: List[Callable] = []
    for k in range(len(first.instructions)):
        instrs = [b.instructions[k] for b in blocks]
        compiler = _VEC_COMPILERS.get(instrs[0].info.semantic)
        if compiler is None:
            raise LaneGiveUp(
                f"semantic {instrs[0].info.semantic!r} not vectorized")
        steps.append(compiler(instrs))
    return LaneProgram(steps=steps, block_len=len(first.instructions),
                       width=len(blocks),
                       pure=is_pure_register_block(first))


def _lane_cache_stats() -> cachestats.CacheStats:
    """Unified-telemetry provider for the lane program cache."""
    return cachestats.registry_stats("lanes",
                                     size=len(_PROGRAM_CACHE),
                                     capacity=_PROGRAM_CACHE_CAP)


cachestats.register_provider("lanes", _lane_cache_stats)


# ---------------------------------------------------------------------------
# The lockstep runner
# ---------------------------------------------------------------------------

@dataclass
class LaneOutcome:
    """What the certificate run predicts for every lane member.

    ``survivors[i]`` is True when member ``i`` stayed in lockstep for
    the whole run; evacuated members carry no prediction and must be
    profiled scalar.  ``failure``/``num_faults``/``pages_mapped``
    mirror :class:`repro.profiler.mapping.MappingOutcome`;
    ``witness`` is the signature-periodicity outcome
    ``(steady_from, period)`` (``None`` = ran to full unroll).
    """

    survivors: List[bool]
    failure: Optional[str]  # None | "invalid_address" | "too_many_faults"
    num_faults: int
    pages_mapped: int
    witness: Optional[Tuple[int, int]]
    evacuated: Dict[str, int] = field(default_factory=dict)


class _Runner:
    """Runs one lane in lockstep, mirroring map_pages + BlockRun."""

    def __init__(self, program: LaneProgram, unroll: int,
                 max_faults: int, init_constant: int, budget: int):
        n = program.width
        self.program = program
        self.n = n
        self.unroll = unroll
        self.max_faults = max_faults
        self.budget = budget
        init = _U64(init_constant & _MASK64)
        self.G = _np.full((n, len(GPR_BASES)), init, dtype=_np.uint64)
        self.F = _np.zeros((n, 6), dtype=bool)
        pattern = (init_constant & 0xFFFFFFFF).to_bytes(4, "little")
        row = _np.frombuffer(pattern * (PAGE_SIZE // 4), dtype=_np.uint8)
        self.FRAME = _np.tile(row, (n, 1))
        self.active = _np.ones(n, dtype=bool)
        self.mapped: set = set()
        self.num_faults = 0
        self.executed = 0
        self.evacuated: Dict[str, int] = {}

    # -- evacuation --------------------------------------------------------

    def _evacuate(self, mask, reason: str) -> None:
        mask = mask & self.active
        count = int(mask.sum())
        if not count:
            return
        self.active &= ~mask
        self.evacuated[reason] = self.evacuated.get(reason, 0) + count
        if int(self.active.sum()) <= 1:
            # only the representative left: the lane buys nothing
            raise LaneGiveUp("lane dissolved")

    def enforce_uniform(self, column, reason: str) -> None:
        """Evacuate active rows whose ``column`` differs from row 0."""
        self._evacuate(self.active & (column != column[0]), reason)

    # -- memory (mirrors VirtualMemory single-frame semantics) -------------

    def _uniform_addr(self, addr) -> int:
        self._evacuate(self.active & (addr != addr[0]), "address")
        return int(addr[0])

    def _require(self, address: int) -> None:
        if not (MIN_USER_ADDRESS <= address < MAX_USER_ADDRESS):
            raise _LaneInvalid(address)
        if page_of(address) not in self.mapped:
            raise _LaneFault(address)

    def _check_pages(self, address: int, width: int) -> None:
        self._require(address)
        end = address + width - 1
        if page_of(address) != page_of(end):
            self._require(page_base(end))

    def mem_read(self, addr, width: int):
        a = self._uniform_addr(addr)
        self._check_pages(a, width)
        off = a & (PAGE_SIZE - 1)
        value = _np.zeros(self.n, dtype=_np.uint64)
        for i in range(width):
            # single-frame mode: a page-crossing access wraps around
            # inside the one physical frame
            value |= self.FRAME[:, (off + i) % PAGE_SIZE] \
                .astype(_np.uint64) << _U64(8 * i)
        return value

    def mem_write(self, addr, width: int, value) -> None:
        a = self._uniform_addr(addr)
        self._check_pages(a, width)
        off = a & (PAGE_SIZE - 1)
        for i in range(width):
            self.FRAME[:, (off + i) % PAGE_SIZE] = \
                ((value >> _U64(8 * i)) & _U64(0xFF)).astype(_np.uint8)

    # -- the BlockRun protocol ---------------------------------------------

    def _snapshot(self):
        return (self.G.copy(), self.F.copy(), self.FRAME.copy())

    def _restore(self, snapshot) -> None:
        if snapshot is None:
            raise LaneGiveUp("fault in pure block")
        self.G[:] = snapshot[0]
        self.F[:] = snapshot[1]
        self.FRAME[:] = snapshot[2]

    def _scan_lags(self, snapshot, history):
        """Per-member smallest lag whose history signature matches."""
        G, F, FR = snapshot
        lag = _np.zeros(self.n, dtype=_np.int64)
        for k in range(1, len(history) + 1):
            hG, hF, hFR = history[-k]
            eq = ((G == hG).all(axis=1) & (F == hF).all(axis=1)
                  & (FR == hFR).all(axis=1))
            _np.copyto(lag, _np.int64(k), where=(lag == 0) & eq)
        return lag

    def row_state(self, i: int):
        """Row ``i`` as plain python values (tests, width-1 checks)."""
        return ([int(x) for x in self.G[i]],
                [bool(x) for x in self.F[i]],
                bytes(self.FRAME[i]))

    def run(self) -> LaneOutcome:
        program = self.program
        history: deque = deque(maxlen=MAX_PERIOD)
        iteration = 0
        witness = None
        failure = None
        while iteration < self.unroll:
            if self.executed > self.budget:
                # the scalar watchdog would quarantine every member
                # identically — cheaper to just re-run them scalar
                raise LaneGiveUp("step budget exceeded")
            if program.pure:
                if iteration >= 1:
                    witness = (iteration - 1, 1)
                    break
                snapshot = None
            else:
                snapshot = self._snapshot()
                lag = self._scan_lags(snapshot, history)
                rep_lag = int(lag[0])
                self._evacuate(self.active & (lag != rep_lag), "period")
                if rep_lag:
                    witness = (iteration - rep_lag, rep_lag)
                    break
            while True:
                try:
                    for step in program.steps:
                        step(self)
                    break
                except _LaneFault as fault:
                    self._restore(snapshot)
                    self.num_faults += 1
                    if self.num_faults > self.max_faults:
                        failure = "too_many_faults"
                        break
                    self.mapped.add(page_of(fault.address))
                except _LaneInvalid:
                    failure = "invalid_address"
                    break
            if failure is not None:
                break
            self.executed += program.block_len
            if snapshot is not None:
                history.append(snapshot)
            iteration += 1
        return LaneOutcome(
            survivors=[bool(x) for x in self.active],
            failure=failure,
            num_faults=self.num_faults,
            pages_mapped=len(self.mapped),
            witness=witness,
            evacuated=dict(self.evacuated))


def certify(program: LaneProgram, unroll: int, max_faults: int,
            init_constant: int,
            budget: Optional[int] = None) -> LaneOutcome:
    """Run one lane in lockstep and return its predictions.

    Raises :class:`LaneGiveUp` when the lane cannot be certified at
    all (step-budget trip, dissolution to the representative alone);
    callers send every member through the scalar path then.
    """
    if budget is None:
        budget = step_budget()
    return _Runner(program, unroll, max_faults, init_constant,
                   budget).run()
