"""Simulated virtual memory with page-table remapping.

This is the substrate for the paper's central measurement trick:
``mmapToChosenPhysPage`` — mapping *every* virtual page a basic block
touches onto a *single* physical page, so that

* no access ever faults once mapping is complete, and
* the L1 data cache (virtually indexed, physically tagged on the Intel
  parts the paper measures) sees one page's worth of lines → perfect
  hits.

A :class:`PhysicalPage` is a real byte buffer; a
:class:`VirtualMemory` maps 4 KiB-aligned virtual page numbers onto
physical pages.  Accessing an unmapped page raises
:class:`repro.errors.MemoryFault` (the simulated SIGSEGV), or
:class:`repro.errors.InvalidAddressFault` when the address can never be
mapped (Fig. 2's ``isValidAddr`` failing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidAddressFault, MemoryFault
from repro.runtime import blockplan
from repro.telemetry import cachestats

PAGE_SIZE = 4096
PAGE_SHIFT = 12

# The unified ``caches`` report section reads the page cache through
# the registry: per-instance plain-int stats (see ``VirtualMemory``)
# are drained into ``cache.page.*`` counters by the profiler harness,
# once per block and only while telemetry is enabled.
cachestats.register_provider(
    "page", lambda: cachestats.registry_stats("page", capacity=1))

#: Lowest mappable user address (the zero page is never mappable).
MIN_USER_ADDRESS = 0x1000
#: One past the highest canonical user-space address (47-bit).
MAX_USER_ADDRESS = 1 << 47


def page_of(address: int) -> int:
    """Virtual page number containing ``address``."""
    return address >> PAGE_SHIFT


def page_base(address: int) -> int:
    """Base address of the page containing ``address``."""
    return (address >> PAGE_SHIFT) << PAGE_SHIFT


def is_valid_address(address: int) -> bool:
    """Can this address ever be mapped by a user-space process?"""
    return MIN_USER_ADDRESS <= address < MAX_USER_ADDRESS


class PhysicalPage:
    """One 4 KiB physical frame."""

    __slots__ = ("frame", "data")
    _next_frame = 0

    def __init__(self) -> None:
        PhysicalPage._next_frame += 1
        #: Frame number — the cache model tags lines with it.
        self.frame: int = PhysicalPage._next_frame
        self.data = bytearray(PAGE_SIZE)

    def fill(self, constant: int) -> None:
        """Fill with the repeating 4-byte pattern of ``constant``.

        The paper fills the measurement page with a "moderately sized"
        constant so loaded values are themselves valid, mappable
        pointers.  The 4-byte repeat means dword loads yield the
        constant exactly and every f32/f64 lane reads as a small but
        *normal* float (no spurious denormal assists) — while qword
        loads yield ``0x1234560012345600``, beyond the 47-bit user
        space, so a block that dereferences a qword-loaded pointer
        fails ``isValidAddr`` and counts as unprofileable, exactly as
        with the real suite's fill.
        """
        pattern = (constant & 0xFFFFFFFF).to_bytes(4, "little")
        self.data = bytearray(pattern * (PAGE_SIZE // 4))


class VirtualMemory:
    """Page-table from virtual page numbers to physical pages."""

    def __init__(self) -> None:
        self._table: Dict[int, PhysicalPage] = {}
        # Last-page cache for the block-plan fast path: the vpage of
        # the most recent successful translation and its physical
        # page *object* (fill() replaces the .data buffer, so caching
        # the bytearray would go stale).  Validity is page-granular —
        # MIN/MAX_USER_ADDRESS are page-aligned — so a cached mapped
        # vpage implies every address inside the page is valid and
        # mapped, and an access that hits the cache could never have
        # faulted on the slow path.  Seeded only while block plans
        # are enabled so the disabled code path stays byte-for-byte
        # the historical one.
        self._fast_vpage: int = -1
        self._fast_page: Optional[PhysicalPage] = None
        # Plain-int page-cache accounting (hits = fast-path accesses,
        # misses = translations that reseeded the cache, evictions =
        # invalidations of a live entry).  Kept as attributes rather
        # than telemetry counters so the hot paths never touch the
        # hub; the harness drains them into ``cache.page.*`` once per
        # block, and only while telemetry is enabled.
        self.stat_hits: int = 0
        self.stat_misses: int = 0
        self.stat_evictions: int = 0

    # -- mapping management -------------------------------------------------

    def map_page(self, vpage: int, phys: PhysicalPage) -> None:
        self._table[vpage] = phys
        if self._fast_vpage != -1:
            self.stat_evictions += 1
        self._fast_vpage = -1
        self._fast_page = None

    def map_address(self, address: int, phys: PhysicalPage) -> None:
        if not is_valid_address(address):
            raise InvalidAddressFault(address)
        self.map_page(page_of(address), phys)

    def unmap_all(self) -> None:
        """The profiler's pre-run teardown ("unmap all pages")."""
        self._table.clear()
        if self._fast_vpage != -1:
            self.stat_evictions += 1
        self._fast_vpage = -1
        self._fast_page = None

    def is_mapped(self, address: int) -> bool:
        return page_of(address) in self._table

    @property
    def mapped_pages(self) -> Tuple[int, ...]:
        return tuple(sorted(self._table))

    @property
    def physical_pages(self) -> List[PhysicalPage]:
        """Distinct physical frames currently mapped."""
        seen: Dict[int, PhysicalPage] = {}
        for phys in self._table.values():
            seen[phys.frame] = phys
        return list(seen.values())

    def physical_address(self, address: int) -> int:
        """Translate to a (synthetic) physical address for cache tagging."""
        phys = self._page_for(address, is_write=False)
        return (phys.frame << PAGE_SHIFT) | (address & (PAGE_SIZE - 1))

    # -- data access ---------------------------------------------------------

    def _page_for(self, address: int, is_write: bool) -> PhysicalPage:
        if not is_valid_address(address):
            raise InvalidAddressFault(address, is_write=is_write)
        vpage = address >> PAGE_SHIFT
        phys = self._table.get(vpage)
        if phys is None:
            raise MemoryFault(address, is_write=is_write)
        # Seeding here (once per page transition) rather than per
        # access keeps the enabled() check off the hot path.
        if blockplan.enabled():
            self._fast_vpage = vpage
            self._fast_page = phys
            self.stat_misses += 1
        return phys

    def read_bytes(self, address: int, width: int) -> bytes:
        """Read ``width`` bytes, possibly spanning two pages."""
        end = address + width - 1
        first = self._page_for(address, is_write=False)
        offset = address & (PAGE_SIZE - 1)
        if page_of(address) == page_of(end):
            return bytes(first.data[offset:offset + width])
        split = PAGE_SIZE - offset
        second = self._page_for(page_base(end), is_write=False)
        return bytes(first.data[offset:]) + \
            bytes(second.data[:width - split])

    def write_bytes(self, address: int, data: bytes) -> None:
        end = address + len(data) - 1
        first = self._page_for(address, is_write=True)
        offset = address & (PAGE_SIZE - 1)
        if page_of(address) == page_of(end):
            first.data[offset:offset + len(data)] = data
            return
        split = PAGE_SIZE - offset
        second = self._page_for(page_base(end), is_write=True)
        first.data[offset:] = data[:split]
        second.data[:len(data) - split] = data[split:]

    def read_int(self, address: int, width: int) -> int:
        if (address >> PAGE_SHIFT) == self._fast_vpage:
            offset = address & (PAGE_SIZE - 1)
            if offset + width <= PAGE_SIZE:
                self.stat_hits += 1
                return int.from_bytes(
                    self._fast_page.data[offset:offset + width], "little")
        return int.from_bytes(self.read_bytes(address, width), "little")

    def write_int(self, address: int, width: int, value: int) -> None:
        value &= (1 << (8 * width)) - 1
        if (address >> PAGE_SHIFT) == self._fast_vpage:
            offset = address & (PAGE_SIZE - 1)
            if offset + width <= PAGE_SIZE:
                self.stat_hits += 1
                self._fast_page.data[offset:offset + width] = \
                    value.to_bytes(width, "little")
                return
        self.write_bytes(address, value.to_bytes(width, "little"))
