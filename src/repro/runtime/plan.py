"""Block-compiled execution plans.

Each :class:`BasicBlock` is compiled **once** into a flat plan: one
pre-bound step closure per static instruction slot, with everything
that the interpreted loop re-derives per dynamic instruction resolved
ahead of time — register *slot indices* instead of ``Register``
objects, operand widths as baked-in constants, effective-address
recipes with base/index/scale/disp captured, and per-opcode flag
thunks writing straight into the flattened flag array.  The executor
then runs ``step(event)`` in a tight loop instead of dict-dispatching
handlers that call ``read_op``/``write_op``/``op_width`` every time.

Two levels of caching:

* **symbolic** (module-level, keyed by block): the compiled *binders*
  — pure functions of the instruction — shared by every executor and
  every pool worker process' own copy;
* **bound** (per ``Executor``): the binders applied to one executor's
  state/memory, yielding the callable steps.

Exactness contract: a compiled step must produce byte-identical
observable behaviour to the interpreted handler — same state and
memory mutations, same ``MemAccess`` order, same flag values, same
subnormal/div-class annotations, and same exceptions at the same
dynamic position.  Any instruction whose compiler cannot guarantee
that raises :class:`_GiveUp` and falls back to a step that invokes
the interpreted handler (so ``div``'s fault-before-write ordering,
the shuffle family, conversions, etc. are untouched).  The
differential suite (``tests/simcore/test_blockplan_differential.py``)
and the ``blockplan-differential`` CI leg enforce the contract on
serialized profiles; ``REPRO_NO_BLOCKPLAN`` / ``--no-blockplan``
(see :mod:`repro.runtime.blockplan`) is the escape hatch.
"""

from __future__ import annotations

import math
import struct
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instruction import BasicBlock, Instruction
from repro.isa.operands import Mem, is_imm, is_mem, is_reg
from repro.isa.registers import GPR_INDEX
from repro.runtime import fpmath
from repro.runtime.executor import _MASK, _sext, handler_plan
from repro.runtime.trace import MemAccess
from repro.telemetry import cachestats
from repro.telemetry import core as telemetry

_MASK64 = _MASK[8]
_RAX = GPR_INDEX["rax"]
_RDX = GPR_INDEX["rdx"]
_RSP = GPR_INDEX["rsp"]

#: Parity of the low result byte, precomputed (True = even).
_PARITY = tuple(bin(i).count("1") % 2 == 0 for i in range(256))


class _GiveUp(Exception):
    """Raised at compile time when an instruction cannot be pre-bound."""


#: Per-step FP result memo cap (cleared wholesale on overflow).  An
#: unrolled block feeds each FP slot a handful of distinct inputs, so
#: the memo stays tiny; accumulating kernels that never repeat simply
#: churn it.
_MAX_FP_MEMO = 4096


# ----------------------------------------------------------------------
# Compile-time helpers (mirror Executor.op_width/_mem_width exactly)
# ----------------------------------------------------------------------

def _op_width(instr: Instruction, op) -> int:
    if is_reg(op):
        return op.width // 8
    if is_mem(op):
        return instr.memory_access_width or op.width
    return instr.operand_width


def _vec_width_bits(instr: Instruction) -> int:
    widths = [op.width for op in instr.operands
              if is_reg(op) and op.is_vector]
    return max(widths) if widths else 128


def _fp_sources(instr: Instruction) -> List:
    ops = list(instr.operands)
    if len(ops) == 3 and not is_imm(ops[2]):
        return ops[1:]
    if len(ops) >= 2:
        return [ops[0], ops[1]] if instr.info.reads_dst else [ops[1]]
    return ops


# ----------------------------------------------------------------------
# Accessor binders.  Every binder is ``bind(ex) -> closure``; the
# closures capture the executor's slot arrays / memory directly.
# ----------------------------------------------------------------------

def _reg_read_binder(reg):
    """bind(ex) -> get() returning the unsigned register view value."""
    kind = reg.kind
    if kind == "gpr":
        slot, off, width = reg.slot, reg.bit_offset, reg.width
        if width == 64:
            def bind(ex, _s=slot):
                g = ex.state._g
                return lambda: g[_s]
            return bind
        mask = (1 << width) - 1

        def bind(ex, _s=slot, _o=off, _m=mask):
            g = ex.state._g
            return lambda: (g[_s] >> _o) & _m
        return bind
    if kind == "vec":
        slot, mask = reg.slot, (1 << reg.width) - 1

        def bind(ex, _s=slot, _m=mask):
            v = ex.state._v
            return lambda: v[_s] & _m
        return bind
    if kind == "ip":
        def bind(ex):
            state = ex.state
            return lambda: state.rip
        return bind
    raise _GiveUp()


def _ea_binder(mem: Mem):
    """bind(ex) -> ea() computing the effective address (mod 2^64)."""
    disp, scale = mem.disp, mem.scale
    base_b = _reg_read_binder(mem.base) if mem.base is not None else None
    index_b = _reg_read_binder(mem.index) if mem.index is not None else None
    if base_b is None and index_b is None:
        addr = disp & _MASK64

        def bind(ex, _a=addr):
            return lambda: _a
        return bind

    def bind(ex):
        base = base_b(ex) if base_b is not None else None
        index = index_b(ex) if index_b is not None else None
        if index is None:
            return lambda: (disp + base()) & _MASK64
        if base is None:
            if scale == 1:
                return lambda: (disp + index()) & _MASK64
            return lambda: (disp + index() * scale) & _MASK64
        if scale == 1:
            return lambda: (disp + base() + index()) & _MASK64
        return lambda: (disp + base() + index() * scale) & _MASK64
    return bind


def _read_binder(instr: Instruction, op, width: Optional[int] = None):
    """bind(ex) -> read(event), mirroring ``Executor.read_op``."""
    if is_reg(op):
        kind = op.kind
        if kind == "gpr":
            slot, off, bits = op.slot, op.bit_offset, op.width
            if bits == 64:
                def bind(ex, _s=slot):
                    g = ex.state._g
                    return lambda event: g[_s]
                return bind
            mask = (1 << bits) - 1

            def bind(ex, _s=slot, _o=off, _m=mask):
                g = ex.state._g
                return lambda event: (g[_s] >> _o) & _m
            return bind
        if kind == "vec":
            slot, mask = op.slot, (1 << op.width) - 1

            def bind(ex, _s=slot, _m=mask):
                v = ex.state._v
                return lambda event: v[_s] & _m
            return bind
        if kind == "ip":
            def bind(ex):
                state = ex.state
                return lambda event: state.rip
            return bind
        raise _GiveUp()
    if is_imm(op):
        w = width or instr.operand_width
        value = op.value & _MASK[min(w, 8)]

        def bind(ex, _v=value):
            return lambda event: _v
        return bind
    assert is_mem(op)
    w = width if width is not None \
        else (instr.memory_access_width or op.width)
    eab = _ea_binder(op)

    def bind(ex, _eab=eab, _w=w):
        ea = _eab(ex)
        read_int = ex.memory.read_int

        def read(event):
            addr = ea()
            value = read_int(addr, _w)
            event.accesses.append(MemAccess(addr, _w, False))
            return value
        return read
    return bind


def _reg_write_ev_binder(reg, vex: bool):
    """bind(ex) -> write(event, value), mirroring ``MachineState.write``."""
    kind = reg.kind
    if kind == "gpr":
        slot = reg.slot
        vmask = (1 << reg.width) - 1
        if reg.width >= 32:
            def bind(ex, _s=slot, _m=vmask):
                g = ex.state._g

                def write(event, value):
                    g[_s] = value & _m
                return write
            return bind
        off = reg.bit_offset
        keep = ~reg.mask & _MASK64

        def bind(ex, _s=slot, _m=vmask, _o=off, _k=keep):
            g = ex.state._g

            def write(event, value):
                g[_s] = (g[_s] & _k) | ((value & _m) << _o)
            return write
        return bind
    if kind == "vec":
        slot = reg.slot
        vmask = (1 << reg.width) - 1
        if reg.width == 256 or vex:
            def bind(ex, _s=slot, _m=vmask):
                v = ex.state._v

                def write(event, value):
                    v[_s] = value & _m
                return write
            return bind

        def bind(ex, _s=slot, _m=vmask):
            v = ex.state._v

            def write(event, value):
                v[_s] = (v[_s] & ~_m) | (value & _m)
            return write
        return bind
    raise _GiveUp()


def _write_binder(instr: Instruction, op, width: Optional[int] = None):
    """bind(ex) -> write(event, value), mirroring ``Executor.write_op``."""
    if is_reg(op):
        return _reg_write_ev_binder(op, instr.mnemonic.startswith("v"))
    if not is_mem(op):
        raise _GiveUp()
    w = width if width is not None \
        else (instr.memory_access_width or op.width)
    eab = _ea_binder(op)

    def bind(ex, _eab=eab, _w=w):
        ea = _eab(ex)
        write_int = ex.memory.write_int

        def write(event, value):
            addr = ea()
            write_int(addr, _w, value)
            event.accesses.append(MemAccess(addr, _w, True))
        return write
    return bind


def _vec_read_binder(instr: Instruction, op, total_bits: int):
    """bind(ex) -> read(event), mirroring ``Executor.read_vec``."""
    mask = _MASK[total_bits // 8]
    if is_reg(op):
        if op.kind == "vec":
            slot = op.slot
            m = ((1 << op.width) - 1) & mask

            def bind(ex, _s=slot, _m=m):
                v = ex.state._v
                return lambda event: v[_s] & _m
            return bind
        if op.kind == "gpr":
            slot, off = op.slot, op.bit_offset
            m = ((1 << op.width) - 1) if op.width < 64 else _MASK64
            m &= mask

            def bind(ex, _s=slot, _o=off, _m=m):
                g = ex.state._g
                return lambda event: (g[_s] >> _o) & _m
            return bind
        raise _GiveUp()
    if is_imm(op):
        value = op.value

        def bind(ex, _v=value):
            return lambda event: _v
        return bind
    assert is_mem(op)
    w = instr.memory_access_width or total_bits // 8
    eab = _ea_binder(op)

    def bind(ex, _eab=eab, _w=w):
        ea = _eab(ex)
        read_int = ex.memory.read_int

        def read(event):
            addr = ea()
            value = read_int(addr, _w)
            event.accesses.append(MemAccess(addr, _w, False))
            return value
        return read
    return bind


# ----------------------------------------------------------------------
# Flag thunks.  Flag slot order (FLAG_NAMES): cf=0 pf=1 af=2 zf=3 sf=4
# of=5.  Each thunk replicates the corresponding Executor._set_* method
# bit for bit, writing into the flattened flag array.
# ----------------------------------------------------------------------

def _add_flags_binder(width: int):
    bits = width * 8
    mask = (1 << bits) - 1
    sign = bits - 1

    def bind(ex):
        f = ex.state._f

        def thunk(a, b, carry):
            raw = (a & mask) + (b & mask) + carry
            result = raw & mask
            sa = (a >> sign) & 1
            sb = (b >> sign) & 1
            sr = (result >> sign) & 1
            f[0] = raw > mask
            f[3] = result == 0
            f[4] = sr == 1
            f[5] = sa == sb and sr != sa
            f[1] = _PARITY[result & 0xFF]
            f[2] = ((a & 0xF) + (b & 0xF) + carry) > 0xF
            return result
        return thunk
    return bind


def _sub_flags_binder(width: int):
    bits = width * 8
    mask = (1 << bits) - 1
    sign = bits - 1

    def bind(ex):
        f = ex.state._f

        def thunk(a, b, borrow):
            a &= mask
            b &= mask
            result = (a - b - borrow) & mask
            sa = a >> sign
            sb = b >> sign
            sr = result >> sign
            f[0] = a < b + borrow
            f[3] = result == 0
            f[4] = sr == 1
            f[5] = sa != sb and sr != sa
            f[1] = _PARITY[result & 0xFF]
            f[2] = (a & 0xF) < (b & 0xF) + borrow
            return result
        return thunk
    return bind


def _logic_flags_binder(width: int):
    bits = width * 8
    mask = (1 << bits) - 1
    sign = bits - 1

    def bind(ex):
        f = ex.state._f

        def thunk(result):
            result &= mask
            f[0] = False
            f[5] = False
            f[2] = False
            f[3] = result == 0
            f[4] = (result >> sign) == 1
            f[1] = _PARITY[result & 0xFF]
            return result
        return thunk
    return bind


#: Condition evaluators over the flag array — same expressions as
#: ``evaluate_condition``, so non-bool flag values (tests poke raw
#: ints through the views) propagate identically.
_CC_COMPILED: Dict[str, Callable] = {
    "e": lambda f: f[3], "z": lambda f: f[3],
    "ne": lambda f: not f[3], "nz": lambda f: not f[3],
    "l": lambda f: f[4] != f[5], "ge": lambda f: f[4] == f[5],
    "le": lambda f: f[3] or f[4] != f[5],
    "g": lambda f: not f[3] and f[4] == f[5],
    "b": lambda f: f[0], "c": lambda f: f[0],
    "ae": lambda f: not f[0], "nc": lambda f: not f[0],
    "be": lambda f: f[0] or f[3],
    "a": lambda f: not f[0] and not f[3],
    "s": lambda f: f[4], "ns": lambda f: not f[4],
    "o": lambda f: f[5], "no": lambda f: not f[5],
    "p": lambda f: f[1], "np": lambda f: not f[1],
}


# ----------------------------------------------------------------------
# FP kernel: lanewise_fp with pre-bound struct codecs.
# ----------------------------------------------------------------------

def _make_fp_kernel(lane_bits: int, op):
    """Pre-bound replica of :func:`repro.runtime.fpmath.lanewise_fp`."""
    codec = struct.Struct("<f" if lane_bits == 32 else "<d")
    pack, unpack = codec.pack, codec.unpack
    nbytes = lane_bits // 8
    limit = fpmath.F32_MIN_NORMAL if lane_bits == 32 \
        else fpmath.F64_MIN_NORMAL
    copysign = math.copysign
    inf, nan = math.inf, math.nan

    def kernel(src_lanes, ftz):
        n = len(src_lanes[0])
        out = []
        append = out.append
        assist = False
        for i in range(n):
            inputs = [unpack(src[i].to_bytes(nbytes, "little"))[0]
                      for src in src_lanes]
            # x != 0.0 and -limit < x < limit  ==  is_subnormal(x):
            # NaN fails the range test, ±inf fails it, ±0.0 fails the
            # first test.
            has_subnormal = False
            for x in inputs:
                if x != 0.0 and -limit < x < limit:
                    has_subnormal = True
                    break
            if has_subnormal:
                if ftz:
                    inputs = [copysign(0.0, x)
                              if x != 0.0 and -limit < x < limit else x
                              for x in inputs]
                else:
                    assist = True
            try:
                result = op(*inputs)
            except (ZeroDivisionError, ValueError):
                result = nan if any(x == 0 for x in inputs) else inf
            try:
                bits = int.from_bytes(pack(result), "little")
            except (OverflowError, ValueError):
                bits = int.from_bytes(
                    pack(inf if result > 0 else -inf), "little")
            rounded = unpack(bits.to_bytes(nbytes, "little"))[0]
            if rounded != 0.0 and -limit < rounded < limit:
                if ftz:
                    result = copysign(0.0, result)
                    bits = int.from_bytes(pack(result), "little")
                else:
                    assist = True
            append(bits)
        return out, assist
    return kernel


# ----------------------------------------------------------------------
# Per-semantic compilers: compile(instr) -> binder, or raise _GiveUp.
# ----------------------------------------------------------------------

_COMPILERS: Dict[str, Callable[[Instruction], Callable]] = {}


def _compiler(*names: str):
    def register(fn):
        for name in names:
            _COMPILERS[name] = fn
        return fn
    return register


@_compiler("mov")
def _c_mov(instr):
    dst, src = instr.operands
    width = _op_width(instr, dst)
    rb = _read_binder(instr, src, width)
    wb = _write_binder(instr, dst, width)

    def bind(ex):
        read, write = rb(ex), wb(ex)

        def step(event):
            write(event, read(event))
        return step
    return bind


@_compiler("movzx")
def _c_movzx(instr):
    dst, src = instr.operands
    src_w = _op_width(instr, src)
    rb = _read_binder(instr, src, src_w)
    wb = _write_binder(instr, dst, None)

    def bind(ex):
        read, write = rb(ex), wb(ex)

        def step(event):
            write(event, read(event))
        return step
    return bind


@_compiler("movsx")
def _c_movsx(instr):
    dst, src = instr.operands
    src_w = _op_width(instr, src)
    rb = _read_binder(instr, src, src_w)
    wb = _write_binder(instr, dst, None)
    sign = 1 << (src_w * 8 - 1)
    modulus = 1 << (src_w * 8)
    dmask = _MASK[_op_width(instr, dst)]

    def bind(ex):
        read, write = rb(ex), wb(ex)

        def step(event):
            v = read(event)
            if v >= sign:
                v -= modulus
            write(event, v & dmask)
        return step
    return bind


@_compiler("lea")
def _c_lea(instr):
    dst, src = instr.operands
    if not is_mem(src) or not is_reg(dst):
        raise _GiveUp()
    mask = _MASK[dst.width // 8]
    eab = _ea_binder(src)
    wb = _write_binder(instr, dst, None)

    def bind(ex):
        ea, write = eab(ex), wb(ex)

        def step(event):
            write(event, ea() & mask)
        return step
    return bind


@_compiler("xchg")
def _c_xchg(instr):
    a, b = instr.operands
    width = instr.operand_width
    ra = _read_binder(instr, a, width)
    rb = _read_binder(instr, b, width)
    wa = _write_binder(instr, a, width)
    wb = _write_binder(instr, b, width)

    def bind(ex):
        read_a, read_b = ra(ex), rb(ex)
        write_a, write_b = wa(ex), wb(ex)

        def step(event):
            va = read_a(event)
            vb = read_b(event)
            write_a(event, vb)
            write_b(event, va)
        return step
    return bind


def _c_binary(instr, kind, compute=None):
    """add/sub/and/or/xor — mirrors ``_binary_alu`` (imm sign-extend)."""
    dst, src = instr.operands
    width = _op_width(instr, dst)
    ra = _read_binder(instr, dst, width)
    wb = _write_binder(instr, dst, width)
    imm_b = None
    rb = None
    if is_imm(src):
        imm_b = _sext(src.value, min(width, 8)) & _MASK[width]
    else:
        rb = _read_binder(instr, src, width)
    if kind == "add":
        fb = _add_flags_binder(width)
    elif kind == "sub":
        fb = _sub_flags_binder(width)
    else:
        fb = _logic_flags_binder(width)

    def bind(ex):
        read_dst = ra(ex)
        read_src = rb(ex) if rb is not None else None
        write = wb(ex)
        thunk = fb(ex)
        if kind in ("add", "sub"):
            if read_src is None:
                def step(event, _b=imm_b):
                    write(event, thunk(read_dst(event), _b, 0))
            else:
                def step(event):
                    write(event,
                          thunk(read_dst(event), read_src(event), 0))
        else:
            if read_src is None:
                def step(event, _b=imm_b):
                    write(event, thunk(compute(read_dst(event), _b)))
            else:
                def step(event):
                    write(event,
                          thunk(compute(read_dst(event),
                                        read_src(event))))
        return step
    return bind


@_compiler("add")
def _c_add(instr):
    return _c_binary(instr, "add")


@_compiler("sub")
def _c_sub(instr):
    return _c_binary(instr, "sub")


@_compiler("and")
def _c_and(instr):
    return _c_binary(instr, "logic", lambda a, b: a & b)


@_compiler("or")
def _c_or(instr):
    return _c_binary(instr, "logic", lambda a, b: a | b)


@_compiler("xor")
def _c_xor(instr):
    return _c_binary(instr, "logic", lambda a, b: a ^ b)


def _c_carry(instr, kind):
    """adc/sbb — imm operands are NOT sign-extended (read_op path)."""
    dst, src = instr.operands
    width = _op_width(instr, dst)
    ra = _read_binder(instr, dst, width)
    rb = _read_binder(instr, src, width)
    wb = _write_binder(instr, dst, width)
    fb = _add_flags_binder(width) if kind == "add" \
        else _sub_flags_binder(width)

    def bind(ex):
        read_dst, read_src = ra(ex), rb(ex)
        write, thunk = wb(ex), fb(ex)
        f = ex.state._f

        def step(event):
            a = read_dst(event)
            b = read_src(event)
            write(event, thunk(a, b, int(f[0])))
        return step
    return bind


@_compiler("adc")
def _c_adc(instr):
    return _c_carry(instr, "add")


@_compiler("sbb")
def _c_sbb(instr):
    return _c_carry(instr, "sub")


@_compiler("cmp")
def _c_cmp(instr):
    dst, src = instr.operands
    width = max(_op_width(instr, dst), 1)
    ra = _read_binder(instr, dst, width)
    fb = _sub_flags_binder(width)
    if is_imm(src):
        b_const = _sext(src.value, min(width, 8)) & _MASK[width]

        def bind(ex):
            read_dst, thunk = ra(ex), fb(ex)

            def step(event, _b=b_const):
                thunk(read_dst(event), _b, 0)
            return step
        return bind
    rb = _read_binder(instr, src, width)

    def bind(ex):
        read_dst, read_src, thunk = ra(ex), rb(ex), fb(ex)

        def step(event):
            thunk(read_dst(event), read_src(event), 0)
        return step
    return bind


@_compiler("test")
def _c_test(instr):
    dst, src = instr.operands
    width = max(_op_width(instr, dst), 1)
    ra = _read_binder(instr, dst, width)
    rb = _read_binder(instr, src, width)
    fb = _logic_flags_binder(width)

    def bind(ex):
        read_dst, read_src, thunk = ra(ex), rb(ex), fb(ex)

        def step(event):
            thunk(read_dst(event) & read_src(event))
        return step
    return bind


def _c_incdec(instr, kind):
    op = instr.operands[0]
    width = _op_width(instr, op)
    ra = _read_binder(instr, op, width)
    wb = _write_binder(instr, op, width)
    fb = _add_flags_binder(width) if kind == "add" \
        else _sub_flags_binder(width)

    def bind(ex):
        read, write, thunk = ra(ex), wb(ex), fb(ex)
        f = ex.state._f

        def step(event):
            saved_cf = f[0]
            result = thunk(read(event), 1, 0)
            f[0] = saved_cf  # inc/dec preserve CF
            write(event, result)
        return step
    return bind


@_compiler("inc")
def _c_inc(instr):
    return _c_incdec(instr, "add")


@_compiler("dec")
def _c_dec(instr):
    return _c_incdec(instr, "sub")


@_compiler("neg")
def _c_neg(instr):
    op = instr.operands[0]
    width = _op_width(instr, op)
    ra = _read_binder(instr, op, width)
    wb = _write_binder(instr, op, width)
    fb = _sub_flags_binder(width)

    def bind(ex):
        read, write, thunk = ra(ex), wb(ex), fb(ex)
        f = ex.state._f

        def step(event):
            value = read(event)
            result = thunk(0, value, 0)
            f[0] = value != 0
            write(event, result)
        return step
    return bind


@_compiler("not")
def _c_not(instr):
    op = instr.operands[0]
    width = _op_width(instr, op)
    mask = _MASK[width]
    ra = _read_binder(instr, op, width)
    wb = _write_binder(instr, op, width)

    def bind(ex):
        read, write = ra(ex), wb(ex)

        def step(event):
            write(event, ~read(event) & mask)
        return step
    return bind


@_compiler("bt")
def _c_bt(instr):
    dst, src = instr.operands
    width = _op_width(instr, dst)
    bits = width * 8
    rs = _read_binder(instr, src, width)
    rd = _read_binder(instr, dst, width)

    def bind(ex):
        read_src, read_dst = rs(ex), rd(ex)
        f = ex.state._f

        def step(event):
            bit = read_src(event) % bits
            f[0] = bool((read_dst(event) >> bit) & 1)
        return step
    return bind


@_compiler("bswap")
def _c_bswap(instr):
    op = instr.operands[0]
    width = _op_width(instr, op)
    ra = _read_binder(instr, op, width)
    wb = _write_binder(instr, op, width)

    def bind(ex):
        read, write = ra(ex), wb(ex)

        def step(event):
            value = read(event)
            write(event, int.from_bytes(
                value.to_bytes(width, "little"), "big"))
        return step
    return bind


def _c_shift(instr, compute):
    """Shift/rotate family — count first, value read unconditionally,
    no flag/state change when the masked count is zero."""
    dst = instr.operands[0]
    width = _op_width(instr, dst)
    bits = width * 8
    mask = _MASK[width]
    sign = bits - 1
    cmask = 0x3F if width == 8 else 0x1F
    ra = _read_binder(instr, dst, width)
    wb = _write_binder(instr, dst, width)
    rc = _read_binder(instr, instr.operands[1], 1) \
        if len(instr.operands) > 1 else None

    def bind(ex):
        read, write = ra(ex), wb(ex)
        read_count = rc(ex) if rc is not None else None
        f = ex.state._f

        def step(event):
            count = 1 if read_count is None \
                else read_count(event) & cmask
            value = read(event)
            if count:
                result, cf = compute(value, count, bits)
                result &= mask
                f[0] = cf
                f[3] = result == 0
                f[4] = (result >> sign) == 1
                f[1] = _PARITY[result & 0xFF]
                f[5] = False
                f[2] = False
                write(event, result)
        return step
    return bind


@_compiler("shl", "sal")
def _c_shl(instr):
    return _c_shift(instr, lambda v, c, bits:
                    (v << c,
                     bool((v >> (bits - c)) & 1) if c <= bits else False))


@_compiler("shr")
def _c_shr(instr):
    return _c_shift(instr, lambda v, c, bits:
                    (v >> c, bool((v >> (c - 1)) & 1)))


@_compiler("sar")
def _c_sar(instr):
    def compute(v, c, bits):
        signed = _sext(v, bits // 8)
        return (signed >> c, bool((signed >> (c - 1)) & 1))
    return _c_shift(instr, compute)


@_compiler("rol")
def _c_rol(instr):
    def compute(v, c, bits):
        c %= bits
        rotated = ((v << c) | (v >> (bits - c))) if c else v
        return rotated, bool(rotated & 1)
    return _c_shift(instr, compute)


@_compiler("ror")
def _c_ror(instr):
    def compute(v, c, bits):
        c %= bits
        rotated = ((v >> c) | (v << (bits - c))) if c else v
        return rotated, bool((rotated >> (bits - 1)) & 1)
    return _c_shift(instr, compute)


@_compiler("setcc")
def _c_setcc(instr):
    cond = _CC_COMPILED.get(instr.info.cc)
    if cond is None:
        raise _GiveUp()
    wb = _write_binder(instr, instr.operands[0], 1)

    def bind(ex):
        write = wb(ex)
        f = ex.state._f

        def step(event):
            write(event, int(cond(f)))
        return step
    return bind


@_compiler("cmov")
def _c_cmov(instr):
    dst, src = instr.operands
    cond = _CC_COMPILED.get(instr.info.cc)
    if cond is None:
        raise _GiveUp()
    width = _op_width(instr, dst)
    rs = _read_binder(instr, src, width)
    wb = _write_binder(instr, dst, width)
    rd = _read_binder(instr, dst, width) \
        if width == 4 and is_reg(dst) else None

    def bind(ex):
        read_src, write = rs(ex), wb(ex)
        read_dst = rd(ex) if rd is not None else None
        f = ex.state._f

        def step(event):
            value = read_src(event)  # source is always read
            if cond(f):
                write(event, value)
            elif read_dst is not None:
                # 32-bit cmov still zero-extends the destination.
                write(event, read_dst(event))
        return step
    return bind


@_compiler("push")
def _c_push(instr):
    width = max(instr.operand_width, 8)
    rs = _read_binder(instr, instr.operands[0], width)

    def bind(ex):
        read = rs(ex)
        g = ex.state._g
        write_int = ex.memory.write_int

        def step(event):
            sp = (g[_RSP] - width) & _MASK64
            g[_RSP] = sp
            value = read(event)
            write_int(sp, width, value)
            event.accesses.append(MemAccess(sp, width, True))
        return step
    return bind


@_compiler("pop")
def _c_pop(instr):
    width = max(instr.operand_width, 8)
    wb = _write_binder(instr, instr.operands[0], width)

    def bind(ex):
        write = wb(ex)
        g = ex.state._g
        read_int = ex.memory.read_int

        def step(event):
            sp = g[_RSP]
            value = read_int(sp, width)
            event.accesses.append(MemAccess(sp, width, False))
            write(event, value)
            g[_RSP] = (sp + width) & _MASK64
        return step
    return bind


@_compiler("nop")
def _c_nop(instr):
    def bind(ex):
        def step(event):
            return None
        return step
    return bind


@_compiler("cdq")
def _c_cdq(instr):
    def bind(ex):
        g = ex.state._g

        def step(event):
            g[_RDX] = 0xFFFFFFFF if g[_RAX] & 0x80000000 else 0
        return step
    return bind


@_compiler("cqo")
def _c_cqo(instr):
    def bind(ex):
        g = ex.state._g

        def step(event):
            g[_RDX] = _MASK64 if g[_RAX] >> 63 else 0
        return step
    return bind


@_compiler("cdqe")
def _c_cdqe(instr):
    def bind(ex):
        g = ex.state._g

        def step(event):
            v = g[_RAX] & 0xFFFFFFFF
            if v >= 0x80000000:
                v -= 1 << 32
            g[_RAX] = v & _MASK64
        return step
    return bind


@_compiler("imul")
def _c_imul(instr):
    ops = instr.operands
    if len(ops) == 1:
        raise _GiveUp()  # rdx:rax widening form stays interpreted
    dst = ops[0]
    width = _op_width(instr, dst)
    sign = 1 << (width * 8 - 1)
    modulus = 1 << (width * 8)
    mask = _MASK[width]
    if len(ops) == 2:
        ra = _read_binder(instr, dst, width)
        rb = _read_binder(instr, ops[1], width)
    else:
        ra = _read_binder(instr, ops[1], width)
        rb = _read_binder(instr, ops[2], width)
    wb = _write_binder(instr, dst, width)

    def bind(ex):
        read_a, read_b, write = ra(ex), rb(ex), wb(ex)
        f = ex.state._f

        def step(event):
            a = read_a(event)
            if a >= sign:
                a -= modulus
            b = read_b(event)
            if b >= sign:
                b -= modulus
            product = a * b
            truncated = product & mask
            t = truncated - modulus if truncated >= sign else truncated
            overflow = product != t
            f[0] = overflow
            f[5] = overflow
            write(event, truncated)
        return step
    return bind


@_compiler("vzero")
def _c_vzero(instr):
    mask128 = _MASK[16]

    def bind(ex):
        v = ex.state._v

        def step(event):
            for i in range(16):
                v[i] &= mask128
        return step
    return bind


@_compiler("vec_mov")
def _c_vec_mov(instr):
    dst, src = instr.operands
    vex = instr.mnemonic.startswith("v")
    scalar_w = {"movss": 4, "movsd": 8}.get(instr.mnemonic.lstrip("v"))
    if scalar_w is not None:
        smask = _MASK[scalar_w]
        if is_reg(dst) and is_reg(src):
            if dst.kind != "vec" or src.kind != "vec":
                raise _GiveUp()
            rd = _read_binder(instr, dst, None)
            rs = _read_binder(instr, src, None)
            wb = _reg_write_ev_binder(dst, vex)
            inv = ~smask

            def bind(ex):
                read_dst, read_src = rd(ex), rs(ex)
                write = wb(ex)

                def step(event):
                    old = read_dst(event)
                    value = read_src(event) & smask
                    write(event, (old & inv) | value)
                return step
            return bind
        if is_reg(dst):
            if dst.kind != "vec":
                raise _GiveUp()
            rs = _read_binder(instr, src, scalar_w)
            wb = _reg_write_ev_binder(dst, True)  # load zero-extends

            def bind(ex):
                read, write = rs(ex), wb(ex)

                def step(event):
                    write(event, read(event))
                return step
            return bind
        if not is_reg(src) or src.kind != "vec":
            raise _GiveUp()
        rs = _read_binder(instr, src, None)
        wb = _write_binder(instr, dst, scalar_w)

        def bind(ex):
            read, write = rs(ex), wb(ex)

            def step(event):
                write(event, read(event) & smask)
            return step
        return bind
    width_bits = _vec_width_bits(instr)
    rs = _vec_read_binder(instr, src, width_bits)
    if is_reg(dst):
        if dst.kind != "vec":
            raise _GiveUp()
        wb = _reg_write_ev_binder(dst, vex)
    else:
        wb = _write_binder(instr, dst, width_bits // 8)

    def bind(ex):
        read, write = rs(ex), wb(ex)

        def step(event):
            write(event, read(event))
        return step
    return bind


@_compiler("vec_xfer")
def _c_vec_xfer(instr):
    dst, src = instr.operands
    width = instr.memory_access_width or \
        (8 if instr.mnemonic.endswith("q") else 4)
    mask = _MASK[width]
    rs = _read_binder(instr, src, width)
    if is_reg(dst) and dst.is_vector:
        wb = _reg_write_ev_binder(dst, True)
    else:
        wb = _write_binder(instr, dst, width)

    def bind(ex):
        read, write = rs(ex), wb(ex)

        def step(event):
            write(event, read(event) & mask)
        return step
    return bind


def _c_vec_bitwise(instr, compute):
    dst = instr.operands[0]
    if not is_reg(dst) or dst.kind != "vec":
        raise _GiveUp()
    width_bits = _vec_width_bits(instr)
    mask = _MASK[width_bits // 8]
    srcs = _fp_sources(instr)
    rbs = [_vec_read_binder(instr, s, width_bits) for s in srcs]
    wb = _reg_write_ev_binder(dst, instr.mnemonic.startswith("v"))
    if len(rbs) == 1:
        rd = _read_binder(instr, dst, None)  # unmasked dst read

        def bind(ex):
            read_src = rbs[0](ex)
            read_dst = rd(ex)
            write = wb(ex)

            def step(event):
                b = read_src(event)
                a = read_dst(event)
                write(event, compute(a, b) & mask)
            return step
        return bind
    if len(rbs) != 2:
        raise _GiveUp()
    ra, rb = rbs

    def bind(ex):
        read_a, read_b = ra(ex), rb(ex)
        write = wb(ex)

        def step(event):
            a = read_a(event)
            b = read_b(event)
            write(event, compute(a, b) & mask)
        return step
    return bind


@_compiler("vxor")
def _c_vxor(instr):
    return _c_vec_bitwise(instr, lambda a, b: a ^ b)


@_compiler("vand")
def _c_vand(instr):
    return _c_vec_bitwise(instr, lambda a, b: a & b)


@_compiler("vor")
def _c_vor(instr):
    return _c_vec_bitwise(instr, lambda a, b: a | b)


@_compiler("vandn")
def _c_vandn(instr):
    return _c_vec_bitwise(instr, lambda a, b: ~a & b)


def _c_fp(instr, op):
    """Packed/scalar FP arithmetic — mirrors ``_fp_op`` exactly."""
    dst = instr.operands[0]
    if not is_reg(dst) or dst.kind != "vec":
        raise _GiveUp()
    lane_bits = 64 if instr.info.fp == "f64" else 32
    width_bits = _vec_width_bits(instr)
    scalar = instr.mnemonic.lstrip("v").endswith(("ss", "sd"))
    vexish = instr.mnemonic.startswith("v")
    srcs = _fp_sources(instr)
    rbs = [_vec_read_binder(instr, s,
                            lane_bits if scalar and is_mem(s)
                            else width_bits)
           for s in srcs]
    wmask = _MASK[width_bits // 8]
    prepend_dst = instr.info.reads_dst and len(srcs) == 1
    lane_mask = (1 << lane_bits) - 1
    n_lanes = width_bits // lane_bits
    kernel = _make_fp_kernel(lane_bits, op)
    wb = _reg_write_ev_binder(dst, vexish)
    rd = _read_binder(instr, dst, None)
    use_v0_base = vexish or instr.info.reads_dst

    def bind(ex):
        reads = [rb(ex) for rb in rbs]
        read_dst = rd(ex)
        write = wb(ex)
        state = ex.state
        # The kernel is a pure function of (input ints, ftz), and an
        # unrolled run feeds each slot the same few inputs over and
        # over — memoise the decode/compute/encode round trip.  The
        # operand reads still run first, so MemAccess recording is
        # untouched.
        memo: Dict[Tuple, Tuple[int, bool]] = {}

        def step(event):
            values = [r(event) for r in reads]
            if prepend_dst:
                values.insert(0, read_dst(event) & wmask)
            ftz = state.ftz
            key = (*values, ftz)
            hit = memo.get(key)
            if scalar:
                if hit is None:
                    lane_sets = [[v & lane_mask] for v in values]
                    out, assist = kernel(lane_sets, ftz)
                    hit = (out[0], assist)
                    if len(memo) >= _MAX_FP_MEMO:
                        memo.clear()
                    memo[key] = hit
                lane0, assist = hit
                # Scalar ops merge into the untouched upper bits:
                # legacy SSE keeps the destination's, VEX takes src1's.
                base = values[0] if use_v0_base \
                    else read_dst(event) & wmask
                result = (base & ~lane_mask) | lane0
            else:
                if hit is None:
                    lane_sets = [[(v >> (i * lane_bits)) & lane_mask
                                  for i in range(n_lanes)]
                                 for v in values]
                    out, assist = kernel(lane_sets, ftz)
                    result = 0
                    for i, lane in enumerate(out):
                        result |= lane << (i * lane_bits)
                    hit = (result, assist)
                    if len(memo) >= _MAX_FP_MEMO:
                        memo.clear()
                    memo[key] = hit
                result, assist = hit
            if assist:
                event.subnormal = True
            write(event, result)
        return step
    return bind


@_compiler("fp_add")
def _c_fp_add(instr):
    name = instr.mnemonic.lstrip("v")
    if name.startswith("add"):
        op = lambda a, b: a + b  # noqa: E731
    elif name.startswith("sub"):
        op = lambda a, b: a - b  # noqa: E731
    elif name.startswith("min"):
        op = min
    else:
        op = max
    return _c_fp(instr, op)


@_compiler("fp_mul")
def _c_fp_mul(instr):
    return _c_fp(instr, lambda a, b: a * b)


@_compiler("fp_div")
def _c_fp_div(instr):
    def div(a, b):
        if b == 0.0:
            return math.inf if a > 0 else \
                (-math.inf if a < 0 else math.nan)
        return a / b
    return _c_fp(instr, div)


@_compiler("fp_sqrt")
def _c_fp_sqrt(instr):
    return _c_fp(instr, lambda a, *rest:
                 math.sqrt(a) if a >= 0 else math.nan)


@_compiler("fp_rcp")
def _c_fp_rcp(instr):
    name = instr.mnemonic.lstrip("v")
    if name.startswith("rsqrt"):
        return _c_fp(instr, lambda a, *rest:
                     1.0 / math.sqrt(a) if a > 0 else math.inf)
    return _c_fp(instr, lambda a, *rest:
                 1.0 / a if a != 0 else math.inf)


@_compiler("fp_round")
def _c_fp_round(instr):
    return _c_fp(instr, lambda a, *rest: float(round(a)))


@_compiler("fma")
def _c_fma(instr):
    if len(instr.operands) != 3:
        raise _GiveUp()
    dst, src2, src3 = instr.operands
    if not is_reg(dst) or dst.kind != "vec":
        raise _GiveUp()
    name = instr.mnemonic
    lane_bits = 64 if instr.info.fp == "f64" else 32
    width_bits = _vec_width_bits(instr)
    digits = "".join(ch for ch in name if ch.isdigit())
    negate = name.startswith("vfnm")
    subtract = "sub" in name
    scalar = name.lstrip("v").endswith(("ss", "sd"))
    wmask = _MASK[width_bits // 8]
    lane_mask = (1 << lane_bits) - 1
    n_lanes = width_bits // lane_bits

    def fma_op(x, y, z):
        product = x * y
        if negate:
            product = -product
        return product - z if subtract else product + z

    kernel = _make_fp_kernel(lane_bits, fma_op)
    ra = _read_binder(instr, dst, None)
    rb = _vec_read_binder(instr, src2, width_bits)
    rc = _vec_read_binder(instr, src3, width_bits)
    wb = _reg_write_ev_binder(dst, True)

    def bind(ex):
        read_a, read_b, read_c = ra(ex), rb(ex), rc(ex)
        write = wb(ex)
        state = ex.state
        # Same pure-function memo as ``_c_fp`` — the key covers every
        # input the result depends on (dst lanes included, so the
        # scalar upper-bit merge is part of the cached value).
        memo: Dict[Tuple, Tuple[int, bool]] = {}

        def step(event):
            a = read_a(event) & wmask
            b = read_b(event)
            c = read_c(event)
            ftz = state.ftz
            key = (a, b, c, ftz)
            hit = memo.get(key)
            if hit is None:
                if digits == "132":
                    m1, m2, ad = a, c, b
                elif digits == "213":
                    m1, m2, ad = b, a, c
                else:  # 231
                    m1, m2, ad = b, c, a
                if scalar:
                    sets = [[m1 & lane_mask], [m2 & lane_mask],
                            [ad & lane_mask]]
                else:
                    sets = [[(v >> (i * lane_bits)) & lane_mask
                             for i in range(n_lanes)]
                            for v in (m1, m2, ad)]
                out, assist = kernel(sets, ftz)
                if scalar:
                    result = (a & ~lane_mask) | out[0]
                else:
                    result = 0
                    for i, lane in enumerate(out):
                        result |= lane << (i * lane_bits)
                hit = (result, assist)
                if len(memo) >= _MAX_FP_MEMO:
                    memo.clear()
                memo[key] = hit
            result, assist = hit
            if assist:
                event.subnormal = True
            write(event, result)
        return step
    return bind


# ----------------------------------------------------------------------
# Fallback + block compilation + caches
# ----------------------------------------------------------------------

def _fallback_binder(instr, handler):
    """A step that defers to the interpreted handler.

    Sets ``ex._event`` exactly as the interpreted loop does, so
    handlers that annotate the event (div latency class, subnormal
    assists) and errors (unsupported instructions, faults) behave
    identically.
    """
    if handler is None:
        def bind(ex):
            execute_instruction = ex.execute_instruction

            def step(event):
                ex._event = event
                execute_instruction(instr)
            return step
        return bind

    def bind(ex):
        def step(event):
            ex._event = event
            handler(ex, instr)
        return step
    return bind


#: Symbolic-plan cache cap; cleared wholesale on overflow (the corpus
#: dedup memo upstream makes re-compiles rare even then).
_MAX_SYMBOLIC = 4096
#: Per-executor bound-plan cap (executors usually see a few blocks).
_MAX_BOUND = 512

_symbolic: Dict[BasicBlock, Tuple] = {}


def clear_plan_cache() -> None:
    """Drop all symbolic plans (tests and memory pressure)."""
    _symbolic.clear()


def compiled_plan(block: BasicBlock) -> Tuple:
    """Symbolic plan for ``block``: one binder per instruction slot."""
    plan = _symbolic.get(block)
    if plan is not None:
        if telemetry.is_enabled():
            telemetry.count("cache.blockplan.hits")
        return plan
    start = time.perf_counter()
    binders = []
    for instr, handler in handler_plan(block):
        binder = None
        if handler is not None:
            compile_fn = _COMPILERS.get(instr.info.semantic)
            if compile_fn is not None:
                try:
                    binder = compile_fn(instr)
                except _GiveUp:
                    binder = None
        if binder is None:
            binder = _fallback_binder(instr, handler)
        binders.append(binder)
    plan = tuple(binders)
    if len(_symbolic) >= _MAX_SYMBOLIC:
        if telemetry.is_enabled():
            telemetry.count("cache.blockplan.evictions",
                            len(_symbolic))
        _symbolic.clear()
    _symbolic[block] = plan
    if telemetry.is_enabled():
        telemetry.count("cache.blockplan.misses")
        telemetry.observe("cache.blockplan.compile_ms",
                          (time.perf_counter() - start) * 1000.0)
    return plan


def bound_plan(executor, block: BasicBlock) -> Tuple:
    """Steps of ``block`` bound to one executor's state and memory."""
    plans = executor._plans
    steps = plans.get(block)
    if steps is not None:
        if telemetry.is_enabled():
            telemetry.count("cache.blockplan.hits")
        return steps
    steps = tuple(binder(executor) for binder in compiled_plan(block))
    if len(plans) >= _MAX_BOUND:
        if telemetry.is_enabled():
            telemetry.count("cache.blockplan.evictions", len(plans))
        plans.clear()
    plans[block] = steps
    return steps


def _blockplan_cache_stats():
    """Unified-telemetry provider for the block-plan cache."""
    stats = cachestats.registry_stats("blockplan")
    stats.size = len(_symbolic)
    stats.capacity = _MAX_SYMBOLIC
    return stats


cachestats.register_provider("blockplan", _blockplan_cache_stats)
