"""Architectural state: register values, flags, MXCSR.

Values live in flat *slot arrays* — one plain list per register file
(``_g`` for the 16 GPRs, ``_v`` for the 16 ymm registers, ``_f`` for
the 6 flags), indexed by the slot numbers attached to every
:class:`repro.isa.registers.Register`.  The block-compilation layer
(:mod:`repro.runtime.plan`) binds those lists and indices directly
into its step closures; everything else keeps using the historical
API: :meth:`read`/:meth:`write` apply x86's merge/zero-extend rules
through any alias view, and the ``gpr``/``vec``/``flags`` attributes
remain dict-like *views* over the arrays (live: mutations through a
view hit the array, and vice versa).

The profiler re-initialises this state between the mapping run and the
measurement run so both runs compute the identical address trace —
the linchpin of the paper's page-mapping technique (Fig. 2).

Invariant the compiled plans rely on: the three slot lists are created
once per state and only ever mutated in place (``initialize``, the
view setters and :meth:`restore` all use slice/element assignment), so
a closure holding a list reference never goes stale.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.isa.registers import (FLAG_INDEX, FLAG_NAMES, GPR_BASES,
                                 GPR_INDEX, VEC_BASES, VEC_INDEX, Register)

_MASK64 = (1 << 64) - 1
_MASK256 = (1 << 256) - 1

#: The paper initialises registers and memory with this "moderately
#: sized" constant so indirect loads produce mappable pointers.
INIT_CONSTANT = 0x12345600

#: 1.0f splatted across the eight 32-bit lanes of a ymm register.
_VEC_SPLAT = 0
for _i in range(8):
    _VEC_SPLAT |= 0x3F800000 << (32 * _i)
del _i

#: Snapshot orderings, precomputed so :meth:`MachineState.snapshot`
#: reproduces the historical sorted-dict-items layout without building
#: (and sorting) a dict per call.
_GPR_SORTED: Tuple[Tuple[str, int], ...] = tuple(
    (name, GPR_INDEX[name]) for name in sorted(GPR_BASES))
_VEC_SORTED: Tuple[Tuple[str, int], ...] = tuple(
    (name, VEC_INDEX[name]) for name in sorted(VEC_BASES))
_FLAG_SORTED: Tuple[Tuple[str, int], ...] = tuple(
    (name, FLAG_INDEX[name]) for name in sorted(FLAG_NAMES))


class _SlotView:
    """Dict-like live view over one slot array.

    Keeps the historical ``state.gpr["rax"]`` / ``dict(state.flags)``
    API working on top of the flat arrays.  Deliberately minimal: the
    hot paths never touch it (they use the arrays directly).
    """

    __slots__ = ("_values", "_index", "_names")

    def __init__(self, values: List, index: Dict[str, int],
                 names: Tuple[str, ...]):
        self._values = values
        self._index = index
        self._names = names

    def __getitem__(self, name: str):
        return self._values[self._index[name]]

    def __setitem__(self, name: str, value) -> None:
        self._values[self._index[name]] = value

    def __contains__(self, name) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def keys(self) -> Tuple[str, ...]:
        return self._names

    def values(self) -> List:
        return list(self._values)

    def items(self) -> List[Tuple[str, object]]:
        values = self._values
        return [(name, values[i]) for name, i in self._index.items()]

    def get(self, name: str, default=None):
        i = self._index.get(name)
        return default if i is None else self._values[i]

    def update(self, other=(), **kwargs) -> None:
        if isinstance(other, Mapping) or hasattr(other, "items"):
            other = other.items()
        for name, value in other:
            self[name] = value
        for name, value in kwargs.items():
            self[name] = value

    def __eq__(self, other) -> bool:
        if isinstance(other, _SlotView):
            return self.items() == other.items()
        if isinstance(other, Mapping):
            return dict(self.items()) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self.items()))


class MachineState:
    """Register file + flags + MXCSR of the simulated core."""

    __slots__ = ("_g", "_v", "_f", "ftz", "rip",
                 "_gpr_view", "_vec_view", "_flag_view")

    def __init__(self) -> None:
        #: Flat slot arrays — the single source of truth.  Never
        #: rebound (see module docstring); mutate in place only.
        self._g: List[int] = [0] * len(GPR_BASES)
        self._v: List[int] = [0] * len(VEC_BASES)
        self._f: List[bool] = [False] * len(FLAG_NAMES)
        #: MXCSR FTZ+DAZ ("disable gradual underflow" in the paper).
        self.ftz: bool = False
        self.rip: int = 0
        self._gpr_view = _SlotView(self._g, GPR_INDEX, GPR_BASES)
        self._vec_view = _SlotView(self._v, VEC_INDEX, VEC_BASES)
        self._flag_view = _SlotView(self._f, FLAG_INDEX, FLAG_NAMES)

    # -- dict-like compatibility views -------------------------------------

    @property
    def gpr(self) -> _SlotView:
        return self._gpr_view

    @gpr.setter
    def gpr(self, mapping: Mapping[str, int]) -> None:
        g = self._g
        for name, i in GPR_INDEX.items():
            g[i] = mapping[name]

    @property
    def vec(self) -> _SlotView:
        return self._vec_view

    @vec.setter
    def vec(self, mapping: Mapping[str, int]) -> None:
        v = self._v
        for name, i in VEC_INDEX.items():
            v[i] = mapping[name]

    @property
    def flags(self) -> _SlotView:
        return self._flag_view

    @flags.setter
    def flags(self, mapping: Mapping[str, bool]) -> None:
        f = self._f
        for name, i in FLAG_INDEX.items():
            f[i] = mapping[name]

    # -- initialisation ----------------------------------------------------

    def initialize(self, constant: int = INIT_CONSTANT,
                   ftz: Optional[bool] = None) -> None:
        """Reset to the profiler's canonical starting state.

        Every GPR gets the init constant (so any register used as a
        pointer points at a mappable page); vector registers get 1.0f
        splatted across 32-bit lanes — the paper specifies the
        "moderately sized" constant for pointers and memory, and a
        benign FP value keeps synthetic arithmetic chains from
        wandering into the subnormal range on their own (real
        application data stays near unity too).  Flags are cleared;
        ``ftz`` preserves the current MXCSR setting unless given.
        """
        self._g[:] = [constant & _MASK64] * len(GPR_BASES)
        self._v[:] = [_VEC_SPLAT] * len(VEC_BASES)
        self._f[:] = [False] * len(FLAG_NAMES)
        if ftz is not None:
            self.ftz = ftz
        self.rip = 0

    def copy(self) -> "MachineState":
        clone = MachineState()
        clone._g[:] = self._g
        clone._v[:] = self._v
        clone._f[:] = self._f
        clone.ftz = self.ftz
        clone.rip = self.rip
        return clone

    def snapshot(self) -> tuple:
        """Hashable snapshot for reproducibility checks.

        Same layout as the historical dict-based implementation
        (name-sorted item tuples), but produced straight from the
        arrays — no per-call dict rebuilds.
        """
        g, v, f = self._g, self._v, self._f
        return (tuple((name, g[i]) for name, i in _GPR_SORTED),
                tuple((name, v[i]) for name, i in _VEC_SORTED),
                tuple((name, f[i]) for name, i in _FLAG_SORTED),
                self.ftz)

    def signature(self) -> tuple:
        """Raw value tuple of the complete state (cheap, hashable).

        The fast-path's per-iteration boundary capture: three C-level
        list→tuple copies instead of dict item materialisation.  Two
        equal signatures imply identical architectural state.
        """
        return (tuple(self._g), tuple(self._v), tuple(self._f),
                self.ftz, self.rip)

    def restore(self, signature: tuple) -> None:
        """Inverse of :meth:`signature` (in-place, buffers reused)."""
        g, v, f, ftz, rip = signature
        self._g[:] = g
        self._v[:] = v
        self._f[:] = f
        self.ftz = ftz
        self.rip = rip

    # -- batch-lane bridge -------------------------------------------------
    #
    # ``repro.runtime.lanes`` stacks N of these states into one numpy
    # matrix (one row per lane member) covering exactly the GPR and
    # flag slot arrays — the integer-only subset lanes vectorize.
    # These two methods are the row<->state bridge the lane
    # conformance tests use to prove a width-1 lane degenerates to
    # this scalar state exactly.

    def export_lane_row(self) -> Tuple[List[int], List[bool]]:
        """The (gpr_slots, flag_slots) pair a lane row holds."""
        return list(self._g), list(self._f)

    def load_lane_row(self, gprs: Iterable[int],
                      flags: Iterable[bool]) -> None:
        """Adopt a lane row's values (in-place, views stay live)."""
        gprs = list(gprs)
        flags = [bool(x) for x in flags]
        if len(gprs) != len(self._g) or len(flags) != len(self._f):
            raise ValueError("lane row shape mismatch")
        self._g[:] = [int(x) & _MASK64 for x in gprs]
        self._f[:] = flags

    # -- register access ---------------------------------------------------

    def read(self, reg: Register) -> int:
        """Read the unsigned value of any register view."""
        if reg.kind == "gpr":
            return (self._g[reg.slot] >> reg.bit_offset) \
                & ((1 << reg.width) - 1)
        if reg.kind == "vec":
            return self._v[reg.slot] & ((1 << reg.width) - 1)
        if reg.kind == "ip":
            return self.rip
        raise ValueError(f"cannot read {reg.name} as data")

    def write(self, reg: Register, value: int, *, vex: bool = False) -> None:
        """Write ``value`` through a register view.

        Applies x86 merge rules: 8/16-bit writes merge, 32-bit writes
        zero-extend to 64 bits, legacy xmm writes preserve the upper ymm
        lane while VEX (``vex=True``) writes zero it.
        """
        value &= (1 << reg.width) - 1
        if reg.kind == "gpr":
            if reg.width >= 32:
                # 64-bit write, or 32-bit implicit zero-extend.
                self._g[reg.slot] = value
            else:
                mask = reg.mask
                self._g[reg.slot] = (self._g[reg.slot] & ~mask & _MASK64) \
                    | (value << reg.bit_offset)
        elif reg.kind == "vec":
            if reg.width == 256 or vex:
                self._v[reg.slot] = value
            else:
                old = self._v[reg.slot]
                self._v[reg.slot] = \
                    (old & ~((1 << reg.width) - 1)) | value
        elif reg.kind == "ip":
            self.rip = value & _MASK64
        else:
            raise ValueError(f"cannot write {reg.name} as data")

    # -- flags ---------------------------------------------------------------

    def read_flag(self, name: str) -> bool:
        return self._f[FLAG_INDEX[name]]

    def set_flags(self, **values: bool) -> None:
        f = self._f
        for name, value in values.items():
            i = FLAG_INDEX.get(name)
            if i is None:
                raise KeyError(name)
            f[i] = bool(value)


def state_equal(a: MachineState, b: MachineState,
                registers: Optional[Iterable[str]] = None) -> bool:
    """Compare two states (optionally restricted to named GPRs)."""
    if registers is None:
        return a.snapshot() == b.snapshot()
    from repro.isa.registers import lookup
    return all(a.read(lookup(r)) == b.read(lookup(r)) for r in registers)
