"""Architectural state: register values, flags, MXCSR.

Values are stored per *base* register (64-bit int for GPRs, 256-bit int
for the ymm file); reads and writes through any alias view apply x86's
merge/zero-extend rules (see :mod:`repro.isa.registers`).

The profiler re-initialises this state between the mapping run and the
measurement run so both runs compute the identical address trace —
the linchpin of the paper's page-mapping technique (Fig. 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.isa.registers import (FLAG_NAMES, GPR_BASES, VEC_BASES, Register)

_MASK64 = (1 << 64) - 1
_MASK256 = (1 << 256) - 1

#: The paper initialises registers and memory with this "moderately
#: sized" constant so indirect loads produce mappable pointers.
INIT_CONSTANT = 0x12345600


class MachineState:
    """Register file + flags + MXCSR of the simulated core."""

    __slots__ = ("gpr", "vec", "flags", "ftz", "rip")

    def __init__(self) -> None:
        self.gpr: Dict[str, int] = {name: 0 for name in GPR_BASES}
        self.vec: Dict[str, int] = {name: 0 for name in VEC_BASES}
        self.flags: Dict[str, bool] = {f: False for f in FLAG_NAMES}
        #: MXCSR FTZ+DAZ ("disable gradual underflow" in the paper).
        self.ftz: bool = False
        self.rip: int = 0

    # -- initialisation ----------------------------------------------------

    def initialize(self, constant: int = INIT_CONSTANT,
                   ftz: Optional[bool] = None) -> None:
        """Reset to the profiler's canonical starting state.

        Every GPR gets the init constant (so any register used as a
        pointer points at a mappable page); vector registers get 1.0f
        splatted across 32-bit lanes — the paper specifies the
        "moderately sized" constant for pointers and memory, and a
        benign FP value keeps synthetic arithmetic chains from
        wandering into the subnormal range on their own (real
        application data stays near unity too).  Flags are cleared;
        ``ftz`` preserves the current MXCSR setting unless given.
        """
        for name in GPR_BASES:
            self.gpr[name] = constant & _MASK64
        lane = 0x3F800000  # 1.0f
        splat = 0
        for i in range(8):
            splat |= lane << (32 * i)
        for name in VEC_BASES:
            self.vec[name] = splat
        for f in FLAG_NAMES:
            self.flags[f] = False
        if ftz is not None:
            self.ftz = ftz
        self.rip = 0

    def copy(self) -> "MachineState":
        clone = MachineState()
        clone.gpr = dict(self.gpr)
        clone.vec = dict(self.vec)
        clone.flags = dict(self.flags)
        clone.ftz = self.ftz
        clone.rip = self.rip
        return clone

    def snapshot(self) -> tuple:
        """Hashable snapshot for reproducibility checks."""
        return (tuple(sorted(self.gpr.items())),
                tuple(sorted(self.vec.items())),
                tuple(sorted(self.flags.items())),
                self.ftz)

    # -- register access ---------------------------------------------------

    def read(self, reg: Register) -> int:
        """Read the unsigned value of any register view."""
        if reg.kind == "gpr":
            return (self.gpr[reg.base] >> reg.bit_offset) \
                & ((1 << reg.width) - 1)
        if reg.kind == "vec":
            return self.vec[reg.base] & ((1 << reg.width) - 1)
        if reg.kind == "ip":
            return self.rip
        raise ValueError(f"cannot read {reg.name} as data")

    def write(self, reg: Register, value: int, *, vex: bool = False) -> None:
        """Write ``value`` through a register view.

        Applies x86 merge rules: 8/16-bit writes merge, 32-bit writes
        zero-extend to 64 bits, legacy xmm writes preserve the upper ymm
        lane while VEX (``vex=True``) writes zero it.
        """
        value &= (1 << reg.width) - 1
        if reg.kind == "gpr":
            old = self.gpr[reg.base]
            if reg.width == 64:
                self.gpr[reg.base] = value
            elif reg.width == 32:
                self.gpr[reg.base] = value  # implicit zero-extend
            else:
                mask = reg.mask
                self.gpr[reg.base] = (old & ~mask & _MASK64) \
                    | (value << reg.bit_offset)
        elif reg.kind == "vec":
            if reg.width == 256 or vex:
                self.vec[reg.base] = value
            else:
                old = self.vec[reg.base]
                self.vec[reg.base] = (old & ~((1 << reg.width) - 1)) | value
        elif reg.kind == "ip":
            self.rip = value & _MASK64
        else:
            raise ValueError(f"cannot write {reg.name} as data")

    # -- flags ---------------------------------------------------------------

    def read_flag(self, name: str) -> bool:
        return self.flags[name]

    def set_flags(self, **values: bool) -> None:
        for name, value in values.items():
            if name not in self.flags:
                raise KeyError(name)
            self.flags[name] = bool(value)


def state_equal(a: MachineState, b: MachineState,
                registers: Optional[Iterable[str]] = None) -> bool:
    """Compare two states (optionally restricted to named GPRs)."""
    if registers is None:
        return a.snapshot() == b.snapshot()
    from repro.isa.registers import lookup
    return all(a.read(lookup(r)) == b.read(lookup(r)) for r in registers)
