"""Execution traces: the record of one functional run.

The timing model is *trace-driven*: the functional executor runs the
unrolled block once and records, per dynamic instruction, the memory
addresses touched, whether an FP microcode assist (subnormal) fired,
and the division latency class.  The micro-architectural model then
prices that trace for a given machine — which is why the mapping run
and the measurement run must produce identical traces (the paper's
re-initialisation argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class MemAccess:
    """One dynamic memory access."""

    address: int
    width: int
    is_write: bool

    def crosses_line(self, line_size: int = 64) -> bool:
        """Does this access span a cache-line boundary?

        These are the accesses the paper's ``MISALIGNED_MEM_REFERENCE``
        filter drops blocks for (an order-of-magnitude slowdown risk).
        """
        return (self.address % line_size) + self.width > line_size


@dataclass
class InstrEvent:
    """Dynamic record for one executed instruction."""

    index: int
    slot: int  # static position within the basic block
    accesses: List[MemAccess] = field(default_factory=list)
    #: FP microcode assist fired (subnormal input/output, FTZ off).
    subnormal: bool = False
    #: (operand bits, high-half-was-zero) for div/idiv, else None.
    div_class: Optional[Tuple[int, bool]] = None


class ExecutionTrace:
    """All events from one (possibly unrolled) functional run."""

    def __init__(self, block_len: int, unroll: int):
        self.block_len = block_len
        self.unroll = unroll
        self.events: List[InstrEvent] = []

    def append(self, event: InstrEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[InstrEvent]:
        return iter(self.events)

    @property
    def accesses(self) -> Iterator[MemAccess]:
        for event in self.events:
            yield from event.accesses

    def misaligned_count(self, line_size: int = 64) -> int:
        return sum(1 for a in self.accesses if a.crosses_line(line_size))

    @property
    def subnormal_count(self) -> int:
        return sum(1 for e in self.events if e.subnormal)

    def address_signature(self) -> Tuple[Tuple[int, int, bool], ...]:
        """Hashable address trace, for reproducibility assertions."""
        return tuple((a.address, a.width, a.is_write)
                     for a in self.accesses)
