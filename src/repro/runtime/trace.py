"""Execution traces: the record of one functional run.

The timing model is *trace-driven*: the functional executor runs the
unrolled block once and records, per dynamic instruction, the memory
addresses touched, whether an FP microcode assist (subnormal) fired,
and the division latency class.  The micro-architectural model then
prices that trace for a given machine — which is why the mapping run
and the measurement run must produce identical traces (the paper's
re-initialisation argument).

A trace may carry a *steady witness* ``(steady_from, period)``:
iteration ``i`` produced exactly the events of iteration ``i +
period`` for every ``i >= steady_from``.  The witness is stamped by
whichever detector established it (:mod:`repro.simcore`) and lets
counter summation and the timing model skip the periodic tail; it is
purely an annotation — the events themselves are always complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One dynamic memory access."""

    address: int
    width: int
    is_write: bool

    def crosses_line(self, line_size: int = 64) -> bool:
        """Does this access span a cache-line boundary?

        These are the accesses the paper's ``MISALIGNED_MEM_REFERENCE``
        filter drops blocks for (an order-of-magnitude slowdown risk).
        """
        return (self.address % line_size) + self.width > line_size


@dataclass(slots=True)
class InstrEvent:
    """Dynamic record for one executed instruction."""

    index: int
    slot: int  # static position within the basic block
    accesses: List[MemAccess] = field(default_factory=list)
    #: FP microcode assist fired (subnormal input/output, FTZ off).
    subnormal: bool = False
    #: (operand bits, high-half-was-zero) for div/idiv, else None.
    div_class: Optional[Tuple[int, bool]] = None


class ExecutionTrace:
    """All events from one (possibly unrolled) functional run."""

    __slots__ = ("block_len", "unroll", "events", "steady_from",
                 "period")

    def __init__(self, block_len: int, unroll: int):
        self.block_len = block_len
        self.unroll = unroll
        self.events: List[InstrEvent] = []
        #: Steady witness: iterations repeat with ``period`` from
        #: ``steady_from`` on.  ``period`` is 0/None when unknown.
        self.steady_from: int = 0
        self.period: Optional[int] = None

    def append(self, event: InstrEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[InstrEvent]:
        return iter(self.events)

    @property
    def accesses(self) -> Iterator[MemAccess]:
        for event in self.events:
            yield from event.accesses

    def _periodic_sum(self, per_event: Callable[[InstrEvent], int]
                      ) -> int:
        """Sum ``per_event`` over all events using the steady witness.

        Exact by the witness's definition: iterations ``[steady_from,
        steady_from + period)`` repeat cyclically to the end, so the
        tail contributes whole cycles plus a cycle prefix.
        """
        block_len = self.block_len
        events = self.events
        t, q = self.steady_from, self.period

        def iteration_total(i: int) -> int:
            return sum(per_event(e) for e in
                       events[i * block_len:(i + 1) * block_len])

        head = sum(iteration_total(i) for i in range(t))
        cycle = [iteration_total(t + j) for j in range(q)]
        full, rem = divmod(self.unroll - t, q)
        return head + full * sum(cycle) + sum(cycle[:rem])

    def _has_witness(self) -> bool:
        return bool(self.period) and \
            len(self.events) == self.unroll * self.block_len

    def misaligned_count(self, line_size: int = 64) -> int:
        if self._has_witness():
            return self._periodic_sum(
                lambda e: sum(1 for a in e.accesses
                              if a.crosses_line(line_size)))
        return sum(1 for a in self.accesses if a.crosses_line(line_size))

    @property
    def subnormal_count(self) -> int:
        if self._has_witness():
            return self._periodic_sum(lambda e: 1 if e.subnormal else 0)
        return sum(1 for e in self.events if e.subnormal)

    def prefix(self, unroll: int) -> "ExecutionTrace":
        """The first ``unroll`` iterations as a trace of their own.

        Events are shared (consumers never mutate them); the steady
        witness carries over only when the shorter trace still
        contains two full periods of evidence for it.
        """
        if unroll > self.unroll:
            raise ValueError(
                f"prefix of {unroll} from a {self.unroll}-iteration "
                f"trace")
        sub = ExecutionTrace(self.block_len, unroll)
        sub.events = self.events[:unroll * self.block_len]
        if self.period and \
                self.steady_from + 2 * self.period <= unroll:
            sub.steady_from = self.steady_from
            sub.period = self.period
        return sub

    def address_signature(self) -> Tuple[Tuple[int, int, bool], ...]:
        """Hashable address trace, for reproducibility assertions."""
        return tuple((a.address, a.width, a.is_write)
                     for a in self.accesses)
