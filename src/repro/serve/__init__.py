"""repro.serve — crash-safe profiling-as-a-service daemon.

The batch pipeline (PRs 2–9) turned one-shot profiling runs fast,
parallel-deterministic, and crash-safe; this package turns them into a
long-lived service.  ``repro serve --socket PATH | --port N`` stands up
an asyncio daemon that accepts block-profiling requests over HTTP
(Unix-domain socket or TCP), coalesces concurrent requests into
content-addressed one-block shards, and executes them on the existing
``repro.parallel`` engine — so the shared v3 shard cache becomes a
multi-tenant result store and dedup across clients is free.

Robustness is the headline (see docs/service.md):

* :mod:`repro.serve.admission` — bounded admission queue with
  deterministic load shedding (429 + retry-after) and per-client
  token-bucket rate limits;
* :mod:`repro.serve.breaker` — a circuit breaker around the worker
  pool (trip on consecutive worker failures, half-open probes,
  scalar fallback while open);
* :mod:`repro.serve.requestlog` — a CRC-self-checked request journal
  (same line format as :mod:`repro.resilience.journal`) giving
  SIGKILL → restart byte-identical replay of in-flight requests;
* :mod:`repro.serve.metrics` — per-window p50/p95/p99 latency,
  jitter, and deadline-miss-rate ``serve.*`` telemetry;
* :mod:`repro.serve.daemon` — the asyncio server itself: deadlines
  enforced before work reaches a worker, graceful SIGTERM drain,
  and the ``serve_*`` chaos fault points.
"""

from repro.serve.admission import (AdmissionDecision, AdmissionQueue,
                                   TokenBucket)
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.core import (ProfileRequest, ProfilingService,
                              RequestError, request_digest)
from repro.serve.requestlog import REQUEST_LOG_NAME, RequestJournal

__all__ = [
    "ServeConfig",
    "AdmissionQueue", "AdmissionDecision", "TokenBucket",
    "CircuitBreaker",
    "RequestJournal", "REQUEST_LOG_NAME",
    "ProfilingService", "ProfileRequest", "RequestError",
    "request_digest",
]
