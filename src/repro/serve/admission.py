"""Admission control: bounded queue + per-client token buckets.

Load shedding is *deterministic and explicit*: a request the daemon
cannot take right now is answered 429 with a computed ``retry-after``
— it is never blocked on (a slow queue must not stall the accept
loop) and never dropped silently (every shed increments
``serve.shed.<reason>`` and is visible in the window metrics).

Both mechanisms take an injectable monotonic ``clock`` so the tests
drive them with a fake clock — no sleeps, no flakiness.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.resilience import chaos
from repro.telemetry import core as telemetry


@dataclass(frozen=True)
class AdmissionDecision:
    """The admission verdict for one request."""

    admitted: bool
    #: Shed reason when not admitted: ``queue_full`` / ``rate_limited``
    #: / ``draining`` / ``chaos``.
    reason: str = ""
    #: Client guidance: how long to back off before retrying.
    retry_after_ms: float = 0.0


class AdmissionQueue:
    """A bounded FIFO that sheds instead of blocking.

    ``try_admit`` either enqueues and returns an admitted decision or
    returns a 429-shaped shed decision — callers never wait.  The
    ``serve_queue_full`` chaos point forces the full-queue branch for
    a deterministic subset of requests so the shedding path is
    testable without generating real overload.
    """

    def __init__(self, capacity: int,
                 clock: Callable[[], float] = time.monotonic):
        self.capacity = max(1, capacity)
        self.clock = clock
        self._items: Deque = deque()
        #: Sliding estimate of per-request service time, seeding the
        #: retry-after hint (seconds).
        self._service_estimate_s = 0.1

    def __len__(self) -> int:
        return len(self._items)

    def try_admit(self, item) -> AdmissionDecision:
        key = getattr(item, "digest", "") or repr(item)
        forced_full = chaos.fire("serve_queue_full", key)
        if forced_full or len(self._items) >= self.capacity:
            retry_ms = self.retry_after_ms()
            telemetry.count("serve.shed.queue_full")
            telemetry.event("serve.shed", reason="queue_full",
                            depth=len(self._items),
                            chaos=bool(forced_full))
            return AdmissionDecision(False, "queue_full", retry_ms)
        self._items.append(item)
        return AdmissionDecision(True)

    def pop_all(self) -> list:
        """Drain every queued item (batcher side)."""
        items = list(self._items)
        self._items.clear()
        return items

    def pop_batch(self, limit: int) -> list:
        items = []
        while self._items and len(items) < limit:
            items.append(self._items.popleft())
        return items

    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed batch's per-request time into the hint."""
        if seconds > 0:
            self._service_estimate_s = \
                0.8 * self._service_estimate_s + 0.2 * seconds

    def retry_after_ms(self) -> float:
        """How long until a queue slot plausibly frees up.

        Half the queue's worth of estimated service time: pessimistic
        enough that a retrying client usually succeeds, bounded so
        shed clients are never told to wait forever.
        """
        depth = max(1, len(self._items))
        return min(30_000.0,
                   1000.0 * self._service_estimate_s * depth / 2 + 50.0)


class TokenBucket:
    """Per-client token buckets: ``rate`` tokens/s, ``burst`` deep.

    ``rate <= 0`` disables rate limiting entirely (the default —
    admission is then bounded by the queue alone).  Buckets are lazily
    created per client id and refilled from the injected clock, so the
    decision for a given (client, time) is reproducible.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate
        self.burst = max(1, burst)
        self.clock = clock
        self._buckets: Dict[str, tuple] = {}  # client -> (tokens, at)

    def allow(self, client: str) -> AdmissionDecision:
        if self.rate <= 0:
            return AdmissionDecision(True)
        now = self.clock()
        tokens, at = self._buckets.get(client, (float(self.burst), now))
        tokens = min(float(self.burst), tokens + (now - at) * self.rate)
        if tokens >= 1.0:
            self._buckets[client] = (tokens - 1.0, now)
            return AdmissionDecision(True)
        self._buckets[client] = (tokens, now)
        retry_ms = 1000.0 * (1.0 - tokens) / self.rate
        telemetry.count("serve.shed.rate_limited")
        telemetry.event("serve.shed", reason="rate_limited",
                        client=client)
        return AdmissionDecision(False, "rate_limited", retry_ms)
