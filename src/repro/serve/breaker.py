"""Circuit breaker around the worker pool.

The engine already degrades per shard (a crashed worker's shard is
rescued serially in the parent), but a pool that keeps crashing turns
every batch into rescue work — paying pool startup plus timeouts only
to fall back anyway.  The breaker watches *batch-level* worker
trouble and, after ``threshold`` consecutive troubled batches, opens:
while open the service runs batches scalar (``jobs=1``, the same
deterministic path, just slower), so results never change — only the
execution strategy.  After ``cooldown_s`` it lets one probe batch use
the pool (half-open); a clean probe closes the breaker, a troubled
one re-opens it and restarts the cooldown.

State transitions are driven by an injectable monotonic clock and
are observable: every transition emits a ``serve.breaker`` event and
the current state is exported as the ``serve.breaker_open`` gauge.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.telemetry import core as telemetry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes."""

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.threshold = max(1, threshold)
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    # ------------------------------------------------------------------

    def allow_pool(self) -> bool:
        """May the next batch use the worker pool?

        ``False`` means run scalar.  In the open state the first call
        after the cooldown elapses transitions to half-open and grants
        a single probe; further calls stay scalar until the probe
        reports back.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self._opened_at >= self.cooldown_s:
                self._transition(HALF_OPEN)
                self._probe_in_flight = True
                return True
            return False
        # half-open: one probe at a time
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._probe_in_flight = False
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._probe_in_flight = False
            self._open()
        elif self.state == CLOSED \
                and self.consecutive_failures >= self.threshold:
            self._open()

    # ------------------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self.clock()
        self._transition(OPEN)

    def _transition(self, state: str) -> None:
        previous, self.state = self.state, state
        telemetry.count(f"serve.breaker.{state}")
        telemetry.event("serve.breaker", state=state,
                        previous=previous,
                        consecutive_failures=self.consecutive_failures)
        telemetry.set_gauge("serve.breaker_open",
                            0 if state == CLOSED else 1)
