"""A small blocking client for the serve daemon — stdlib sockets only.

Used by the CI smoke test, the daemon lifecycle suite, and
``benchmarks/bench_serve.py``; also a reference implementation of the
wire protocol for anyone pointing their own tooling at the daemon.
One request per connection (the server closes after responding), so
the read loop is simply "until EOF".
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, List, Optional


class ServeClientError(RuntimeError):
    """Transport-level failure talking to the daemon."""


class ServeResponse:
    """Status + decoded JSON body of one exchange."""

    def __init__(self, status: int, body: Dict,
                 headers: Dict[str, str]):
        self.status = status
        self.body = body
        self.headers = headers

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after_s(self) -> Optional[float]:
        raw = self.headers.get("retry-after")
        try:
            return float(raw) if raw is not None else None
        except ValueError:
            return None


class ServeClient:
    """Blocking HTTP client over a Unix socket or TCP."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1",
                 port: Optional[int] = None,
                 timeout: float = 60.0):
        if not socket_path and port is None:
            raise ValueError("need socket_path or port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
        return sock

    def request(self, method: str, path: str,
                payload: Optional[Dict] = None) -> ServeResponse:
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: repro-serve\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        try:
            with self._connect() as sock:
                sock.sendall(head.encode("latin-1") + body)
                raw = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
        except OSError as exc:
            raise ServeClientError(f"{type(exc).__name__}: {exc}")
        return self._parse(raw)

    @staticmethod
    def _parse(raw: bytes) -> ServeResponse:
        if not raw:
            raise ServeClientError("empty response (connection reset)")
        head, sep, payload = raw.partition(b"\r\n\r\n")
        if not sep:
            raise ServeClientError("truncated response head")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        try:
            status = int(parts[1])
        except (IndexError, ValueError):
            raise ServeClientError(f"bad status line: {lines[0]!r}")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, hsep, value = line.partition(":")
            if hsep:
                headers[name.strip().lower()] = value.strip()
        try:
            body = json.loads(payload.decode("utf-8")) if payload \
                else {}
        except ValueError:
            raise ServeClientError("response body is not JSON")
        return ServeResponse(status, body, headers)

    # ------------------------------------------------------------------

    def profile(self, blocks: List[str], uarch: str = "haswell",
                seed: int = 0, client: str = "default",
                deadline_ms: Optional[float] = None) -> ServeResponse:
        payload: Dict = {"blocks": blocks, "uarch": uarch,
                         "seed": seed, "client": client}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request("POST", "/v1/profile", payload)

    def health(self) -> ServeResponse:
        return self.request("GET", "/v1/health")

    def stats(self) -> ServeResponse:
        return self.request("GET", "/v1/stats")

    def wait_ready(self, deadline_s: float = 15.0,
                   interval_s: float = 0.05) -> ServeResponse:
        """Poll health until the daemon answers (startup helper)."""
        deadline = time.monotonic() + deadline_s
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.health()
            except ServeClientError as exc:
                last = exc
                time.sleep(interval_s)
        raise ServeClientError(f"daemon never became ready: {last}")
