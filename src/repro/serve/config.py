"""Service configuration: one dataclass, env-var defaults, CLI wins.

Every knob has a ``REPRO_SERVE_*`` environment variable (registered in
:mod:`repro.envvars`, group ``serve``) so operators can tune a deployed
daemon without editing unit files; the matching ``repro serve`` CLI
flag, when given, takes precedence.  All parsing is defensive — a
malformed value falls back to the default rather than refusing to
start, because a service that fails to boot over a typo'd env var is
itself a robustness bug.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

#: Env-var name -> (attribute, parser, default).  The single source the
#: dataclass defaults and ``from_env`` both draw from.
_ENV_FLOAT = float
_ENV_INT = int

DEFAULT_QUEUE = 64
DEFAULT_DEADLINE_MS = 30_000
DEFAULT_RATE = 0.0          # tokens/second per client; 0 = unlimited
DEFAULT_BURST = 16
DEFAULT_BATCH = 64
DEFAULT_COALESCE_MS = 5.0
DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN_S = 5.0
DEFAULT_WINDOW = 32
DEFAULT_DRAIN_S = 10.0


def _env_number(name: str, default, parse):
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return parse(raw)
    except ValueError:
        return default


def default_state_dir() -> str:
    """Where the daemon keeps its journal and per-uarch shard caches.

    ``$REPRO_SERVE_STATE`` wins; otherwise a ``serve/`` subdirectory of
    the pipeline cache root (``$REPRO_CACHE`` or ``.cache``), so the
    daemon and the batch CLI share one cache tree by default.
    """
    explicit = os.environ.get("REPRO_SERVE_STATE")
    if explicit:
        return explicit
    root = os.environ.get("REPRO_CACHE") or ".cache"
    return os.path.join(root, "serve")


@dataclass(frozen=True)
class ServeConfig:
    """Every tunable the daemon honours, in one immutable bundle."""

    #: Listen address: exactly one of ``socket`` / ``port`` is set.
    socket: Optional[str] = None
    port: Optional[int] = None
    host: str = "127.0.0.1"

    #: Worker-pool width for batch execution (1 = in-process serial).
    jobs: int = 1

    #: Bounded admission queue capacity; a full queue sheds with 429.
    queue_size: int = DEFAULT_QUEUE
    #: Default per-request deadline when the client sends none.
    deadline_ms: float = DEFAULT_DEADLINE_MS
    #: Per-client token-bucket refill rate (req/s); 0 disables limits.
    rate: float = DEFAULT_RATE
    #: Token-bucket burst capacity.
    burst: int = DEFAULT_BURST
    #: Max requests coalesced into one engine batch.
    batch_size: int = DEFAULT_BATCH
    #: How long the batcher lingers for more requests to coalesce.
    coalesce_ms: float = DEFAULT_COALESCE_MS
    #: Consecutive worker-trouble batches before the breaker opens.
    breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD
    #: Seconds the breaker stays open before a half-open probe.
    breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S
    #: Completed requests per serve-metrics window.
    window: int = DEFAULT_WINDOW
    #: Ceiling on graceful SIGTERM drain before forced shutdown.
    drain_s: float = DEFAULT_DRAIN_S
    #: State directory (request journal + per-uarch shard caches).
    state_dir: str = field(default_factory=default_state_dir)

    @classmethod
    def from_env(cls, **overrides) -> "ServeConfig":
        """Env-var defaults, then explicit keyword overrides on top.

        ``None`` overrides are dropped so argparse defaults of ``None``
        mean "not given on the command line".
        """
        cfg = cls(
            queue_size=max(1, _env_number(
                "REPRO_SERVE_QUEUE", DEFAULT_QUEUE, _ENV_INT)),
            deadline_ms=_env_number(
                "REPRO_SERVE_DEADLINE_MS", DEFAULT_DEADLINE_MS,
                _ENV_FLOAT),
            rate=max(0.0, _env_number(
                "REPRO_SERVE_RATE", DEFAULT_RATE, _ENV_FLOAT)),
            burst=max(1, _env_number(
                "REPRO_SERVE_BURST", DEFAULT_BURST, _ENV_INT)),
            batch_size=max(1, _env_number(
                "REPRO_SERVE_BATCH", DEFAULT_BATCH, _ENV_INT)),
            coalesce_ms=max(0.0, _env_number(
                "REPRO_SERVE_COALESCE_MS", DEFAULT_COALESCE_MS,
                _ENV_FLOAT)),
            breaker_threshold=max(1, _env_number(
                "REPRO_SERVE_BREAKER", DEFAULT_BREAKER_THRESHOLD,
                _ENV_INT)),
            breaker_cooldown_s=max(0.0, _env_number(
                "REPRO_SERVE_BREAKER_COOLDOWN_S",
                DEFAULT_BREAKER_COOLDOWN_S, _ENV_FLOAT)),
            window=max(1, _env_number(
                "REPRO_SERVE_WINDOW", DEFAULT_WINDOW, _ENV_INT)),
            drain_s=max(0.0, _env_number(
                "REPRO_SERVE_DRAIN_S", DEFAULT_DRAIN_S, _ENV_FLOAT)),
            state_dir=default_state_dir(),
        )
        cleaned = {k: v for k, v in overrides.items() if v is not None}
        return replace(cfg, **cleaned) if cleaned else cfg
