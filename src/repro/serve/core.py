"""The synchronous heart of the service: validate, dedup, execute.

:class:`ProfilingService` owns everything that does not need an event
loop — request validation, content addressing, the request journal,
the circuit breaker, per-(uarch, seed) shard caches, and the batch
execution path — so the whole robustness surface is testable
in-process with plain function calls.  The asyncio daemon
(:mod:`repro.serve.daemon`) is a thin transport around it.

Execution model: every block in a request becomes its own **one-block
shard**, content-addressed by the block's text (the shard digest
covers only block texts, never ids), and the batch of unique shards
runs through :func:`repro.parallel.profile_corpus_sharded` against the
shared v3 shard cache.  Because measurement is a pure function of
(block text, uarch, seed) — even simulated noise is seeded from the
text — two clients sending the same block hit the same cache file, so
dedup across clients is free and responses are byte-stable across
restarts, replays, and serial/pooled backends alike.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.corpus.dataset import BlockRecord, Corpus
from repro.errors import ReproError
from repro.isa.parser import parse_block
from repro.parallel.engine import profile_corpus_sharded
from repro.parallel.shard_cache import ShardCache
from repro.parallel.sharding import Shard, shard_digest
from repro.serve import metrics
from repro.serve.breaker import CircuitBreaker
from repro.serve.config import ServeConfig
from repro.serve.metrics import ServeWindows
from repro.serve.requestlog import REQUEST_LOG_NAME, RequestJournal
from repro.telemetry import core as telemetry

#: Microarchitectures the service accepts (the paper's three).
SERVE_UARCHES = ("ivybridge", "haswell", "skylake")

#: Hard caps keeping a single hostile request from exhausting memory.
MAX_BLOCKS_PER_REQUEST = 4096
MAX_BLOCK_BYTES = 65536


class RequestError(ReproError):
    """A request the service refuses; carries an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def request_digest(uarch: str, seed: int, blocks: List[str]) -> str:
    """Process-stable content address of one profiling request."""
    h = hashlib.blake2b(digest_size=12)
    h.update(f"{uarch}|{seed}|".encode())
    for text in blocks:
        data = text.encode()
        h.update(f"{len(data)}:".encode())
        h.update(data)
    return h.hexdigest()


@dataclass
class ProfileRequest:
    """One validated, content-addressed profiling request."""

    blocks: List[str]
    uarch: str
    seed: int
    client: str
    deadline_ms: float
    digest: str
    #: Monotonic admission timestamp (daemon clock).
    admitted_at: float = 0.0

    def body(self) -> Dict:
        """The canonical journalable form (replay re-parses this)."""
        return {"blocks": list(self.blocks), "uarch": self.uarch,
                "seed": self.seed, "client": self.client,
                "deadline_ms": self.deadline_ms}

    def expired(self, now: float) -> bool:
        return (self.deadline_ms > 0
                and (now - self.admitted_at) * 1000.0
                >= self.deadline_ms)


def parse_profile_request(payload: Dict,
                          config: ServeConfig) -> ProfileRequest:
    """Validate a decoded request body; raise :class:`RequestError`.

    Block *syntax* is not validated here — an unparsable block is a
    per-block ``parse_error`` result, not a request-level 400, so one
    bad block in a batch of 100 does not cost the client the other 99.
    """
    if not isinstance(payload, dict):
        raise RequestError(400, "request body must be a JSON object")
    blocks = payload.get("blocks")
    if not isinstance(blocks, list) or not blocks:
        raise RequestError(400, "'blocks' must be a non-empty list")
    if len(blocks) > MAX_BLOCKS_PER_REQUEST:
        raise RequestError(
            413, f"too many blocks (max {MAX_BLOCKS_PER_REQUEST})")
    for i, text in enumerate(blocks):
        if not isinstance(text, str):
            raise RequestError(400, f"blocks[{i}] must be a string")
        if len(text.encode()) > MAX_BLOCK_BYTES:
            raise RequestError(
                413, f"blocks[{i}] exceeds {MAX_BLOCK_BYTES} bytes")
    uarch = payload.get("uarch", "haswell")
    if uarch not in SERVE_UARCHES:
        raise RequestError(
            400, f"unknown uarch {uarch!r} "
                 f"(expected one of {', '.join(SERVE_UARCHES)})")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise RequestError(400, "'seed' must be an integer")
    client = payload.get("client", "default")
    if not isinstance(client, str) or len(client) > 120:
        raise RequestError(400, "'client' must be a short string")
    deadline_ms = payload.get("deadline_ms", config.deadline_ms)
    if not isinstance(deadline_ms, (int, float)) \
            or isinstance(deadline_ms, bool) or deadline_ms < 0:
        raise RequestError(400, "'deadline_ms' must be >= 0")
    return ProfileRequest(
        blocks=[str(t) for t in blocks], uarch=uarch, seed=seed,
        client=client, deadline_ms=float(deadline_ms),
        digest=request_digest(uarch, seed, blocks))


class ProfilingService:
    """Validation, journaling, dedup, and batch execution — no I/O loop."""

    def __init__(self, config: ServeConfig,
                 clock: Callable[[], float] = time.monotonic,
                 worker_fn=None, serial_fn=None):
        self.config = config
        self.clock = clock
        #: Test hooks forwarded to the engine (fault injection).
        self.worker_fn = worker_fn
        self.serial_fn = serial_fn
        self.breaker = CircuitBreaker(config.breaker_threshold,
                                      config.breaker_cooldown_s,
                                      clock=clock)
        self.windows = ServeWindows(config.window)
        self.journal = RequestJournal(
            os.path.join(config.state_dir, REQUEST_LOG_NAME))
        self._caches: Dict[Tuple[str, int], ShardCache] = {}
        #: Filled by :meth:`recover`; daemon replays before serving.
        self.recovered: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        os.makedirs(self.config.state_dir, exist_ok=True)
        self.recovered = self.journal.open()
        if self.recovered:
            telemetry.count("serve.recovered_requests",
                            len(self.recovered))
            telemetry.event("serve.recovery",
                            pending=len(self.recovered))

    def recover(self) -> int:
        """Replay journaled requests that never got a ``done`` record.

        Runs before the listener opens: a SIGKILLed daemon's in-flight
        work is re-executed (deterministically — content addressing
        plus the shard cache make the results byte-identical to what
        the dead process would have produced) and journaled as done,
        so clients polling by request digest can still collect it.
        """
        replayed = 0
        for digest, body in sorted(self.recovered.items()):
            try:
                request = parse_profile_request(body, self.config)
            except RequestError:
                self.journal.record_dropped(digest, "unreplayable")
                continue
            request.admitted_at = self.clock()
            results, _ = self.execute([request], journal=False)
            self.journal.record_done(digest, results[0])
            telemetry.count("serve.replayed_requests")
            replayed += 1
        self.recovered = {}
        return replayed

    def close(self) -> None:
        self.journal.close()

    # ------------------------------------------------------------------
    # caches

    def cache_for(self, uarch: str, seed: int) -> ShardCache:
        key = (uarch, seed)
        if key not in self._caches:
            directory = os.path.join(
                self.config.state_dir,
                f"measured_v3_serve_{uarch}_{seed}")
            self._caches[key] = ShardCache(directory)
        return self._caches[key]

    # ------------------------------------------------------------------
    # execution

    def lookup_memo(self, request: ProfileRequest) -> Optional[List]:
        """Journal-memo hit: identical request already answered."""
        results = self.journal.completed.get(request.digest)
        if results:
            metrics.count_replay_hit()
            return results
        metrics.count_replay_miss()
        return None

    def execute(self, requests: List[ProfileRequest],
                journal: bool = True) -> Tuple[List[List], Dict]:
        """Run a coalesced batch; one result list per request.

        All requests in a batch share (uarch, seed) — the daemon
        groups before calling.  Blocks dedup across the whole batch:
        each distinct text parses once, profiles once (or hits the
        shard cache), and fans back out to every requesting position.
        Returns the per-request results plus the engine stats.
        """
        assert requests, "empty batch"
        uarch = requests[0].uarch
        seed = requests[0].seed
        assert all(r.uarch == uarch and r.seed == seed
                   for r in requests), "mixed batch"

        if journal:
            for request in requests:
                self.journal.record_request(request.digest,
                                            request.body())

        # Parse + dedup: one shard per distinct block text.
        shards: List[Shard] = []
        by_text: Dict[str, int] = {}       # text -> block_id
        parse_errors: Dict[str, str] = {}  # text -> message
        for request in requests:
            for text in request.blocks:
                if text in by_text or text in parse_errors:
                    continue
                try:
                    block = parse_block(text, source="serve")
                except ReproError as exc:
                    parse_errors[text] = str(exc)
                    telemetry.count("serve.parse_errors")
                    continue
                block_id = len(shards)
                record = BlockRecord(block=block, application="serve",
                                     frequency=1, block_id=block_id)
                shards.append(Shard(index=block_id, records=(record,),
                                    digest=shard_digest((record,))))
                by_text[text] = block_id

        stats: Dict = {}
        throughputs: Dict[int, float] = {}
        reasons: Dict[int, str] = {}
        if shards:
            corpus = Corpus([s.records[0] for s in shards])
            cache = self.cache_for(uarch, seed)
            pool_granted = self.breaker.allow_pool()
            jobs = self.config.jobs if pool_granted else 1
            if jobs != self.config.jobs:
                telemetry.count("serve.scalar_fallback_batches")
            profile = profile_corpus_sharded(
                corpus, uarch, seed=seed, jobs=jobs, shards=shards,
                cache=cache, worker_fn=self.worker_fn,
                serial_fn=self.serial_fn, stats=stats,
                run_label=f"serve batch x{len(requests)}")
            throughputs = profile.throughputs
            troubled = bool(stats.get("retried")
                            or stats.get("failed"))
            # Only pool-granted batches inform the breaker: a scalar
            # fallback succeeding says nothing about pool health, and
            # letting it close the breaker would skip the half-open
            # probe entirely.
            if pool_granted and self.config.jobs > 1:
                if troubled:
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            reasons = self._drop_reasons(
                cache, shards, throughputs)

        results = [self._assemble(request, by_text, throughputs,
                                  reasons, parse_errors)
                   for request in requests]
        if journal:
            for request, result in zip(requests, results):
                self.journal.record_done(request.digest, result)
        return results, stats

    def _drop_reasons(self, cache: ShardCache, shards: List[Shard],
                      throughputs: Dict[int, float]) -> Dict[int, str]:
        """Per-block drop reason, read back from the one-block shard.

        A block missing from the merged throughputs was dropped; its
        shard's cached funnel (single block, so at most one non-zero
        dropped bucket) names the reason.  A shard that never made it
        to the cache (worker failure, disk full) reads as ``unknown``.
        """
        reasons: Dict[int, str] = {}
        for shard in shards:
            block_id = shard.records[0].block_id
            if block_id in throughputs:
                continue
            reason = "unknown"
            profile = cache.load(shard)
            if profile is not None:
                dropped = profile.funnel.get("dropped") or {}
                for name, count in sorted(dropped.items()):
                    if count:
                        reason = name
                        break
            reasons[block_id] = reason
        return reasons

    @staticmethod
    def _assemble(request: ProfileRequest, by_text: Dict[str, int],
                  throughputs: Dict[int, float],
                  reasons: Dict[int, str],
                  parse_errors: Dict[str, str]) -> List:
        """One ordered result entry per block in the request."""
        results = []
        for text in request.blocks:
            if text in parse_errors:
                results.append({"status": "parse_error",
                                "detail": parse_errors[text]})
                continue
            block_id = by_text[text]
            if block_id in throughputs:
                results.append({"status": "ok",
                                "throughput": throughputs[block_id]})
            else:
                results.append({"status": "dropped",
                                "reason": reasons.get(block_id,
                                                      "unknown")})
        return results

    # ------------------------------------------------------------------
    # health

    def health(self, queue_depth: int = 0,
               draining: bool = False) -> Dict:
        return {
            "status": "draining" if draining else "ok",
            "breaker": self.breaker.state,
            "queue_depth": queue_depth,
            "jobs": self.config.jobs,
            "window": self.windows.last,
            "pending_journal": len(self.journal.pending),
        }


def canonical_results_bytes(results: List) -> bytes:
    """The byte form the replay-identity tests compare."""
    return json.dumps(results, sort_keys=True).encode()
