"""The asyncio daemon: transport, coalescing, deadlines, drain.

One accept loop, one batcher task.  Connections are short-lived
(one request, one JSON response, close); admitted profiling requests
are journaled durably, queued, and coalesced — the batcher lingers
``coalesce_ms`` so concurrent clients' blocks merge into one
content-addressed engine batch — then executed off-loop in a thread
(:meth:`ProfilingService.execute` blocks on the worker pool).

The robustness ladder, in request order:

1. ``serve_accept_error`` chaos: the connection dies at accept.
2. Draining (SIGTERM seen): profile requests get 503 + retry-after;
   health stays answerable so orchestrators can watch the drain.
3. Rate limit: per-client token bucket → 429 + retry-after.
4. Journal memo: an identical, already-answered request replays its
   recorded results with no queue and no engine work.
5. Admission: bounded queue → 429 + retry-after when full (or when
   ``serve_queue_full`` chaos forces the branch).
6. Deadline: work still queued when its deadline passes is cancelled
   *before* it reaches a worker, counted as a per-window miss, and
   answered 504 — never silently dropped.
7. Execution: circuit breaker picks pooled vs scalar; results are
   journaled ``done`` before the response bytes go out.
8. ``serve_slow_client`` chaos: the response write stalls
   ``hang_s`` seconds — the daemon must stay live throughout.

SIGTERM drains gracefully: stop admitting, let the batcher finish
what it can inside ``drain_s``, journal the rest (the next start
replays them), flush telemetry, exit 0.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Dict, List, Optional, Tuple

from repro.resilience import chaos
from repro.serve import http
from repro.serve.admission import AdmissionQueue, TokenBucket
from repro.serve.config import ServeConfig
from repro.serve.core import (ProfileRequest, ProfilingService,
                              RequestError, parse_profile_request)
from repro.telemetry import core as telemetry


class _Pending:
    """One admitted request waiting for the batcher."""

    __slots__ = ("request", "future", "digest")

    def __init__(self, request: ProfileRequest,
                 future: "asyncio.Future"):
        self.request = request
        self.future = future
        self.digest = request.digest


class ServeDaemon:
    """Asyncio transport around a :class:`ProfilingService`."""

    def __init__(self, service: ProfilingService, config: ServeConfig):
        self.service = service
        self.config = config
        self.queue = AdmissionQueue(config.queue_size,
                                    clock=service.clock)
        self.bucket = TokenBucket(config.rate, config.burst,
                                  clock=service.clock)
        self.draining = False
        self._conn_count = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._wake = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._batch_in_flight = 0

    # ------------------------------------------------------------------
    # lifecycle

    async def run(self) -> None:
        self.service.start()
        replayed = await asyncio.to_thread(self.service.recover)
        if replayed:
            telemetry.event("serve.recovery_replayed", count=replayed)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._begin_drain,
                                        signal.Signals(sig).name)
            except (NotImplementedError, RuntimeError):
                pass
        batcher = asyncio.create_task(self._batch_loop())
        if self.config.socket:
            if os.path.exists(self.config.socket):
                os.unlink(self.config.socket)
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.config.socket)
            where = self.config.socket
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host,
                port=self.config.port or 0)
            where = "%s:%d" % self._server.sockets[0].getsockname()[:2]
        telemetry.event("serve.listening", address=where,
                        jobs=self.config.jobs)
        print(f"repro serve: listening on {where} "
              f"(jobs={self.config.jobs}, "
              f"queue={self.config.queue_size})", flush=True)

        await self._shutdown.wait()
        await self._drain(batcher)

    def _begin_drain(self, signame: str = "SIGTERM") -> None:
        if not self.draining:
            self.draining = True
            telemetry.event("serve.drain_begin", signal=signame)
            print(f"repro serve: {signame} received, draining",
                  flush=True)
            self._shutdown.set()
            self._wake.set()

    async def _drain(self, batcher: "asyncio.Task") -> None:
        """Finish or journal in-flight work, then stop everything."""
        if self._server is not None:
            self._server.close()
        deadline = self.service.clock() + self.config.drain_s
        while (len(self.queue) or self._batch_in_flight) \
                and self.service.clock() < deadline:
            self._wake.set()
            await asyncio.sleep(0.02)
        # Whatever is still queued already has a durable ``req``
        # record: the next start replays it.  Tell waiting clients.
        leftovers = self.queue.pop_all()
        for pending in leftovers:
            self._resolve(pending, 503, http.error_body(
                503, "draining: request journaled for replay",
                request=pending.digest))
        batcher.cancel()
        try:
            await batcher
        except asyncio.CancelledError:
            pass
        if self._server is not None:
            await self._server.wait_closed()
        if self.config.socket and os.path.exists(self.config.socket):
            try:
                os.unlink(self.config.socket)
            except OSError:
                pass
        self.service.windows.close_window(final=True)
        telemetry.event("serve.drain_end", journaled=len(leftovers))
        self.service.close()

    # ------------------------------------------------------------------
    # connection handling

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._conn_count += 1
        conn_key = f"conn-{self._conn_count}"
        try:
            if chaos.fire("serve_accept_error", conn_key):
                telemetry.count("serve.accept_errors")
                writer.close()
                return
            try:
                request = await self._read_request(reader)
            except http.HttpError as exc:
                await self._send(writer, exc.status,
                                 http.error_body(exc.status,
                                                 exc.message))
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.LimitOverrunError):
                writer.close()
                return
            status, body, headers, slow_key = \
                await self._route(request)
            await self._send(writer, status, body, headers, slow_key)
        except ConnectionError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self,
                            reader: asyncio.StreamReader
                            ) -> http.HttpRequest:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise http.HttpError(413, "header block too large")
        method, path, headers = http.parse_head(head[:-4])
        length = http.content_length(headers)
        body = await reader.readexactly(length) if length else b""
        return http.HttpRequest(method, path, headers, body)

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    body: Dict,
                    headers: Optional[Dict[str, str]] = None,
                    slow_key: Optional[str] = None) -> None:
        if slow_key is not None:
            policy = chaos.active()
            if policy is not None and chaos.fire("serve_slow_client",
                                                 slow_key):
                telemetry.count("serve.slow_clients")
                await asyncio.sleep(policy.hang_seconds)
        writer.write(http.format_response(status, body, headers))
        try:
            await writer.drain()
        except ConnectionError:
            pass

    # ------------------------------------------------------------------
    # routing

    async def _route(self, request: http.HttpRequest
                     ) -> Tuple[int, Dict, Optional[Dict],
                                Optional[str]]:
        if request.path == "/v1/health":
            if request.method != "GET":
                return 405, http.error_body(405, "GET only"), \
                    None, None
            body = self.service.health(queue_depth=len(self.queue),
                                       draining=self.draining)
            return 200, body, None, None
        if request.path == "/v1/stats":
            if request.method != "GET":
                return 405, http.error_body(405, "GET only"), \
                    None, None
            return 200, self._stats_body(), None, None
        if request.path == "/v1/profile":
            if request.method != "POST":
                return 405, http.error_body(405, "POST only"), \
                    None, None
            return await self._profile(request)
        return 404, http.error_body(
            404, f"no route for {request.path}"), None, None

    def _stats_body(self) -> Dict:
        registry = telemetry.registry()
        counters = {name: counter.value
                    for name, counter in registry.counters.items()
                    if name.startswith(("serve.", "cache."))}
        return {"counters": counters,
                "window": self.service.windows.last,
                "breaker": self.service.breaker.state,
                "queue_depth": len(self.queue)}

    async def _profile(self, request: http.HttpRequest
                       ) -> Tuple[int, Dict, Optional[Dict],
                                  Optional[str]]:
        try:
            profile_request = parse_profile_request(
                request.json(), self.config)
        except http.HttpError as exc:
            self.service.windows.observe_error()
            return exc.status, http.error_body(exc.status,
                                               exc.message), \
                None, None
        except RequestError as exc:
            self.service.windows.observe_error()
            return exc.status, http.error_body(exc.status,
                                               exc.message), \
                None, None
        digest = profile_request.digest

        if self.draining:
            self.service.windows.observe_shed()
            return 503, http.error_body(
                503, "draining", request=digest,
                retry_after_ms=1000.0), \
                {"Retry-After": "1"}, digest

        decision = self.bucket.allow(profile_request.client)
        if not decision.admitted:
            self.service.windows.observe_shed()
            return 429, http.error_body(
                429, "rate limit exceeded", reason=decision.reason,
                retry_after_ms=round(decision.retry_after_ms, 1),
                request=digest), \
                self._retry_headers(decision.retry_after_ms), digest

        memo = self.service.lookup_memo(profile_request)
        if memo is not None:
            latency = 0.0
            self.service.windows.observe_completed(latency)
            return 200, self._result_body(profile_request, memo,
                                          cached=True), None, digest

        profile_request.admitted_at = self.service.clock()
        future: "asyncio.Future" = \
            asyncio.get_running_loop().create_future()
        pending = _Pending(profile_request, future)
        decision = self.queue.try_admit(pending)
        if not decision.admitted:
            self.service.windows.observe_shed()
            return 429, http.error_body(
                429, "admission queue full", reason=decision.reason,
                retry_after_ms=round(decision.retry_after_ms, 1),
                request=digest), \
                self._retry_headers(decision.retry_after_ms), digest

        # Durable before any work: SIGKILL from here on replays.
        await asyncio.to_thread(self.service.journal.record_request,
                                digest, profile_request.body())
        self._wake.set()
        status, body = await future
        return status, body, None, digest

    @staticmethod
    def _retry_headers(retry_after_ms: float) -> Dict[str, str]:
        return {"Retry-After":
                str(max(1, int(round(retry_after_ms / 1000.0))))}

    def _result_body(self, request: ProfileRequest, results: List,
                     cached: bool = False) -> Dict:
        return {"request": request.digest, "uarch": request.uarch,
                "seed": request.seed, "results": results,
                "cached": cached}

    # ------------------------------------------------------------------
    # batching

    async def _batch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if not len(self.queue):
                if self._shutdown.is_set():
                    await asyncio.sleep(0.01)
                continue
            if self.config.coalesce_ms > 0:
                await asyncio.sleep(self.config.coalesce_ms / 1000.0)
            batch = self.queue.pop_batch(self.config.batch_size)
            if not batch:
                continue
            self._batch_in_flight += 1
            try:
                await self._run_batch(batch)
            finally:
                self._batch_in_flight -= 1
            if len(self.queue):
                self._wake.set()

    async def _run_batch(self, batch: List[_Pending]) -> None:
        now = self.service.clock()
        live: List[_Pending] = []
        for pending in batch:
            if pending.request.expired(now):
                # Cancelled before it reaches a worker — journaled,
                # counted, answered; never silently dropped.
                await asyncio.to_thread(
                    self.service.journal.record_dropped,
                    pending.digest, "deadline")
                self.service.windows.observe_deadline_miss()
                self._resolve(pending, 504, http.error_body(
                    504, "deadline exceeded before execution",
                    request=pending.digest))
            else:
                live.append(pending)
        if not live:
            return
        groups: Dict[Tuple[str, int], List[_Pending]] = {}
        for pending in live:
            key = (pending.request.uarch, pending.request.seed)
            groups.setdefault(key, []).append(pending)
        for key in sorted(groups):
            group = groups[key]
            started = self.service.clock()
            try:
                results, _stats = await asyncio.to_thread(
                    self.service.execute,
                    [p.request for p in group], False)
            except Exception as exc:  # engine must not kill the loop
                telemetry.count("serve.batch_errors")
                telemetry.event("serve.batch_error",
                                error=type(exc).__name__)
                for pending in group:
                    self.service.windows.observe_error()
                    self._resolve(pending, 500, http.error_body(
                        500, f"batch failed: {type(exc).__name__}",
                        request=pending.digest))
                continue
            elapsed = self.service.clock() - started
            self.queue.observe_service_time(
                elapsed / max(1, len(group)))
            for pending, result in zip(group, results):
                await asyncio.to_thread(
                    self.service.journal.record_done,
                    pending.digest, result)
                latency_ms = 1000.0 * (self.service.clock()
                                       - pending.request.admitted_at)
                self.service.windows.observe_completed(latency_ms)
                self._resolve(pending, 200, self._result_body(
                    pending.request, result))

    @staticmethod
    def _resolve(pending: _Pending, status: int, body: Dict) -> None:
        if not pending.future.done():
            pending.future.set_result((status, body))


def run_daemon(config: ServeConfig,
               service: Optional[ProfilingService] = None) -> None:
    """Blocking entry point used by ``repro serve``."""
    service = service or ProfilingService(config)
    daemon = ServeDaemon(service, config)
    asyncio.run(daemon.run())
