"""A deliberately minimal HTTP/1.1 layer — stdlib only.

The daemon speaks just enough HTTP for curl, the bundled client, and
load generators: request line + headers + ``Content-Length`` body in,
one JSON response out, ``Connection: close`` on every exchange.  No
keep-alive, no chunked encoding, no TLS — a profiling daemon behind a
Unix socket or loopback port does not need them, and every feature
left out is an attack/robustness surface that cannot fail.

Parsing is hardened where it matters: header block and body sizes are
capped, Content-Length must be a sane integer, and any malformed input
maps to a clean 400 instead of an exception escaping into the accept
loop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

MAX_HEADER_BYTES = 16384
MAX_BODY_BYTES = 8 * 1024 * 1024

STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """Malformed request; carries the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "request body is not valid JSON")


def parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    """Parse the request line + headers (everything before the body)."""
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "header block too large")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:
        raise HttpError(400, "undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, path, headers


def content_length(headers: Dict[str, str]) -> int:
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise HttpError(400, f"bad Content-Length: {raw!r}")
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    return length


def format_response(status: int, body: Dict,
                    extra_headers: Optional[Dict[str, str]] = None
                    ) -> bytes:
    """One complete JSON response, Connection: close."""
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    reason = STATUS_TEXT.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(payload)}",
             "Connection: close"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + payload


def error_body(status: int, message: str, **extra) -> Dict:
    body = {"error": STATUS_TEXT.get(status, "error").lower()
            .replace(" ", "_"), "detail": message}
    body.update(extra)
    return body
