"""Serve-side windowed health metrics.

CORTEX's benchmarking methodology (SNIPPETS.md) is the operational
contract: per-window **p50/p95/p99 latency**, **jitter**, and
**deadline-miss rate** are the headline health numbers a profiling
service is judged by.  :class:`ServeWindows` folds every finished
request (completed, shed, or deadline-missed) into a fixed-size
window; when a window fills it emits one ``serve.window`` telemetry
event carrying the whole summary, bumps the matching counters, and
starts the next window.  Windows are keyed by *request count*, not
wall clock, so a replayed request stream produces the same window
boundaries.

Also here: the ``serve`` cache-stats provider — request-level dedup
(answers replayed from the request journal without touching the
engine) surfaces in the run report's unified ``caches`` section next
to the shard cache's own hit rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry import cachestats
from repro.telemetry import core as telemetry

#: Counter names for the request-level dedup memo (journal replays).
SERVE_CACHE = "serve"

cachestats.register_provider(
    SERVE_CACHE, lambda: cachestats.registry_stats(SERVE_CACHE))


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile over a sorted copy (no numpy needed)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


class ServeWindows:
    """Fixed-size request windows of latency/deadline-miss health."""

    def __init__(self, window: int = 32):
        self.window = max(1, window)
        self.index = 0
        self._latencies: List[float] = []
        self._misses = 0
        self._sheds = 0
        self._errors = 0
        self._completed = 0
        #: Most recent closed window summary (health endpoint).
        self.last: Optional[Dict] = None

    # ------------------------------------------------------------------

    def observe_completed(self, latency_ms: float) -> None:
        telemetry.count("serve.requests")
        telemetry.observe("serve.latency_ms", latency_ms)
        self._latencies.append(latency_ms)
        self._completed += 1
        self._maybe_close()

    def observe_deadline_miss(self) -> None:
        telemetry.count("serve.requests")
        telemetry.count("serve.deadline_miss")
        self._misses += 1
        self._maybe_close()

    def observe_shed(self) -> None:
        # Sheds count toward window size (they are finished requests)
        # but not toward the deadline-miss rate: the client was told to
        # back off, nothing was silently lost.
        telemetry.count("serve.requests")
        self._sheds += 1
        self._maybe_close()

    def observe_error(self) -> None:
        telemetry.count("serve.requests")
        telemetry.count("serve.errors")
        self._errors += 1
        self._maybe_close()

    # ------------------------------------------------------------------

    def _size(self) -> int:
        return (len(self._latencies) + self._misses + self._sheds
                + self._errors)

    def _maybe_close(self) -> None:
        if self._size() >= self.window:
            self.close_window()

    def close_window(self, final: bool = False) -> Optional[Dict]:
        """Summarise and emit the current window (no-op when empty)."""
        size = self._size()
        if not size:
            return self.last if final else None
        lat = self._latencies
        mean = sum(lat) / len(lat) if lat else 0.0
        jitter = 0.0
        if len(lat) > 1:
            jitter = (sum((v - mean) ** 2 for v in lat)
                      / (len(lat) - 1)) ** 0.5
        summary = {
            "index": self.index,
            "size": size,
            "completed": self._completed,
            "deadline_misses": self._misses,
            "shed": self._sheds,
            "errors": self._errors,
            "deadline_miss_rate": round(self._misses / size, 4),
            "latency_ms": {
                "mean": round(mean, 3),
                "jitter": round(jitter, 3),
                "p50": round(_percentile(lat, 0.50), 3),
                "p95": round(_percentile(lat, 0.95), 3),
                "p99": round(_percentile(lat, 0.99), 3),
            },
        }
        telemetry.event("serve.window", final=final, **summary)
        telemetry.count("serve.windows")
        self.last = summary
        self.index += 1
        self._latencies = []
        self._misses = 0
        self._sheds = 0
        self._errors = 0
        self._completed = 0
        return summary


def count_replay_hit() -> None:
    """A request answered from the journal memo (no engine work)."""
    telemetry.count(cachestats.counter_name(SERVE_CACHE, "hits"))


def count_replay_miss() -> None:
    """A request that had to run through the engine."""
    telemetry.count(cachestats.counter_name(SERVE_CACHE, "misses"))
