"""Crash-safe request journal: SIGKILL → restart replays pending work.

Admitted profiling requests are durably appended (``req`` record)
*before* any work runs, and their results appended (``done`` record)
*before* the response goes out.  Lines reuse the CRC-self-checked
format of :func:`repro.resilience.journal.journal_line`, so a daemon
killed mid-write leaves at worst one torn final line that fails its
self-check and is dropped on load — never a parse error.

On startup :meth:`RequestJournal.open` returns the requests that have
a ``req`` record but no matching ``done``: the service re-executes
them before accepting new traffic.  Because requests are
content-addressed (digest over uarch, seed, and block texts) and the
engine is deterministic, the replayed ``done`` records carry results
byte-identical to what an uninterrupted run would have produced — the
daemon lifecycle suite holds it to that across serial and pooled
backends.

The journal is also the deduplication memo: a ``done`` record doubles
as a request-level cache, so an identical request replays its recorded
results without touching the engine at all.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, TextIO, Tuple

from repro.resilience.journal import journal_line, parse_journal_line

LOG_VERSION = 1

#: Request-journal filename inside the serve state directory.
REQUEST_LOG_NAME = "requests.ndjson"


class RequestJournal:
    """Append-only NDJSON journal of admitted requests and results."""

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[TextIO] = None
        #: Records dropped for failing their self-check on load.
        self.torn_records = 0
        #: digest -> request body for reqs with no done record yet.
        self.pending: Dict[str, Dict] = {}
        #: digest -> recorded results (request-level dedup memo).
        self.completed: Dict[str, List] = {}

    # ------------------------------------------------------------------

    def open(self) -> Dict[str, Dict]:
        """Open for appending; returns pending requests to replay.

        A prior journal is always continued — request records are
        content-addressed, so there is no run identity to mismatch.
        """
        self.pending = {}
        self.completed = {}
        self.torn_records = 0
        self._read_existing()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "a")
        if not os.path.getsize(self.path):
            self._append({"kind": "begin", "version": LOG_VERSION})
        return dict(self.pending)

    def _read_existing(self) -> None:
        try:
            with open(self.path) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return
        for line in lines:
            if not line.strip():
                continue
            record = parse_journal_line(line)
            if record is None:
                self.torn_records += 1
                continue
            kind = record.get("kind")
            digest = record.get("id")
            if kind == "req" and isinstance(digest, str):
                body = record.get("body")
                if isinstance(body, dict):
                    self.pending[digest] = body
            elif kind == "done" and isinstance(digest, str):
                self.pending.pop(digest, None)
                results = record.get("results")
                # Dropped closeouts (deadline, unreplayable) clear
                # pending but must not memoize an empty answer.
                if isinstance(results, list) \
                        and "dropped" not in record:
                    self.completed[digest] = results

    # ------------------------------------------------------------------

    def record_request(self, digest: str, body: Dict) -> None:
        """Durably admit one request (flush + fsync before any work)."""
        self._append({"kind": "req", "id": digest, "body": body})
        self.pending[digest] = body

    def record_done(self, digest: str, results: List) -> None:
        """Durably record one request's results before responding."""
        self._append({"kind": "done", "id": digest, "results": results})
        self.pending.pop(digest, None)
        self.completed[digest] = results

    def record_dropped(self, digest: str, reason: str) -> None:
        """Close out a request that will never produce results.

        Deadline-expired or poisoned requests must not replay forever:
        a ``done`` record with an empty result list and a reason keeps
        the journal's pending set honest while staying visible.
        """
        self._append({"kind": "done", "id": digest, "results": [],
                      "dropped": reason})
        self.pending.pop(digest, None)

    def _append(self, record: Dict) -> None:
        assert self._fh is not None, "request journal not opened"
        self._fh.write(journal_line(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def read_done_records(path: str) -> List[Tuple[str, List]]:
    """All intact ``done`` records in append order (test helper)."""
    out: List[Tuple[str, List]] = []
    try:
        with open(path) as fh:
            lines = fh.read().splitlines()
    except OSError:
        return out
    for line in lines:
        record = parse_journal_line(line)
        if record and record.get("kind") == "done":
            out.append((record.get("id"), record.get("results")))
    return out
