"""Simulation-core fast path.

Three layers, all provably byte-identical to full simulation (the
differential suite under ``tests/simcore`` holds them to it):

* **Steady-state extrapolation** — the functional executor and the
  timing model both detect when an unrolled run's per-iteration
  signature (architectural state delta, memory footprint, cycle delta)
  becomes periodic, then replicate/extrapolate the remaining
  iterations analytically instead of simulating them
  (:mod:`repro.simcore.fastrun`, :mod:`repro.simcore.periodicity`,
  plus the steady-state hooks in ``uarch/machine.py`` and
  ``uarch/scheduler.py``).
* **Decode/uop caching** — parsed instructions are interned
  (``isa/parser.py``), their hashes cached, and uop decomposition is
  resolved once per static slot per schedule call instead of once per
  dynamic instruction.
* **Corpus-level dedup** — blocks are content-addressed by canonical
  text and profiled once per (uarch, config); duplicates reuse the
  memoised result (``profiler/harness.py``).

Everything is guarded by one switch (:mod:`repro.simcore.config`):
``--no-fastpath`` on the CLI or ``REPRO_NO_FASTPATH=1`` in the
environment falls back to full simulation everywhere.
"""

from repro.simcore.config import enabled, forced, set_enabled

__all__ = ["enabled", "forced", "set_enabled"]
