"""The fast-path switchboard.

One global predicate, :func:`enabled`, consulted by every fast-path
layer (executor session, annotation early-exit, scheduler
extrapolation, profile memo).  Disabled by ``REPRO_NO_FASTPATH=1`` in
the environment (exported by the CLI's ``--no-fastpath`` before any
worker forks, so pools inherit it) or programmatically via
:func:`set_enabled` / :func:`forced` in tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

ENV_VAR = "REPRO_NO_FASTPATH"

_DISABLING = ("1", "true", "yes", "on")

#: Programmatic override; ``None`` defers to the environment.
_override: Optional[bool] = None


def enabled() -> bool:
    """Is the simulation-core fast path active?"""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() not in _DISABLING


def set_enabled(value: Optional[bool]) -> None:
    """Force the fast path on/off; ``None`` defers to ``$REPRO_NO_FASTPATH``."""
    global _override
    _override = None if value is None else bool(value)


@contextmanager
def forced(value: bool) -> Iterator[None]:
    """Temporarily force the fast path on or off (tests, benches)."""
    global _override
    saved = _override
    _override = bool(value)
    try:
        yield
    finally:
        _override = saved
