"""Resumable functional execution with steady-state extrapolation.

:class:`BlockRun` is the fast path's replacement for the repeated
``reinitialize(); execute_block()`` restarts of the monitor loop
(Fig. 2).  It executes the unrolled block iteration by iteration and

* **checkpoints** the complete machine state (registers, flags, FTZ,
  RIP, and every mapped frame's bytes) at each iteration boundary, so
  a page fault rolls back to the start of the faulting iteration and
  the run *resumes* after the monitor maps the page — instead of
  restarting from iteration 0.  Exact because re-initialisation makes
  the prefix a deterministic replay: the completed iterations never
  touched an unmapped page, page tables only grow, and
  ``VirtualMemory.write_bytes`` resolves every page before writing a
  byte, so a faulting instruction leaves no partial state behind.
* **extrapolates** once the boundary state matches a recent boundary
  exactly (lag ``q``): the next iterations must replay the last ``q``
  verbatim, so their events are replicated analytically and the trace
  is stamped with the ``(t, q)`` steady witness the timing model's own
  fast path consumes.  Blocks with growing footprints never produce a
  boundary match (the state comparison includes every frame's bytes),
  which is the conservative bail-out for L1-overflow kernels.
* takes a **static shortcut** for pure-register blocks (no memory, no
  division, no FP): iteration 0 determines the whole trace.

The trace produced is byte-identical to ``execute_block``'s; the final
*architectural* state is not (extrapolated iterations are not
executed), which is why only the mapping loop — whose callers consume
the trace and the page table, never the register file — uses this.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.errors import MemoryFault, StepBudgetExceeded
from repro.isa.instruction import BasicBlock
from repro.resilience import policy as _resilience_policy
from repro.runtime import blockplan
from repro.runtime.executor import Executor, handler_plan
from repro.runtime import plan as planmod
from repro.runtime.trace import ExecutionTrace, InstrEvent
from repro.simcore.periodicity import MAX_PERIOD, is_pure_register_block
from repro.telemetry import core as telemetry

#: Boundary signature: (state signature (register/flag value tuples,
#: ftz, rip), ((frame, bytes), ...)).  Equality of two signatures
#: implies the machine will evolve identically from both boundaries.
_Signature = Tuple


class BlockRun:
    """One unrolled functional run that survives page faults."""

    def __init__(self, executor: Executor, block: BasicBlock,
                 unroll: int):
        self.executor = executor
        self.block = block
        self.unroll = unroll
        self.trace = ExecutionTrace(block_len=len(block), unroll=unroll)
        self.iteration = 0
        self.done = False
        #: First iteration whose events were replicated, not executed.
        self.extrapolated_from: Optional[int] = None
        # Same execution strategy split as Executor.execute_block:
        # pre-bound step closures when block plans are enabled, the
        # interpreted handler plan otherwise.
        if blockplan.enabled():
            self._steps: Optional[Tuple] = planmod.bound_plan(
                executor, block)
            self._plan = None
        else:
            self._steps = None
            self._plan = handler_plan(block)
        self._pure = is_pure_register_block(block)
        self._history: Deque[_Signature] = deque(maxlen=MAX_PERIOD)
        self._executed = 0

    # ------------------------------------------------------------------

    def run(self) -> ExecutionTrace:
        """Execute (or resume) until the full trace exists.

        Raises exactly what ``execute_block`` would raise, at the same
        dynamic instruction; after a :class:`MemoryFault` the state is
        rolled back to the faulting iteration's start and ``run`` may
        be called again once the monitor has mapped the page.
        """
        ex = self.executor
        events = self.trace.events
        block_len = self.trace.block_len
        execute_instruction = ex.execute_instruction
        plan = self._plan
        steps = self._steps
        history = self._history
        pure = self._pure
        budget = _resilience_policy.step_budget()

        while self.iteration < self.unroll:
            # Watchdog mirror of ``execute_block``: the budget counts
            # *executed* instructions — extrapolated iterations are
            # replicated, not run, so they are free.
            if self._executed > budget:
                raise StepBudgetExceeded(self._executed, budget)
            sig = None
            if pure:
                if self.iteration >= 1:
                    self._extrapolate(1)
                    break
            else:
                sig = self._capture()
                period = self._find_period(sig)
                if period is not None:
                    self._extrapolate(period)
                    break
            index = self.iteration * block_len
            try:
                if steps is not None:
                    for slot in range(block_len):
                        event = InstrEvent(index=index, slot=slot)
                        steps[slot](event)
                        events.append(event)
                        index += 1
                else:
                    for slot, (instr, handler) in enumerate(plan):
                        event = InstrEvent(index=index, slot=slot)
                        ex._event = event
                        if handler is None:
                            execute_instruction(instr)
                        else:
                            handler(ex, instr)
                        events.append(event)
                        index += 1
            except MemoryFault:
                self._rollback(sig)
                raise
            self._executed += block_len
            if sig is not None:
                history.append(sig)
            self.iteration += 1

        self.done = True
        if telemetry.is_enabled():
            telemetry.count("runtime.blocks_executed")
            telemetry.count("runtime.instructions_executed",
                            self._executed)
            if self.extrapolated_from is not None:
                telemetry.count("simcore.exec_extrapolated")
                telemetry.count(
                    "simcore.exec_iterations_skipped",
                    self.unroll - self.extrapolated_from)
            else:
                telemetry.count("simcore.exec_full")
        return self.trace

    # ------------------------------------------------------------------

    def _capture(self) -> _Signature:
        """Complete machine state at an iteration boundary.

        ``MachineState.signature()`` is three C-level list→tuple
        copies over the flat slot arrays (no dict materialisation).
        All mapped frames are captured — in single-page mode that is
        one 4 KiB frame; in ablation modes a growing frame list
        changes the tuple length and simply prevents matches.
        """
        return (self.executor.state.signature(),
                tuple((page, bytes(page.data))
                      for page in self.executor.memory.physical_pages))

    def _rollback(self, sig: Optional[_Signature]) -> None:
        """Restore the boundary captured in ``sig`` after a fault.

        In-place: ``MachineState.restore`` reuses the state's slot
        arrays (the compiled plans' closures hold references to them)
        and frame buffers are overwritten, not replaced.
        """
        del self.trace.events[self.iteration * self.trace.block_len:]
        if sig is None:
            return
        state_sig, frames = sig
        self.executor.state.restore(state_sig)
        for page, data in frames:
            page.data[:] = data

    def _find_period(self, sig: _Signature) -> Optional[int]:
        """Smallest lag whose boundary state equals the current one."""
        history = self._history
        for lag in range(1, len(history) + 1):
            if history[-lag] == sig:
                return lag
        return None

    def _extrapolate(self, period: int) -> None:
        """Replicate the last ``period`` iterations' events to the end.

        The boundary match proves iterations ``[start - period,
        start)`` replay verbatim from ``start`` on, so fresh events
        (correct ``index``, shared access lists — consumers never
        mutate them) complete the trace, stamped with the witness.
        """
        trace = self.trace
        events = trace.events
        block_len = trace.block_len
        start = self.iteration
        window = events[(start - period) * block_len:
                        start * block_len]
        index = start * block_len
        total = self.unroll * block_len
        size = len(window)
        pos = 0
        append = events.append
        while index < total:
            src = window[pos]
            append(InstrEvent(index, src.slot, src.accesses,
                              src.subnormal, src.div_class))
            index += 1
            pos += 1
            if pos == size:
                pos = 0
        trace.steady_from = start - period
        trace.period = period
        self.extrapolated_from = start
        self.iteration = self.unroll
