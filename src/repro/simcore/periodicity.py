"""Detecting steady state in execution traces.

The profiler's re-initialisation discipline makes an unrolled run a
deterministic function of the initial state, so once the per-iteration
behaviour repeats it repeats forever.  Two detectors exploit that:

* :func:`is_pure_register_block` — a static proof that every iteration
  is identical: no memory traffic, no division faults, no FP assists.
  One simulated iteration then determines the whole trace.
* :func:`detect_event_periodicity` — a dynamic scan over a finished
  trace for the smallest period ``q`` (up to :data:`MAX_PERIOD`) such
  that every iteration from some start ``t`` on repeats the events of
  the iteration ``q`` earlier.  Accumulator blocks whose *register*
  state grows forever (so state-signature matching in the executor
  never fires) are still event-periodic, which is what the timing
  model cares about.

Both report a ``(t, q)`` *steady witness*: iteration ``i`` behaves
exactly like iteration ``i + q`` for all ``i >= t``.  A block whose
memory footprint is still growing (the L1-overflow kernels that
motivate the paper's two-unroll-factor technique) produces fresh
addresses every iteration and therefore never gets a witness — the
conservative bail-out the fast path's exactness argument needs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.instruction import BasicBlock
from repro.runtime.trace import ExecutionTrace

#: Largest per-iteration period either detector looks for.  Real
#: steady states in straight-line code are period 1 (occasionally 2,
#: e.g. pointer-swap idioms); 4 gives margin without making boundary
#: checks expensive.
MAX_PERIOD = 4


def is_pure_register_block(block: BasicBlock) -> bool:
    """Every iteration provably identical, before executing any.

    True only when no instruction can touch memory (including the
    implicit stack traffic of ``push``/``pop``), fault arithmetically
    (``div``/``idiv``), or fire an FP assist (any FP op can meet a
    subnormal).  Such a block's dynamic events carry no addresses and
    no flags of interest, so iteration 0 determines the whole trace.
    """
    for instr in block.instructions:
        if instr.loads_memory or instr.stores_memory:
            return False
        if instr.mnemonic in ("push", "pop"):
            return False
        info = instr.info
        if info.group == "int_div" or info.fp is not None:
            return False
    return True


def iteration_signatures(trace: ExecutionTrace) -> List[Tuple]:
    """Hashable per-iteration event signatures (addresses + assists)."""
    block_len = trace.block_len
    events = trace.events
    return [
        tuple((event.subnormal, event.div_class,
               tuple((a.address, a.width, a.is_write)
                     for a in event.accesses))
              for event in events[i * block_len:(i + 1) * block_len])
        for i in range(trace.unroll)
    ]


def detect_event_periodicity(trace: ExecutionTrace,
                             max_period: int = MAX_PERIOD
                             ) -> Optional[Tuple[int, int]]:
    """Smallest-period steady witness ``(t, q)`` of a finished trace.

    Requires at least two full periods of evidence inside the trace
    (``t + 2q <= unroll``) so a coincidental last-iteration match
    cannot produce a witness.  The result is cached on the trace
    (``steady_from``/``period``), which also lets the executor's own
    online detector pre-seed it.
    """
    if trace.period:
        return (trace.steady_from, trace.period)
    unroll = trace.unroll
    block_len = trace.block_len
    if unroll < 3 or len(trace.events) != unroll * block_len:
        return None
    sigs = iteration_signatures(trace)
    for q in range(1, max_period + 1):
        if 2 * q >= unroll:
            break
        if sigs[unroll - 1] != sigs[unroll - 1 - q]:
            continue
        i = unroll - 2 - q
        while i >= 0 and sigs[i] == sigs[i + q]:
            i -= 1
        t = i + 1
        if t + 2 * q <= unroll:
            trace.steady_from = t
            trace.period = q
            return (t, q)
    return None
