"""repro.telemetry — opt-in tracing, metrics, and run reports.

The observability layer behind the paper's "2M+ blocks without user
intervention" claim: every block the harness drops is accounted for,
every pipeline stage is timed, and every cache decision is visible.

Quickstart::

    from repro import telemetry

    telemetry.enable()                      # metrics only
    telemetry.enable("trace.ndjson")        # + NDJSON event export

    with telemetry.span("my.stage"):
        ...                                 # timed, nested, exported

    telemetry.count("my.counter")
    telemetry.observe("my.latency_ms", 1.25)

    snap = telemetry.registry().snapshot()
    report = telemetry.build_run_report(
        telemetry.registry(), name="my_run")
    telemetry.write_run_report(report)      # reports/my_run.{json,txt}

Disabled (the default), every call above is a guarded no-op: the
profiler stays within a <5 % overhead budget enforced by
``benchmarks/bench_telemetry_overhead.py``.  See docs/observability.md
for the event schema and metric catalogue.
"""

from repro.telemetry.core import (MemorySink, NdjsonSink, NullSink, Span,
                                  Telemetry, count, current_phase, disable,
                                  enable, event, get_telemetry, is_enabled,
                                  observe, read_ndjson, register_reset_hook,
                                  registry, reset, set_gauge, span, trace_id)
from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry)
from repro.telemetry.cachestats import CacheStats
from repro.telemetry.report import (build_run_report, default_report_dir,
                                    funnel_from_counters, render_summary,
                                    write_run_report)
from repro.telemetry.resources import (peak_rss_kb, resources_section,
                                       sample_peak_rss)
from repro.telemetry.window import WindowAggregator, default_window_size

__all__ = [
    # hub + lifecycle
    "Telemetry", "get_telemetry", "enable", "disable", "is_enabled",
    "reset", "register_reset_hook", "trace_id", "current_phase",
    # instrumentation points
    "span", "event", "count", "observe", "set_gauge", "registry",
    # sinks + spans
    "NullSink", "MemorySink", "NdjsonSink", "Span", "read_ndjson",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    # unified cache telemetry + windowed series
    "CacheStats", "WindowAggregator", "default_window_size",
    # reports + process resources
    "build_run_report", "render_summary", "write_run_report",
    "default_report_dir", "funnel_from_counters",
    "peak_rss_kb", "sample_peak_rss", "resources_section",
]
