"""The perf-regression gate behind ``repro bench check``.

The repo's benchmark suites persist their committed results as
``BENCH_*.json`` at the repo root (``BENCH_simcore.json``,
``BENCH_blockplan.json``, ``BENCH_windows.json``): small JSON
documents whose *headline* leaves — numbers named ``speedup`` or
``throughput_kblocks_per_s``, all higher-is-better — summarise what
the optimisation bought, next to a top-level ``floor`` recording the
minimum the suite promises.

Two gate modes:

* **self mode** (no baseline): each file's *best* headline value must
  clear ``floor * (1 - tolerance)``.  The best, not every leaf — the
  files deliberately include off-configuration rows (e.g. blockplan's
  ``fastpath_on`` section, where the fast path already ate most of the
  win) that sit below the headline floor by design.
* **``--against BASELINE_DIR``**: every headline leaf present in both
  the current file and the like-named baseline file must satisfy
  ``current >= baseline * (1 - tolerance)`` — per-leaf, so a
  regression hiding under a still-healthy best value is caught.

CI runs ``repro bench check --tolerance 0.15`` against the committed
files as a smoke gate; developers re-run the suites and gate the fresh
output against the committed ones with ``--against``.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Optional, Tuple

__all__ = ["HEADLINE_LEAVES", "discover_bench_files", "headline_leaves",
           "check_file", "run_gate", "render_gate"]

#: Leaf names treated as headline metrics (all higher-is-better).
HEADLINE_LEAVES = ("speedup", "throughput_kblocks_per_s")

#: Default relative tolerance before a drop counts as a regression.
DEFAULT_TOLERANCE = 0.10


def discover_bench_files(root: str = ".") -> List[str]:
    """The committed benchmark results under ``root``, sorted."""
    return sorted(glob.glob(os.path.join(root, "BENCH_*.json")))


def headline_leaves(doc: Dict, prefix: str = ""
                    ) -> List[Tuple[str, float]]:
    """All ``(dotted.path, value)`` headline leaves in a bench doc."""
    leaves: List[Tuple[str, float]] = []
    for key, value in doc.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            leaves.extend(headline_leaves(value, prefix=f"{path}."))
        elif key in HEADLINE_LEAVES and \
                isinstance(value, (int, float)):
            leaves.append((path, float(value)))
    return sorted(leaves)


def check_file(name: str, current: Dict, baseline: Optional[Dict],
               tolerance: float) -> List[Dict]:
    """Gate one benchmark document; returns one row per check."""
    checks: List[Dict] = []
    leaves = headline_leaves(current)
    floor = current.get("floor")
    if isinstance(floor, (int, float)) and leaves:
        best_path, best = max(leaves, key=lambda kv: kv[1])
        required = float(floor) * (1.0 - tolerance)
        checks.append({
            "file": name, "mode": "floor", "metric": best_path,
            "value": round(best, 4), "reference": float(floor),
            "required": round(required, 4), "ok": best >= required,
        })
    if baseline is not None:
        base_leaves = dict(headline_leaves(baseline))
        for path, value in leaves:
            ref = base_leaves.get(path)
            if ref is None:
                continue
            required = ref * (1.0 - tolerance)
            checks.append({
                "file": name, "mode": "baseline", "metric": path,
                "value": round(value, 4), "reference": round(ref, 4),
                "required": round(required, 4),
                "ok": value >= required,
            })
    if not checks:
        checks.append({
            "file": name, "mode": "none", "metric": None,
            "value": None, "reference": None, "required": None,
            "ok": True, "note": "no headline metrics found",
        })
    return checks


def run_gate(paths: List[str], tolerance: float = DEFAULT_TOLERANCE,
             baseline_dir: Optional[str] = None) -> Dict:
    """Load + gate every benchmark file; returns the gate report."""
    checks: List[Dict] = []
    errors: List[str] = []
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as fh:
                current = json.load(fh)
        except (OSError, ValueError) as exc:
            errors.append(f"{name}: {exc}")
            continue
        baseline = None
        if baseline_dir is not None:
            base_path = os.path.join(baseline_dir, name)
            try:
                with open(base_path) as fh:
                    baseline = json.load(fh)
            except OSError:
                errors.append(f"{name}: no baseline in "
                              f"{baseline_dir} (floor check only)")
            except ValueError as exc:
                errors.append(f"{name}: bad baseline: {exc}")
        checks.extend(check_file(name, current, baseline, tolerance))
    return {
        "gate": "bench-check",
        "tolerance": tolerance,
        "files": [os.path.basename(p) for p in paths],
        "checks": checks,
        "errors": errors,
        "ok": bool(checks) and all(c["ok"] for c in checks),
    }


def render_gate(report: Dict) -> str:
    """Human-readable gate summary (the non-``--format json`` output)."""
    lines = [f"bench check (tolerance {report['tolerance']:.0%})"]
    for check in report["checks"]:
        if check["metric"] is None:
            lines.append(f"  ?    {check['file']}: "
                         f"{check.get('note', 'nothing to check')}")
            continue
        verdict = "ok  " if check["ok"] else "FAIL"
        against = "floor" if check["mode"] == "floor" else "baseline"
        lines.append(
            f"  {verdict} {check['file']} {check['metric']} = "
            f"{check['value']} (>= {check['required']} from "
            f"{against} {check['reference']})")
    for error in report["errors"]:
        lines.append(f"  warn {error}")
    lines.append("gate: " + ("PASS" if report["ok"] else "FAIL"))
    return "\n".join(lines)
