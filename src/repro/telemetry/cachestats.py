"""Unified cache telemetry: every cache, one protocol, one section.

The repo has grown six caches, each of which used to report ad hoc or
not at all:

* the **shard cache** (``parallel/shard_cache.py``) — on-disk
  per-shard profile store;
* the **block-plan cache** (``runtime/plan.py``) — compiled symbolic
  plans plus per-executor bound plans;
* the **decode intern table** (``isa/parser.py``) — the simcore
  ``lru_cache`` over instruction texts;
* the **dedup memo** (``profiler/harness.py``) — content-addressed
  block-profile memoisation;
* the **page cache** (``runtime/memory.py``) — the last-translated
  virtual page fast path;
* the **triage store** (``triage/stage.py``, opt-in) — journaled
  measurements replayed when the learned surrogate confirms them
  (hits = revalidated blocks, misses = novel + disagreeing).

Each registers a provider here — a zero-argument callable returning a
:class:`CacheStats` snapshot — and the run report renders them all in
one ``caches`` section.  Providers are *pull*-based: nothing is
computed until a report asks, so hot paths pay nothing beyond the
plain integer increments they already do (the decode intern table pays
literally nothing — its numbers come from ``lru_cache.cache_info()``).

Stitched worker runs fold their counters into the parent through
:func:`merge_counter_stats`, so pooled runs report pool-wide cache
behaviour, not just the parent's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.telemetry import core

__all__ = ["CacheStats", "register_provider", "snapshot",
           "merge_counter_stats", "counter_name", "registry_stats"]


@dataclass
class CacheStats:
    """One cache's lifetime-to-date numbers.

    ``hits``/``misses``/``evictions`` are cumulative; ``size`` and
    ``capacity`` are point-in-time (``capacity=None`` means unbounded).
    """

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: Optional[int] = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        if not self.lookups:
            return None
        return self.hits / self.lookups

    def as_dict(self) -> Dict:
        rate = self.hit_rate
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(rate, 4) if rate is not None else None,
        }


#: name -> zero-arg provider returning a CacheStats snapshot.
_PROVIDERS: Dict[str, Callable[[], CacheStats]] = {}


def register_provider(name: str,
                      provider: Callable[[], CacheStats]) -> None:
    """Register (or replace) the stats provider for cache ``name``."""
    _PROVIDERS[name] = provider


def counter_name(cache: str, field: str) -> str:
    """The registry counter a cache uses for ``field``.

    The convention every instrumented cache follows:
    ``cache.<name>.<hits|misses|evictions>``.  Worker stitching relies
    on this prefix to know which counters are cache telemetry.
    """
    return f"cache.{cache}.{field}"


def merge_counter_stats(stats: CacheStats,
                        counters: Dict[str, int]) -> CacheStats:
    """Fold stitched-in registry counters into a provider snapshot.

    Providers that count through the telemetry registry (shard cache,
    block-plan cache, dedup memo) read the parent registry, which —
    after stitching — already includes worker counts.  Providers that
    keep plain attribute counters (page cache, decode table) only see
    the parent process; this helper lets the report add the workers'
    ``cache.<name>.*`` counters on top.
    """
    prefix = f"cache.{stats.name}."
    return CacheStats(
        name=stats.name,
        hits=stats.hits + counters.get(prefix + "hits", 0),
        misses=stats.misses + counters.get(prefix + "misses", 0),
        evictions=stats.evictions
        + counters.get(prefix + "evictions", 0),
        size=stats.size,
        capacity=stats.capacity,
    )


def snapshot() -> List[CacheStats]:
    """Current stats from every registered cache, name-sorted."""
    return [_PROVIDERS[name]() for name in sorted(_PROVIDERS)]


def registry_stats(name: str, size: int = 0,
                   capacity: Optional[int] = None) -> CacheStats:
    """Build stats for a cache that counts via the telemetry registry."""
    counters = core.registry().snapshot()["counters"]
    return CacheStats(
        name=name,
        hits=counters.get(counter_name(name, "hits"), 0),
        misses=counters.get(counter_name(name, "misses"), 0),
        evictions=counters.get(counter_name(name, "evictions"), 0),
        size=size,
        capacity=capacity,
    )
