"""The tracer: spans, events, and export sinks.

One process-wide :class:`Telemetry` hub owns an on/off switch, a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and a sink.  The
layer is strictly opt-in: until :func:`enable` is called every
instrumentation point short-circuits on a single attribute check, and
``span()`` hands back a shared no-op context manager — the profiler's
throughput budget (<5 % overhead disabled, enforced by
``benchmarks/bench_telemetry_overhead.py``) depends on that.

Spans nest: ``with span("experiment.measure"): ...`` records wall time
(``time.perf_counter``), depth, and parent, emits one NDJSON event on
close, and feeds the ``span.<name>`` histogram so run reports can show
per-stage timings without replaying the event stream.

This module imports only the standard library (plus its sibling
``metrics``) so any layer of the stack — ISA tables, the scheduler,
the executor — can instrument itself without import cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterator, List, Optional, TextIO, Union

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "NullSink", "MemorySink", "NdjsonSink", "Span", "Telemetry",
    "get_telemetry", "enable", "disable", "is_enabled", "reset",
    "span", "event", "count", "observe", "set_gauge", "registry",
    "read_ndjson", "register_reset_hook", "trace_id", "current_phase",
]

#: Functions invoked on every :func:`reset` — the live-layer modules
#: (windows, cache stats, phase profiles) register here so test
#: isolation wipes their module state without ``core`` importing them
#: (which would invert the dependency direction).
_RESET_HOOKS: List = []


def register_reset_hook(hook) -> None:
    """Run ``hook()`` whenever the hub is reset (test isolation)."""
    if hook not in _RESET_HOOKS:
        _RESET_HOOKS.append(hook)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

class NullSink:
    """Drops every event — the disabled / metrics-only configuration."""

    def emit(self, record: Dict) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Collects events in memory (tests, examples, the CLI summary)."""

    def __init__(self):
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class NdjsonSink:
    """Streams events as newline-delimited JSON, one object per line.

    Accepts a path (opened and owned by the sink) or an already-open
    text stream (borrowed; ``close()`` only flushes it).
    ``autoflush`` flushes after every record — the live layer uses it
    for worker side-channel files and heartbeat-bearing traces so an
    in-flight run can be tailed (``repro top``) and a crashed worker
    leaves complete lines behind.
    """

    def __init__(self, target: Union[str, TextIO],
                 autoflush: bool = False):
        self._lock = threading.Lock()
        self.autoflush = autoflush
        if isinstance(target, str):
            parent = os.path.dirname(target)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self.path: Optional[str] = target
            self._fh: TextIO = open(target, "w")
            self._owns = True
        else:
            self.path = getattr(target, "name", None)
            self._fh = target
            self._owns = False

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._fh.write(line + "\n")
            if self.autoflush:
                self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()


def read_ndjson(path: str) -> List[Dict]:
    """Load an NDJSON trace back into event dicts (round-trip helper)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

class Span:
    """One timed, nested region of work."""

    __slots__ = ("name", "attrs", "_hub", "start", "duration_ms",
                 "depth", "parent")

    def __init__(self, hub: "Telemetry", name: str, attrs: Dict):
        self.name = name
        self.attrs = attrs
        self._hub = hub
        self.start = 0.0
        self.duration_ms: Optional[float] = None
        self.depth = 0
        self.parent: Optional[str] = None

    def annotate(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. result counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._hub._stack()
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self._hub.current_phase = self.name
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_ms = (time.perf_counter() - self.start) * 1000.0
        stack = self._hub._stack()
        if stack and stack[-1] is self:
            stack.pop()
        hub = self._hub
        hub.current_phase = stack[-1].name if stack else None
        hub.registry.histogram(f"span.{self.name}") \
            .observe(self.duration_ms)
        record = {
            "kind": "span",
            "name": self.name,
            "ts": time.time(),
            "dur_ms": round(self.duration_ms, 3),
            "depth": self.depth,
            "parent": self.parent,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record.update(self.attrs)
        hub.emit(record)


class _NoopSpan:
    """Shared do-nothing span handed out while telemetry is disabled."""

    __slots__ = ()

    def annotate(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


# ---------------------------------------------------------------------------
# The hub
# ---------------------------------------------------------------------------

class Telemetry:
    """Process-wide tracer + metrics switchboard."""

    def __init__(self):
        self.enabled = False
        self.registry = MetricsRegistry()
        self.sink = NullSink()
        self._local = threading.local()
        #: Run-scoped trace identity.  Minted once per pipeline run
        #: (``repro.parallel.engine``), threaded into pool workers via
        #: ``MachineDescriptor``, and stamped onto every record so
        #: stitched worker events are attributable to their run.
        self.trace_id: Optional[str] = None
        #: Static fields merged into every record — workers set
        #: ``{"worker": pid, "shard": index}`` so the parent can merge
        #: their side-channel stream back in shard-index order.
        self.context: Dict = {}
        #: Monotonic per-process record sequence number; the stitcher's
        #: stable sort key within one worker's stream.
        self._seq = 0
        #: Name of the innermost open span (main thread) — what the
        #: heartbeat and ``repro top`` report as the current phase.
        self.current_phase: Optional[str] = None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def emit(self, record: Dict) -> None:
        """Stamp run identity onto a record and hand it to the sink."""
        self._seq += 1
        record["seq"] = self._seq
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        if self.context:
            record.update(self.context)
        self.sink.emit(record)

    # -- lifecycle ------------------------------------------------------

    def enable(self, sink: Union[None, str, NullSink, MemorySink,
                                 NdjsonSink] = None) -> "Telemetry":
        """Turn collection on.

        ``sink`` may be an export sink, a path (NDJSON is written
        there), or ``None`` for metrics-only collection.
        """
        if isinstance(sink, str):
            sink = NdjsonSink(sink)
        if sink is not None:
            self.sink.close()
            self.sink = sink
        self.enabled = True
        return self

    def disable(self) -> None:
        """Turn collection off and flush/close the sink."""
        self.enabled = False
        self.sink.close()
        self.sink = NullSink()

    def reset(self) -> None:
        """Disable and wipe all metrics (test isolation)."""
        self.disable()
        self.registry.reset()
        self._local = threading.local()
        self.trace_id = None
        self.context = {}
        self._seq = 0
        self.current_phase = None
        for hook in _RESET_HOOKS:
            hook()

    # -- instrumentation points ----------------------------------------

    def span(self, name: str, **attrs) -> Union[Span, _NoopSpan]:
        if not self.enabled:
            return _NOOP_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **fields) -> None:
        if not self.enabled:
            return
        record = {"kind": "event", "name": name, "ts": time.time()}
        record.update(fields)
        self.emit(record)

    def count(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.registry.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.registry.gauge(name).set(value)


#: The process-wide hub every instrumentation point talks to.
_TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    return _TELEMETRY


def enable(sink=None) -> Telemetry:
    return _TELEMETRY.enable(sink)


def disable() -> None:
    _TELEMETRY.disable()


def is_enabled() -> bool:
    return _TELEMETRY.enabled


def reset() -> None:
    _TELEMETRY.reset()


def span(name: str, **attrs):
    return _TELEMETRY.span(name, **attrs)


def event(name: str, **fields) -> None:
    _TELEMETRY.event(name, **fields)


def count(name: str, amount: int = 1) -> None:
    _TELEMETRY.count(name, amount)


def observe(name: str, value: float) -> None:
    _TELEMETRY.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    _TELEMETRY.set_gauge(name, value)


def registry() -> MetricsRegistry:
    return _TELEMETRY.registry


def trace_id() -> Optional[str]:
    """The current run's trace ID (``None`` outside a traced run)."""
    return _TELEMETRY.trace_id


def current_phase() -> Optional[str]:
    """Name of the innermost open span on the main thread."""
    return _TELEMETRY.current_phase
