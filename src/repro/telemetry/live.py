"""Live progress: heartbeat snapshots and the ``repro top`` view.

Two halves, both built on the NDJSON trace stream:

* :class:`Heartbeat` — a daemon thread that emits a ``heartbeat``
  event every ``interval`` seconds while a run is in flight: current
  phase, funnel tallies, wall-clock block rate, and the ``cache.*``
  counter snapshot.  Heartbeats are *observability* records — they
  carry wall-clock rates and therefore are expected to differ between
  runs; everything determinism-tested lives in ``window`` events
  instead.
* :func:`render_top` — a pure function from a list of trace records to
  the ``repro top`` screen: phase, per-run windowed throughput, cache
  hit rates, funnel tallies and an ETA.  ``repro top <trace.ndjson>``
  tails a live trace (written by an ``NdjsonSink(autoflush=True)``)
  and re-renders as records arrive; because rendering is pure it is
  also trivially testable against synthetic traces.

Torn tails: a trace being written right now (or left by a crashed
worker) may end in a partial line.  :func:`read_records` parses
leniently — complete lines before the first undecodable one win,
the rest is ignored until more bytes arrive.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.telemetry import core

__all__ = ["Heartbeat", "TraceFollower", "render_top", "read_records",
           "DEFAULT_HEARTBEAT_SECS"]

#: Default ``--heartbeat`` period.
DEFAULT_HEARTBEAT_SECS = 5.0

#: Counter prefixes a heartbeat snapshots for the live view.
_SNAPSHOT_PREFIXES = ("profiler.blocks", "cache.")


class Heartbeat:
    """Periodic ``heartbeat`` events from a daemon thread.

    Usage (the CLI's ``--heartbeat SECS``)::

        with Heartbeat(interval=5.0):
            run_pipeline()

    Each beat carries: ``phase`` (innermost open span), ``uptime_s``,
    ``blocks_total`` / ``blocks_accepted``, ``blocks_per_s`` (wall
    clock, since the previous beat) and the ``cache.*`` counters.
    Emission goes through the hub, so beats are disabled-safe and
    stamped with the run's trace ID like every other record.
    """

    def __init__(self, interval: float = DEFAULT_HEARTBEAT_SECS):
        if interval <= 0:
            raise ValueError("heartbeat interval must be > 0")
        self.interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started = 0.0
        self._last_beat = 0.0
        self._last_total = 0
        self.beats = 0

    # ------------------------------------------------------------------

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            return self
        self._started = self._last_beat = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the timer thread and emit one final snapshot.

        The final beat (``final=True``) runs on the *caller's* thread
        after the timer thread has joined, so it fires on every exit
        path that reaches ``stop()`` — clean return, exception unwind
        (``finally`` / context-manager ``__exit__``), and SIGTERM
        handlers that shut the run down — and the trace tail always
        reflects terminal state, not the last timer tick.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=self.interval + 2.0)
        self._thread = None
        self.beat(final=True)

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()

    def beat(self, final: bool = False) -> None:
        """Emit one heartbeat now (also called from tests)."""
        hub = core.get_telemetry()
        if not hub.enabled:
            return
        now = time.perf_counter()
        counters = hub.registry.snapshot()["counters"]
        total = counters.get("profiler.blocks_total", 0)
        elapsed = max(now - self._last_beat, 1e-9)
        rate = (total - self._last_total) / elapsed
        self._last_beat = now
        self._last_total = total
        self.beats += 1
        hub.event(
            "heartbeat",
            phase=hub.current_phase,
            final=final,
            uptime_s=round(now - self._started, 3),
            blocks_total=total,
            blocks_accepted=counters.get("profiler.blocks_accepted", 0),
            blocks_per_s=round(rate, 3),
            counters={k: v for k, v in sorted(counters.items())
                      if k.startswith(_SNAPSHOT_PREFIXES)},
        )


# ---------------------------------------------------------------------------
# Reading a (possibly in-flight) trace
# ---------------------------------------------------------------------------

def read_records(path: str, offset: int = 0
                 ) -> Tuple[List[Dict], int]:
    """Parse NDJSON records appended since ``offset``.

    Returns ``(records, new_offset)``; ``new_offset`` points just past
    the last newline-terminated line, so a partial line being written
    right now is retried on the next call.  Complete-but-undecodable
    lines (a crashed writer's torn record that later got overwritten)
    are skipped, not fatal.  A vanished file reads as empty.
    """
    records: List[Dict] = []
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except OSError:
        return records, offset
    complete = data.split(b"\n")[:-1]  # drop the unterminated tail
    consumed = 0
    for raw in complete:
        consumed += len(raw) + 1
        line = raw.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line.decode()))
        except (ValueError, UnicodeDecodeError):
            continue
    return records, offset + consumed


class TraceFollower:
    """Tail a trace file across rotation and truncation.

    ``read_records`` alone tails a fixed offset into a fixed file — if
    the writer rotates the trace (new inode at the same path) or
    truncates it in place, a plain offset points into dead bytes and
    the follower goes silent forever.  ``repro top --follow`` (and the
    serve daemon's own trace rotation) need better: :meth:`poll`
    detects rotation and truncation by ``stat`` — a changed
    inode/device, a size smaller than the consumed offset, a file
    that vanished between polls (the filesystem may hand a recreated
    file the *same* inode number, so the disappearance itself must be
    remembered), or a same-size rewrite betrayed by ``st_mtime_ns`` —
    and re-opens from byte 0, reporting the restart so the renderer
    can drop stale state.
    """

    def __init__(self, path: str):
        self.path = path
        self.offset = 0
        self._identity: Optional[Tuple[int, int]] = None  # (dev, ino)
        self._mtime_ns: Optional[int] = None
        self._vanished = False
        #: How many times the file was rotated/truncated under us.
        self.restarts = 0

    def poll(self) -> Tuple[List[Dict], bool]:
        """New records since the last poll, plus a restarted flag.

        ``restarted`` is ``True`` when the file was rotated, replaced,
        or truncated since the previous poll: the returned records
        then start from the beginning of the *new* file and any
        accumulated view of the old one should be discarded.  A
        missing file is not itself a restart — the offset is held,
        the vanish is remembered, and whatever next appears at the
        path is treated as a fresh file.
        """
        try:
            st = os.stat(self.path)
        except OSError:
            if self._identity is not None:
                self._vanished = True
            return [], False
        dev_ino = (st.st_dev, st.st_ino)
        restarted = False
        if self._identity is not None and (
                self._vanished
                or dev_ino != self._identity
                or st.st_size < self.offset
                # A rewrite landing on exactly the consumed size:
                # appends always grow the file, so same-size with a
                # changed mtime means the bytes under us are new.
                or (st.st_size == self.offset
                    and self._mtime_ns is not None
                    and st.st_mtime_ns != self._mtime_ns)):
            restarted = True
            self.restarts += 1
            self.offset = 0
        self._vanished = False
        self._identity = dev_ino
        self._mtime_ns = st.st_mtime_ns
        records, self.offset = read_records(self.path, self.offset)
        return records, restarted


# ---------------------------------------------------------------------------
# The `repro top` view
# ---------------------------------------------------------------------------

def _hit_rate(counters: Dict[str, float], name: str) -> Optional[float]:
    hits = counters.get(f"cache.{name}.hits", 0)
    misses = counters.get(f"cache.{name}.misses", 0)
    if not hits and not misses:
        return None
    return hits / (hits + misses)


def _format_eta(seconds: float) -> str:
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_top(records: List[Dict]) -> str:
    """Render the ``repro top`` screen from trace records.

    Pure: consumes already-parsed records, returns the full screen as
    one string.  Tolerant of any record mix — a trace with no
    heartbeats still renders phase and windows, an empty trace renders
    a placeholder.
    """
    if not records:
        return "repro top: waiting for trace records..."

    trace = next((r["trace"] for r in records if "trace" in r), None)
    heartbeats = [r for r in records
                  if r.get("kind") == "event"
                  and r.get("name") == "heartbeat"]
    runs: Dict[str, Dict] = {}
    windows: Dict[str, List[Dict]] = {}
    ended = set()
    for r in records:
        if r.get("kind") != "event":
            continue
        name, label = r.get("name"), r.get("label")
        if name == "run.start" and label is not None:
            runs[label] = r
        elif name == "run.end" and label is not None:
            ended.add(label)
        elif name == "window" and label is not None:
            windows.setdefault(label, []).append(r)

    # Current phase: prefer the latest heartbeat; otherwise the most
    # recent span close tells us (at least) what just finished.
    phase = None
    if heartbeats:
        phase = heartbeats[-1].get("phase")
    if phase is None:
        spans = [r for r in records if r.get("kind") == "span"]
        if spans:
            phase = spans[-1].get("name")

    lines = ["repro top" + (f" — trace {trace}" if trace else "")]
    lines.append(f"phase: {phase or '-'}")

    if heartbeats:
        hb = heartbeats[-1]
        lines.append(
            f"blocks: {hb.get('blocks_total', 0)} seen, "
            f"{hb.get('blocks_accepted', 0)} accepted, "
            f"{hb.get('blocks_per_s', 0.0)} blk/s "
            f"(uptime {hb.get('uptime_s', 0.0)}s)")

    # Per-run windowed progress + ETA.  A streamed run over a lazily
    # generated corpus announces ``blocks: null`` — the total is
    # unknown until the generator ends, so an ETA would be fiction:
    # report blocks-so-far and the observed rate instead.
    for label, start in sorted(runs.items()):
        series = windows.get(label, [])
        total_blocks = start.get("blocks") or 0
        done = sum(w.get("blocks", 0) for w in series)
        state = "done" if label in ended else "running"
        if total_blocks:
            line = (f"run {label}: {done}/{total_blocks} blocks "
                    f"[{state}], {len(series)} windows")
        else:
            line = (f"run {label}: {done} blocks so far "
                    f"[{'done' if label in ended else 'streaming'}], "
                    f"{len(series)} windows")
        rates = [w["sim_rate"] for w in series
                 if w.get("sim_rate") is not None]
        if rates:
            line += f", sim_rate {rates[-1]:.2f} blk/kcyc"
        if label not in ended and done > 0 and series \
                and "ts" in series[-1] and "ts" in start:
            elapsed = series[-1]["ts"] - start["ts"]
            if elapsed > 0:
                if 0 < done < total_blocks and len(series) >= 2:
                    eta = (total_blocks - done) * elapsed / done
                    line += f", eta {_format_eta(eta)}"
                elif not total_blocks:
                    line += f", {done / elapsed:.1f} blk/s"
        lines.append(line)
    # Orphan window series (no run.start in this trace slice).
    for label in sorted(set(windows) - set(runs)):
        series = windows[label]
        lines.append(f"run {label}: {len(series)} windows")

    counters = heartbeats[-1].get("counters", {}) if heartbeats else {}
    if not counters:
        # Fall back to summing worker shard summaries.
        for r in records:
            if r.get("kind") == "event" \
                    and r.get("name") == "worker.shard_summary":
                for key, value in (r.get("counters") or {}).items():
                    counters[key] = counters.get(key, 0) + value
    cache_bits = []
    for name in ("shard", "blockplan", "decode", "dedup", "page"):
        rate = _hit_rate(counters, name)
        if rate is not None:
            cache_bits.append(f"{name} {rate:.0%}")
    if cache_bits:
        lines.append("cache hit rates: " + ", ".join(cache_bits))

    dropped = {k.split(".", 2)[2]: v for k, v in counters.items()
               if k.startswith("profiler.failure.") and v}
    if dropped:
        lines.append("dropped: " + ", ".join(
            f"{reason}={int(n)}" for reason, n in
            sorted(dropped.items(), key=lambda kv: (-kv[1], kv[0]))))

    lines.append(f"records: {len(records)}")
    return "\n".join(lines)
