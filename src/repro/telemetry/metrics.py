"""Process-wide metrics: counters, gauges, histograms.

The registry is the numeric half of the telemetry layer (the tracer in
:mod:`repro.telemetry.core` is the event half).  Everything is plain
Python and allocation-light so that instrumented hot paths — the
profiler measures ~20 ms a block, the scheduler prices thousands of
micro-ops per run — pay only a dict lookup and an integer add.

Naming convention (see docs/observability.md for the full catalogue):
dotted, lowercase, ``<layer>.<what>`` — e.g. ``profiler.blocks_total``,
``machine.simulated_cycles``, ``cache.hits``.  Span durations land in
histograms named ``span.<span name>`` (milliseconds).
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count (blocks profiled, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (corpus size, current unroll factor)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A distribution with exact count/sum/min/max and sampled quantiles.

    Values beyond ``max_samples`` are reservoir-sampled (deterministic
    per-histogram RNG) so percentiles stay representative at corpus
    scale without unbounded memory.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_max_samples", "_rng")

    def __init__(self, name: str, max_samples: int = 8192):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._rng = random.Random(0x5EED ^ hash(name) & 0xFFFF)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._max_samples:
                self._samples[slot] = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile over the retained samples, q in [0, 100]."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(99)

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """All metrics for one process (or one isolated test)."""

    def __init__(self):
        self._lock = threading.Lock()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- accessors (create on first use) -------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            with self._lock:
                metric = self.counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self.gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self.histograms.setdefault(name, Histogram(name))
        return metric

    # -- bulk operations ------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-JSON view of every metric (stable key order)."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self.gauges.items())},
            "histograms": {name: h.summary()
                           for name, h in sorted(self.histograms.items())},
        }
