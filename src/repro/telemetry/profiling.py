"""Opt-in self-profiling: cProfile around each pipeline phase.

``repro corpus --profile`` / ``repro validate --profile`` wrap every
pipeline phase (corpus build, classification, measurement, validation)
in a :func:`phase` context.  Each phase's profile is reduced to its
top-25 hotspots by *cumulative* time and lands in the run report's
``profile`` section — enough to answer "where did the wall clock go"
without shipping multi-megabyte pstats dumps around.

Like the rest of the telemetry layer this is strictly opt-in: when
:func:`enable` has not been called, :func:`phase` is a bare ``yield``
and the pipeline pays nothing.  cProfile cannot nest, so an inner
:func:`phase` inside an already-profiled region degrades to a no-op
rather than raising.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from contextlib import contextmanager
from typing import Dict, List

from repro.telemetry import core

__all__ = ["enable", "disable", "is_enabled", "phase", "profiles",
           "TOP_N"]

#: Hotspot rows kept per phase (cumulative-time order).
TOP_N = 25

_ENABLED = False

#: phase name -> {"total_ms": float, "top": [hotspot rows]}.
_PROFILES: Dict[str, Dict] = {}


def enable() -> None:
    """Arm per-phase profiling (the ``--profile`` CLI flag)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


def _hotspots(prof: cProfile.Profile) -> List[Dict]:
    """Top-N rows by cumulative time, tie-broken by name for
    stable ordering."""
    stats = pstats.Stats(prof)
    rows = []
    for func, (cc, nc, tottime, cumtime, _callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        rows.append({
            "function": f"{filename}:{lineno}({name})",
            "calls": nc,
            "tottime_ms": round(tottime * 1000.0, 3),
            "cumtime_ms": round(cumtime * 1000.0, 3),
        })
    rows.sort(key=lambda r: (-r["cumtime_ms"], r["function"]))
    return rows[:TOP_N]


@contextmanager
def phase(name: str):
    """Profile one pipeline phase (no-op unless enabled)."""
    global _ACTIVE
    if not _ENABLED or _ACTIVE:
        yield
        return
    prof = cProfile.Profile()
    started = time.perf_counter()
    _ACTIVE = True
    prof.enable()
    try:
        yield
    finally:
        prof.disable()
        _ACTIVE = False
        _PROFILES[name] = {
            "total_ms": round(
                (time.perf_counter() - started) * 1000.0, 3),
            "top": _hotspots(prof),
        }


_ACTIVE = False


def profiles() -> Dict[str, Dict]:
    """Collected phase profiles (empty unless ``--profile`` ran)."""
    return _PROFILES


def _reset() -> None:
    global _ENABLED, _ACTIVE
    _ENABLED = False
    _ACTIVE = False
    _PROFILES.clear()


core.register_reset_hook(_reset)
