"""Run reports: one JSON + one human-readable summary per pipeline run.

The report is the repo's analogue of the paper's Table I filtering
funnel: of every block the harness saw, how many were accepted and how
many were dropped, broken down by :class:`FailureReason` — plus
per-stage wall times (from spans), cache behaviour, and the raw metric
snapshot so nothing the registry collected is lost.

Reports land under ``reports/`` (override with ``REPRO_REPORT_DIR``)
as ``<name>.json`` and ``<name>.txt``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry import cachestats, profiling, resources, window
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["build_run_report", "render_summary", "write_run_report",
           "default_report_dir", "funnel_from_counters"]

#: Counter prefix the profiler uses for per-reason drop counts.
FAILURE_PREFIX = "profiler.failure."


def default_report_dir() -> str:
    return os.environ.get("REPRO_REPORT_DIR", "reports")


#: Informational funnel tallies: surfaced alongside the accept/drop
#: rows but never counted into them, so ``accepted + dropped == total``
#: holds regardless of which optimisations were active.
INFO_COUNTERS = {
    "fastpath_extrapolated": "profiler.fastpath_extrapolated",
    "blockplan_compiled": "profiler.blockplan_compiled",
    "chaos_block_poison": "profiler.chaos_block_poison",
    "step_budget_exceeded": "profiler.step_budget_exceeded",
}

#: Counter prefix the chaos layer uses for injected-fault tallies.
FAULT_PREFIX = "resilience.fault_injected."


def funnel_from_counters(counters: Dict[str, int]) -> Dict:
    """Derive the accept/drop funnel from the profiler's counters.

    The funnel's accounting buckets come straight from accept/failure
    counters; purely informational tallies (``fastpath_extrapolated``,
    ``blockplan_compiled``) ride along under an ``info`` key and never
    change the accepted/dropped totals.
    """
    dropped = {
        name[len(FAILURE_PREFIX):]: value
        for name, value in counters.items()
        if name.startswith(FAILURE_PREFIX) and value
    }
    accepted = counters.get("profiler.blocks_accepted", 0)
    total = counters.get("profiler.blocks_total",
                         accepted + sum(dropped.values()))
    funnel = {"total": total, "accepted": accepted, "dropped": dropped}
    info = {name: counters[counter]
            for name, counter in INFO_COUNTERS.items()
            if counters.get(counter)}
    if info:
        funnel["info"] = info
    return funnel


def _stage_rows(histograms: Dict[str, Dict]) -> List[Dict]:
    """Span histograms -> per-stage timing rows, slowest first."""
    rows = []
    for name, summary in histograms.items():
        if not name.startswith("span."):
            continue
        rows.append({
            "stage": name[len("span."):],
            "count": summary["count"],
            "total_ms": round(summary["total"], 3),
            "mean_ms": round(summary["mean"], 3)
            if summary["mean"] is not None else None,
            "p95_ms": round(summary["p95"], 3)
            if summary["p95"] is not None else None,
        })
    rows.sort(key=lambda r: -(r["total_ms"] or 0.0))
    return rows


def _resilience_section(counters: Dict[str, int],
                        histograms: Dict[str, Dict],
                        funnel: Dict) -> Dict:
    """The run's fault-injection / degradation accounting.

    ``faults_injected`` merges the chaos layer's own counters (points
    that fire in the parent, or whose deterministic decision the
    parent mirrors for crashed workers) with the funnel's
    ``chaos_block_poison`` info tally — the one point whose count must
    ride the cached funnel to survive the worker boundary.
    """
    backoff = histograms.get("resilience.backoff_ms")
    faults = {
        name[len(FAULT_PREFIX):]: value
        for name, value in counters.items()
        if name.startswith(FAULT_PREFIX) and value
    }
    poison = (funnel.get("info") or {}).get("chaos_block_poison", 0)
    if poison:
        faults["block_poison"] = int(poison)
    return {
        "retries": counters.get("resilience.retries", 0),
        "backoff_ms": round(backoff["total"], 3) if backoff else 0.0,
        "quarantined_blocks":
            counters.get("resilience.quarantined.blocks", 0),
        "quarantined_cache_files":
            counters.get("resilience.quarantined.cache_files", 0),
        "cache_write_failures":
            counters.get("resilience.cache_write_failures", 0),
        "stale_temps_swept":
            counters.get("resilience.stale_temps_swept", 0),
        "resumed_shards":
            counters.get("resilience.resumed_shards", 0),
        "faults_injected": faults,
    }


#: Caches whose provider counts *outside* the telemetry registry
#: (plain attributes / ``cache_info``): stitched worker counters are
#: folded on top.  Registry-backed providers already see stitched
#: counts and must not be merged twice.
_MERGE_COUNTER_CACHES = frozenset({"decode"})


def _caches_section(counters: Dict[str, int]) -> Dict[str, Dict]:
    """The unified cache section: one entry per registered cache.

    Caches that counted into the registry (``cache.<name>.*``) but
    never registered a provider in this process — e.g. counters
    stitched in from pool workers — still get a row, built from the
    counters alone.
    """
    stats = {s.name: s for s in cachestats.snapshot()}
    counted = {name.split(".", 2)[1] for name in counters
               if name.startswith("cache.") and name.count(".") >= 2}
    for name in counted - set(stats) - {"hits", "misses", "writes"}:
        stats[name] = cachestats.registry_stats(name)
    return {
        name: (cachestats.merge_counter_stats(stat, counters)
               if name in _MERGE_COUNTER_CACHES else stat).as_dict()
        for name, stat in sorted(stats.items())
    }


def build_run_report(registry: MetricsRegistry, name: str,
                     meta: Optional[Dict] = None,
                     funnel: Optional[Dict] = None) -> Dict:
    """Assemble the report dict from a registry snapshot.

    ``funnel`` overrides the counter-derived funnel — the pipeline
    passes the breakdown stored alongside cached measurements so a
    cache-hit run still reports full coverage.
    """
    snap = registry.snapshot()
    counters = snap["counters"]
    compile_ms = snap["histograms"].get("cache.blockplan.compile_ms")
    funnel_doc = funnel if funnel is not None \
        else funnel_from_counters(counters)
    report = {
        "report": name,
        "generated_by": "repro.telemetry",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "meta": dict(meta or {}),
        "stages": _stage_rows(snap["histograms"]),
        "funnel": funnel_doc,
        "resilience": _resilience_section(counters, snap["histograms"],
                                          funnel_doc),
        "cache": {
            "hits": counters.get("cache.hits", 0),
            "misses": counters.get("cache.misses", 0),
            "writes": counters.get("cache.writes", 0),
        },
        "executor": {
            "plan_cache_hits":
                counters.get("cache.blockplan.hits", 0),
            "plan_cache_misses":
                counters.get("cache.blockplan.misses", 0),
            "plan_compile_ms":
                round(compile_ms["total"], 3) if compile_ms else 0.0,
        },
        "caches": _caches_section(counters),
        "resources": resources.resources_section(snap),
        "windows": window.runs(),
        "metrics": snap,
    }
    phase_profiles = profiling.profiles()
    if phase_profiles:
        report["profile"] = phase_profiles
    return report


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------
# (Local formatter, not eval.reporting's: telemetry must stay
# importable from every layer without touching eval.)

def _table(headers: Sequence[str],
           rows: Sequence[Sequence[object]]) -> List[str]:
    cells = [[("-" if value is None else str(value)) for value in row]
             for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells
              else len(h) for i, h in enumerate(headers)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in cells)
    return lines


def render_summary(report: Dict) -> str:
    """The ``.txt`` half of the report."""
    lines: List[str] = [f"run report: {report['report']}",
                        f"generated:  {report['generated_at']}"]
    meta = report.get("meta") or {}
    if meta:
        lines.append("meta:       "
                     + "  ".join(f"{k}={v}" for k, v in meta.items()))

    funnel = report.get("funnel") or {}
    total = funnel.get("total", 0)
    accepted = funnel.get("accepted", 0)
    dropped: Dict[str, int] = funnel.get("dropped", {})
    lines += ["", f"coverage funnel ({total} blocks seen)"]
    rows: List[Tuple[str, int, str]] = [
        ("accepted", accepted,
         f"{accepted / total:.1%}" if total else "-")]
    for reason, n in sorted(dropped.items(), key=lambda kv: -kv[1]):
        rows.append((f"dropped: {reason}", n,
                     f"{n / total:.1%}" if total else "-"))
    info: Dict[str, int] = funnel.get("info") or {}
    for name, n in sorted(info.items()):
        rows.append((f"info: {name}", n,
                     f"{n / total:.1%}" if total else "-"))
    lines += _table(["outcome", "blocks", "share"], rows)
    if info:
        lines.append("(info rows are informational; accepted + dropped"
                     " still sum to total)")

    stages = report.get("stages") or []
    if stages:
        lines += ["", "stage timings"]
        lines += _table(
            ["stage", "calls", "total ms", "mean ms", "p95 ms"],
            [(s["stage"], s["count"], s["total_ms"], s["mean_ms"],
              s["p95_ms"]) for s in stages])

    cache = report.get("cache") or {}
    lines += ["", "measurement cache: "
              f"{cache.get('hits', 0)} hits, "
              f"{cache.get('misses', 0)} misses, "
              f"{cache.get('writes', 0)} writes"]

    executor = report.get("executor") or {}
    if executor.get("plan_cache_hits") or \
            executor.get("plan_cache_misses"):
        lines += ["block plans: "
                  f"{executor.get('plan_cache_misses', 0)} compiled "
                  f"({executor.get('plan_compile_ms', 0.0)} ms), "
                  f"{executor.get('plan_cache_hits', 0)} cache hits"]

    caches = report.get("caches") or {}
    live = {name: c for name, c in caches.items()
            if c.get("hits") or c.get("misses") or c.get("evictions")}
    if live:
        lines += ["", "caches"]
        lines += _table(
            ["cache", "hits", "misses", "evictions", "size", "hit rate"],
            [(name, c["hits"], c["misses"], c["evictions"], c["size"],
              f"{c['hit_rate']:.1%}"
              if c.get("hit_rate") is not None else "-")
             for name, c in sorted(live.items())])

    res = report.get("resources") or {}
    if res.get("peak_rss_kb") or res.get("stream"):
        bits = []
        if res.get("peak_rss_kb"):
            bits.append(f"peak rss {res['peak_rss_kb'] / 1024:.1f} MiB")
        stream = res.get("stream") or {}
        if stream:
            bits.append(f"streamed {stream.get('folded', 0)} shards "
                        f"(max {stream.get('max_queue_depth', 0)} "
                        f"in flight)")
        lines += ["", "resources: " + ", ".join(bits)]

    windows = report.get("windows") or {}
    window_lines = []
    for label, series in sorted(windows.items()):
        if not series:
            continue
        p95s = [w["p95"] for w in series if w.get("p95") is not None]
        rates = [w["sim_rate"] for w in series
                 if w.get("sim_rate") is not None]
        bits = [f"{len(series)} windows"]
        if p95s:
            bits.append(f"p95 {min(p95s):.2f}..{max(p95s):.2f} cyc")
        if rates:
            bits.append("sim_rate "
                        f"{sum(rates) / len(rates):.2f} blk/kcyc")
        window_lines.append((label, ", ".join(bits)))
    if window_lines:
        lines += ["", "windowed series"]
        lines += _table(["run", "summary"], window_lines)

    for name, data in sorted((report.get("profile") or {}).items()):
        lines += ["", f"profile: {name} ({data['total_ms']} ms, "
                  f"top {len(data['top'])} by cumulative time)"]
        lines += _table(
            ["function", "calls", "cum ms"],
            [(r["function"], r["calls"], r["cumtime_ms"])
             for r in data["top"][:5]])

    resilience = report.get("resilience") or {}
    if any(resilience.get(k) for k in
           ("retries", "quarantined_blocks", "quarantined_cache_files",
            "cache_write_failures", "stale_temps_swept",
            "resumed_shards", "faults_injected")):
        lines += ["", "resilience"]
        rows = [(k, resilience.get(k, 0)) for k in
                ("retries", "backoff_ms", "quarantined_blocks",
                 "quarantined_cache_files", "cache_write_failures",
                 "stale_temps_swept", "resumed_shards")
                if resilience.get(k)]
        rows += [(f"fault injected: {point}", n) for point, n in
                 sorted((resilience.get("faults_injected")
                         or {}).items())]
        lines += _table(["event", "count"], rows)

    counters = report.get("metrics", {}).get("counters", {})
    interesting = {k: v for k, v in counters.items()
                   if not k.startswith(FAILURE_PREFIX)}
    if interesting:
        lines += ["", "counters"]
        lines += _table(["counter", "value"],
                        sorted(interesting.items()))
    return "\n".join(lines)


def write_run_report(report: Dict,
                     directory: Optional[str] = None) -> Tuple[str, str]:
    """Persist ``<name>.json`` + ``<name>.txt``; returns both paths."""
    directory = directory or default_report_dir()
    os.makedirs(directory, exist_ok=True)
    base = os.path.join(directory, report["report"])
    json_path, txt_path = base + ".json", base + ".txt"
    tmp = json_path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
    os.replace(tmp, json_path)
    with open(txt_path, "w") as fh:
        fh.write(render_summary(report) + "\n")
    return json_path, txt_path
