"""Process resource telemetry: the peak-RSS gauge and stream depth.

The streamed pipeline's whole point is that peak memory stays flat as
the corpus grows (``benchmarks/bench_streaming.py`` enforces it); this
module makes that claim observable in every run report instead of only
in the bench.  ``sample_peak_rss`` records the process high-water RSS
into the ``resources.peak_rss_kb`` gauge, and the report builder adds
a ``resources`` section combining it with the streamed engine's
``stream.*`` counters (shards submitted/folded, in-flight queue depth
distribution and its high-water mark).

``ru_maxrss`` is a whole-process high-water mark — it never goes down
— so comparing configurations (e.g. streamed scale S vs 10 S) needs
one process per configuration; the bench does exactly that.
"""

from __future__ import annotations

import sys
from typing import Dict, Optional

from repro.telemetry import core

__all__ = ["peak_rss_kb", "sample_peak_rss", "resources_section"]


def peak_rss_kb() -> Optional[int]:
    """The process's peak resident set size in KiB, or ``None``.

    ``getrusage`` reports KiB on Linux and bytes on macOS; platforms
    without the ``resource`` module (Windows) read as ``None`` and the
    report section simply omits the gauge.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def sample_peak_rss() -> Optional[int]:
    """Record the current high-water RSS into the telemetry gauge."""
    peak = peak_rss_kb()
    if peak is not None:
        core.set_gauge("resources.peak_rss_kb", peak)
    return peak


def resources_section(snapshot: Dict) -> Dict:
    """The run report's ``resources`` section from a registry snapshot.

    Always carries ``peak_rss_kb`` (sampled live at report-build time,
    falling back to the gauge a finished run recorded); the ``stream``
    sub-section appears only when the streamed engine ran.
    """
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    peak = peak_rss_kb()
    if peak is None:
        gauge = gauges.get("resources.peak_rss_kb")
        peak = int(gauge) if gauge else None
    section: Dict = {"peak_rss_kb": peak}
    submitted = counters.get("stream.submitted", 0)
    folded = counters.get("stream.folded", 0)
    if submitted or folded:
        depth = histograms.get("stream.queue_depth") or {}
        section["stream"] = {
            "submitted": submitted,
            "folded": folded,
            "max_queue_depth":
                int(gauges.get("stream.max_queue_depth", 0)),
            "queue_depth_mean": depth.get("mean"),
            "queue_depth_p95": depth.get("p95"),
        }
    return section
