"""Sliding-window aggregation: per-window percentiles, jitter, rate.

The live layer's numeric core.  A :class:`WindowAggregator` cuts an
observed series into fixed windows keyed to **block index** — never
wall clock — so the windowed output is a pure function of the corpus
and the simulator: byte-stable across serial, pooled (`--jobs N`) and
fast-path-off runs, and therefore differential-testable exactly like
the profiles themselves (``tests/telemetry/test_window_determinism``).

Each window produces ``p50``/``p95``/``p99``, ``mean``, ``jitter``
(population standard deviation) and ``sim_rate`` — accepted blocks per
thousand *simulated* cycles, the deterministic analogue of blocks/s
(NeuroScalar reports simulation throughput as a first-class metric;
wall-clock blocks/s lives in heartbeat events instead, where
non-determinism is expected).

Determinism under out-of-order arrival
--------------------------------------
Pooled runs complete shards in nondeterministic order, and one window
can span several shards.  Every per-window statistic is therefore
computed from an **arrival-order-independent** state:

* retained samples are chosen by a keyed hash of ``(label, window,
  index)`` — the *set* kept is a function of the indices alone, never
  of arrival order (a deterministic bottom-k reservoir);
* sums are computed at finalisation over samples sorted by block
  index, so float accumulation order is fixed;
* a window finalises exactly when all of its block indices have been
  observed — worker retries or shard re-ordering cannot move a window
  boundary.

Memory stays fixed: at most ``reservoir`` samples per window are held
(with the default window size every value is retained, making the
percentiles exact), and a finalised window's samples are dropped.
"""

from __future__ import annotations

import heapq
import math
import os
import zlib
from typing import Dict, List, Optional

from repro.telemetry import core

__all__ = ["WindowAggregator", "default_window_size", "ledger",
           "deposit_run", "runs", "DEFAULT_WINDOW_SIZE",
           "DEFAULT_RESERVOIR"]

#: Blocks per window (``REPRO_WINDOW`` overrides).
DEFAULT_WINDOW_SIZE = 64

#: Maximum samples retained per window.  >= the default window size,
#: so windows are exact unless the user asks for very wide ones.
DEFAULT_RESERVOIR = 1024


def default_window_size() -> int:
    """``REPRO_WINDOW`` if set, else 64 blocks per window."""
    env = os.environ.get("REPRO_WINDOW", "").strip()
    if env:
        return max(1, int(env))
    return DEFAULT_WINDOW_SIZE


def _sample_key(label: str, window: int, index: int) -> int:
    """Deterministic per-sample priority for the bottom-k reservoir."""
    return zlib.crc32(f"{label}|{window}|{index}".encode())


class _Window:
    """One window's in-flight state (arrival-order independent)."""

    __slots__ = ("seen", "accepted", "heap")

    def __init__(self):
        self.seen = 0
        self.accepted = 0
        #: Max-heap (negated keys) of (−key, index, value): the kept
        #: set is the bottom-k by keyed hash, identical whatever order
        #: samples arrived in.
        self.heap: List = []


class WindowAggregator:
    """Aggregates one observed series into deterministic windows.

    ``total`` (the corpus size) is known up front, so every window —
    including the final partial one — knows exactly how many block
    indices it must see before it can finalise.  ``total=None`` means
    the series length is unknown until it ends (a streamed run over a
    lazily generated corpus): every window then expects a full
    ``window_size`` indices and the final partial window finalises at
    :meth:`finish` — given the same observations the summaries are
    byte-identical to a known-total run's.

    ``observe(index, value)`` accepts ``value=None`` for blocks that
    produced no measurement (dropped blocks): they advance the window
    toward completion but contribute no sample.
    """

    def __init__(self, label: str, total: Optional[int],
                 window_size: Optional[int] = None,
                 reservoir: int = DEFAULT_RESERVOIR,
                 on_window=None):
        if total is not None and total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.label = label
        self.total = total
        self.window_size = window_size or default_window_size()
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        self.reservoir = max(1, reservoir)
        self._on_window = on_window
        self._partial: Dict[int, _Window] = {}
        self._seen: Dict[int, set] = {}
        self.summaries: Dict[int, Dict] = {}

    # ------------------------------------------------------------------

    def _expected(self, window: int) -> int:
        if self.total is None:
            return self.window_size
        start = window * self.window_size
        return min(self.window_size, self.total - start)

    def observe(self, index: int, value: Optional[float]) -> None:
        """Record block ``index``'s measurement (or its absence)."""
        if index < 0 or (self.total is not None
                         and index >= self.total):
            raise IndexError(f"block index {index} outside corpus "
                             f"of {self.total}")
        window = index // self.window_size
        if window in self.summaries:
            return  # duplicate feed of a finalised window
        state = self._partial.get(window)
        if state is None:
            state = self._partial[window] = _Window()
            self._seen[window] = set()
        if index in self._seen[window]:
            return  # duplicate observation (idempotent by index)
        self._seen[window].add(index)
        state.seen += 1
        if value is not None:
            state.accepted += 1
            key = _sample_key(self.label, window, index)
            entry = (-key, index, value)
            if len(state.heap) < self.reservoir:
                heapq.heappush(state.heap, entry)
            elif -state.heap[0][0] > key:
                heapq.heapreplace(state.heap, entry)
        if state.seen == self._expected(window):
            self._finalize(window, state)

    def _finalize(self, window: int, state: _Window) -> None:
        summary = self._summarize(window, state)
        self.summaries[window] = summary
        del self._partial[window]
        del self._seen[window]
        if self._on_window is not None:
            self._on_window(summary)

    def _summarize(self, window: int, state: _Window) -> Dict:
        # Sort retained samples by block index so every float
        # accumulation below has a fixed order.
        samples = sorted((index, value)
                         for _, index, value in state.heap)
        values = [value for _, value in samples]
        summary: Dict = {
            "window": window,
            "start": window * self.window_size,
            "blocks": state.seen,
            "accepted": state.accepted,
            "sampled": len(values),
        }
        if not values:
            summary.update({"p50": None, "p95": None, "p99": None,
                            "mean": None, "jitter": None,
                            "sim_rate": None})
            return summary
        ordered = sorted(values)
        n = len(ordered)

        def pct(q: float) -> float:
            rank = max(0, min(n - 1, int(round(q / 100.0 * (n - 1)))))
            return ordered[rank]

        total = 0.0
        for value in values:
            total += value
        mean = total / n
        var = 0.0
        for value in values:
            var += (value - mean) ** 2
        summary.update({
            "p50": pct(50), "p95": pct(95), "p99": pct(99),
            "mean": mean,
            "jitter": math.sqrt(var / n),
            # Accepted blocks per thousand simulated cycles: the
            # deterministic throughput metric (values are
            # cycles/iteration, so the rate is corpus-shape dependent
            # but machine-independent).
            "sim_rate": (state.accepted / total * 1000.0)
            if total > 0 else None,
        })
        return summary

    # ------------------------------------------------------------------

    def finish(self) -> List[Dict]:
        """Finalise any straggler windows and return the ordered series.

        With a known ``total`` and a correct feed every window already
        finalised on its completeness condition; stragglers mean some
        indices were never observed (a defensive path) — except in
        unknown-total mode, where the final partial window *must*
        finalise here because only the end of the stream reveals it
        was partial.  Either way they finalise with whatever arrived.
        """
        for window in sorted(self._partial):
            self._finalize(window, self._partial[window])
        return [self.summaries[w] for w in sorted(self.summaries)]


# ---------------------------------------------------------------------------
# The per-process window ledger (what run reports read)
# ---------------------------------------------------------------------------

#: Finalised window series per run label, in completion order.
_RUNS: Dict[str, List[Dict]] = {}


def deposit_run(label: str, series: List[Dict]) -> None:
    """Record a finished run's window series for the run report."""
    _RUNS[label] = list(series)


def runs() -> Dict[str, List[Dict]]:
    """All deposited window series, keyed by run label."""
    return _RUNS


def ledger() -> Dict[str, List[Dict]]:  # pragma: no cover - alias
    return _RUNS


def _reset() -> None:
    _RUNS.clear()


core.register_reset_hook(_reset)
