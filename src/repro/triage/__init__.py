"""Learned triage: skip full simulation for cache-confirmable blocks.

The NeuroScalar/CAPSim pattern (PAPERS.md): a cheap learned throughput
surrogate fronts the slow reference simulator.  Blocks whose surrogate
prediction agrees with their journaled cached measurement within a
configurable tolerance take a *cache-revalidation* path — the exact
cached bytes are replayed, no simulation runs; disagreeing, novel, or
quarantined blocks fall through to the full pipeline (lanes →
blockplan → simcore) unchanged.

Strictly opt-in (``--triage`` / ``$REPRO_TRIAGE``), with the same
differential guarantee discipline as the other performance layers:
triage-off runs are byte-identical to a build without this package,
and triage-on runs may differ only in the informational funnel and
telemetry — never in measured throughputs, measurements, or the
accepted/dropped funnel.
"""

from repro.triage import config
from repro.triage.stage import (absorb_results, prepare_triage,
                                publish_weights)

__all__ = ["config", "prepare_triage", "absorb_results",
           "publish_weights"]
