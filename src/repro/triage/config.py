"""The triage switchboard.

Mirrors :mod:`repro.simcore.config` with the polarity inverted:
triage is *opt-in* (``REPRO_TRIAGE=1`` enables it, exported by the
CLI's ``--triage`` before any worker forks, so pools inherit it),
where the fast path, block plans and lanes are opt-out.  Tests and
benches use :func:`forced` / :func:`forced_tolerance` exactly like
``simcore.config.forced``.

The tolerance is the revalidation acceptance band: a cached value is
replayed iff ``abs(predicted - cached) <= tolerance * max(abs(cached),
1.0)``.  It only steers *routing* — a wrong tolerance costs speed
(more blocks fall through to full simulation), never bytes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

ENV_VAR = "REPRO_TRIAGE"
TOL_VAR = "REPRO_TRIAGE_TOL"

#: Default revalidation tolerance (relative, floored at 1.0 cycles).
DEFAULT_TOLERANCE = 0.25

_ENABLING = ("1", "true", "yes", "on")

#: Programmatic overrides; ``None`` defers to the environment.
_override: Optional[bool] = None
_tol_override: Optional[float] = None


def enabled() -> bool:
    """Is the triage stage active?  (Opt-in, default off.)"""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() in _ENABLING


def set_enabled(value: Optional[bool]) -> None:
    """Force triage on/off; ``None`` defers to ``$REPRO_TRIAGE``."""
    global _override
    _override = None if value is None else bool(value)


@contextmanager
def forced(value: bool) -> Iterator[None]:
    """Temporarily force triage on or off (tests, benches)."""
    global _override
    saved = _override
    _override = bool(value)
    try:
        yield
    finally:
        _override = saved


def tolerance() -> float:
    """The active revalidation tolerance.

    ``$REPRO_TRIAGE_TOL`` if it parses as a positive float, else
    :data:`DEFAULT_TOLERANCE` — a malformed value degrades to the
    default rather than failing the run (tolerance steers routing
    only, never bytes).
    """
    if _tol_override is not None:
        return _tol_override
    env = os.environ.get(TOL_VAR, "").strip()
    if env:
        try:
            value = float(env)
        except ValueError:
            return DEFAULT_TOLERANCE
        if value > 0.0:
            return value
    return DEFAULT_TOLERANCE


def set_tolerance(value: Optional[float]) -> None:
    """Force the tolerance; ``None`` defers to ``$REPRO_TRIAGE_TOL``."""
    global _tol_override
    _tol_override = None if value is None else float(value)


@contextmanager
def forced_tolerance(value: float) -> Iterator[None]:
    """Temporarily force the revalidation tolerance."""
    global _tol_override
    saved = _tol_override
    _tol_override = float(value)
    try:
        yield
    finally:
        _tol_override = saved
