"""Pipeline integration: route, revalidate, journal, train.

``prepare_triage`` runs inside ``profile_many`` *before* lane
formation: for each first-occurrence block with a journaled cached
measurement, the surrogate predicts throughput, and when prediction
and cached value agree within tolerance the exact journaled bytes are
seeded into the profiler's dedup memo as a finished
:class:`~repro.profiler.result.ProfileResult` — the scalar loop (and
the lane pre-pass, which skips memoised texts) then never simulates
the block.  Everything else — novel blocks, disagreements, chaos
``block_poison`` targets, malformed rows — simply is not seeded and
falls through to the full pipeline unchanged.  Triage can only fall
back, never alter bytes: a revalidated result replays the journaled
measurement byte for byte, including its informational ``extra``
flags, plus the ``triage_revalidated`` marker.

``absorb_results`` journals freshly measured blocks after the scalar
loop, and ``publish_weights`` retrains the surrogate from the full
journal once per run (parent process only), so repeated runs get
sharper routing.  Both degrade on any failure — triage state is an
accelerator, never a correctness dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.profiler.result import Measurement, ProfileResult
from repro.resilience import chaos
from repro.simcore import config as simcore
from repro.telemetry import cachestats
from repro.telemetry import core as telemetry
from repro.triage import config
from repro.triage import store as storemod
from repro.triage import surrogate as surrogatemod
from repro.triage.store import TriageStore

#: Store directory -> loaded store (one journal read per process).
_STORES: Dict[str, TriageStore] = {}

#: Most recently used store, for the cache-stats size snapshot.
_LAST_STORE: Optional[TriageStore] = None


def _active() -> bool:
    """Triage rides the dedup memo, so it needs simcore like lanes do."""
    return config.enabled() and simcore.enabled()


def _count(name: str, value: int = 1) -> None:
    if value and telemetry.is_enabled():
        telemetry.count(name, value)


def _fingerprint(profiler_config) -> str:
    from repro.profiler.harness import ProfilerConfig
    from repro.runtime import blockplan, lanes
    cfg = profiler_config if profiler_config is not None \
        else ProfilerConfig()
    return storemod.config_fingerprint(
        cfg, fastpath=simcore.enabled(), blockplan=blockplan.enabled(),
        lanes=lanes.enabled(), lane_width=lanes.lane_width())


def store_for(uarch: str, seed: int, profiler_config) -> TriageStore:
    """The (process-cached) store for one execution configuration."""
    global _LAST_STORE
    directory = storemod.store_dir(uarch, seed,
                                   _fingerprint(profiler_config))
    st = _STORES.get(directory)
    if st is None:
        st = TriageStore(directory)
        _STORES[directory] = st
    _LAST_STORE = st
    return st


# ---------------------------------------------------------------------------
# Row <-> result
# ---------------------------------------------------------------------------

def _num(value):
    """JSON-safe scalar (numpy scalars carry an ``item`` method)."""
    item = getattr(value, "item", None)
    return item() if callable(item) else value


def _row_for_result(digest: str, result: ProfileResult) -> dict:
    return {
        "digest": digest,
        "text": result.block_text,
        "throughput": _num(result.throughput),
        "measurements": [
            [_num(m.unroll), _num(m.cycles), _num(m.clean_runs),
             _num(m.total_runs), _num(m.l1d_read_misses),
             _num(m.l1d_write_misses), _num(m.l1i_misses),
             _num(m.misaligned_refs)]
            for m in result.measurements],
        "pages_mapped": _num(result.pages_mapped),
        "num_faults": _num(result.num_faults),
        "subnormal_events": _num(result.subnormal_events),
        "extra": {key: _num(value)
                  for key, value in result.extra.items()
                  if key != "triage_revalidated"},
    }


def _result_from_row(uarch: str, text: str,
                     row: dict) -> Optional[ProfileResult]:
    """Rebuild the exact journaled result; ``None`` on a malformed row.

    A row that does not reconstruct cleanly is treated like a
    disagreement: the block falls through and gets re-journaled from a
    fresh measurement.
    """
    try:
        throughput = row["throughput"]
        if not isinstance(throughput, (int, float)) \
                or isinstance(throughput, bool) or throughput <= 0:
            return None
        measurements = tuple(
            Measurement(unroll=m[0], cycles=m[1], clean_runs=m[2],
                        total_runs=m[3], l1d_read_misses=m[4],
                        l1d_write_misses=m[5], l1i_misses=m[6],
                        misaligned_refs=m[7])
            for m in row["measurements"])
        extra = dict(row.get("extra") or {})
        extra["triage_revalidated"] = 1.0
        return ProfileResult(
            text, uarch,
            throughput=float(throughput),
            measurements=measurements,
            pages_mapped=int(row["pages_mapped"]),
            num_faults=int(row["num_faults"]),
            subnormal_events=int(row["subnormal_events"]),
            extra=extra)
    except (KeyError, TypeError, ValueError, IndexError):
        return None


def decide(model: Optional[surrogatemod.Surrogate], block,
           cached: float, tol: float) -> bool:
    """The routing predicate: revalidate this cached value?

    A pure function of (block content, cached value, tolerance) for a
    fixed model — no ``hash()``, no ambient state, no order
    dependence; ``tests/triage`` pins this with a hypothesis property.
    Absent model or failed featurisation routes to full simulation.
    """
    if model is None:
        return False
    if not isinstance(cached, (int, float)) or isinstance(cached, bool):
        return False
    phi = surrogatemod.featurize(block)
    if phi is None:
        return False
    predicted = model.predict(phi)
    return abs(predicted - cached) <= tol * max(abs(cached), 1.0)


# ---------------------------------------------------------------------------
# profile_many hooks
# ---------------------------------------------------------------------------

def prepare_triage(profiler, items: Sequence) -> None:
    """Seed ``profiler._memo`` with revalidated cached measurements.

    Runs before ``lanebatch.prepare_lanes`` (which skips memoised
    texts, so a revalidated block never pays for lane formation
    either).  Chaos ``block_poison`` targets are never revalidated —
    the poison must reach the scalar path and quarantine exactly as it
    would with triage off, or the funnel would change.
    """
    if not _active():
        return
    st = store_for(profiler.machine.name, profiler.machine.seed,
                   profiler.config)
    model = st.surrogate() if st.rows else None
    tol = config.tolerance()
    uarch = profiler.machine.name
    seen: set = set()
    routed = revalidated = disagreed = novel = 0
    for block in items:
        text = block.text()
        if text in seen or text in profiler._memo:
            continue
        seen.add(text)
        if chaos.should_fire("block_poison", text):
            continue
        routed += 1
        row = st.rows.get(storemod.block_digest(text))
        if row is None:
            novel += 1
            continue
        result = None
        if decide(model, block, row.get("throughput"), tol):
            result = _result_from_row(uarch, text, row)
        if result is None:
            disagreed += 1
            continue
        profiler._memo[text] = result
        revalidated += 1
    _count("triage.routed", routed)
    _count("triage.novel", novel)
    _count("triage.disagreed", disagreed)
    _count("triage.revalidated", revalidated)
    _count(cachestats.counter_name("triage", "hits"), revalidated)
    _count(cachestats.counter_name("triage", "misses"),
           novel + disagreed)


def absorb_results(profiler, items: Sequence,
                   results: Sequence[ProfileResult]) -> None:
    """Journal this run's fresh measurements for future revalidation.

    Accepted, freshly simulated (not revalidated), first-occurrence
    blocks not already journaled.  Append-only and crash/concurrency
    tolerant (see :class:`repro.triage.store.TriageStore`); pool
    workers journal their own shards' blocks directly.
    """
    if not _active():
        return
    st = store_for(profiler.machine.name, profiler.machine.seed,
                   profiler.config)
    seen: set = set()
    fresh: List[dict] = []
    for result in results:
        text = result.block_text
        if text in seen:
            continue
        seen.add(text)
        if not result.ok or not result.throughput \
                or result.extra.get("triage_revalidated"):
            continue
        digest = storemod.block_digest(text)
        if digest in st.rows:
            continue
        fresh.append(_row_for_result(digest, result))
    written = st.append(fresh)
    _count("triage.journaled_rows", written)


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------

def publish_weights(uarch: str, seed: int, profiler_config) -> None:
    """Retrain the surrogate from the full journal and publish it.

    Called once per run from the parent process — the sharded engine
    after its merge, the serial path after ``profile_corpus_detailed``
    — never from pool workers (their appended rows are picked up by
    the parent's reload here).  Idempotent: when the journal census
    matches the published artifact's, nothing is refitted.  Any
    failure degrades silently; training is an optimisation, not a
    correctness step.
    """
    if not _active() or chaos.in_worker():
        return
    try:
        from repro.isa.parser import parse_block
        st = store_for(uarch, seed, profiler_config)
        st.reload()
        if not st.rows:
            return
        pairs = [(digest, row["throughput"])
                 for digest, row in st.rows.items()
                 if isinstance(row.get("throughput"), (int, float))
                 and not isinstance(row.get("throughput"), bool)]
        if not pairs:
            return
        census = surrogatemod.census_of(pairs)
        current = st.surrogate()
        if current is not None and current.census == census:
            return
        rows = []
        for digest, throughput in pairs:
            try:
                block = parse_block(st.rows[digest]["text"])
            except Exception:
                continue
            rows.append((digest, block, float(throughput)))
        model = surrogatemod.fit_rows(rows)
        if model is None:
            return
        # Idempotence keys on the *journal* census (including rows the
        # featuriser had to drop), not the fitted subset's.
        model.census = census
        if st.publish(model) is not None:
            _count("triage.trained")
            _count("triage.train_rows", model.rows)
            if telemetry.is_enabled():
                telemetry.event("triage.trained", rows=model.rows,
                                census=census, uarch=uarch)
    except Exception as exc:
        if telemetry.is_enabled():
            telemetry.event("triage.train_error",
                            error=type(exc).__name__,
                            detail=str(exc)[:200])


# ---------------------------------------------------------------------------
# Cache telemetry
# ---------------------------------------------------------------------------

def _triage_cache_stats() -> cachestats.CacheStats:
    """Unified-telemetry provider for the triage revalidation cache."""
    stats = cachestats.registry_stats("triage")
    if _LAST_STORE is not None:
        stats.size = len(_LAST_STORE.rows)
    return stats


cachestats.register_provider("triage", _triage_cache_stats)
