"""On-disk triage state: the block journal and the weights artifact.

One store directory per *execution configuration* —
``triage_<uarch>_<seed>_<fingerprint>/`` next to the v3 shard cache —
where the fingerprint covers the profiler configuration **and** the
fastpath/blockplan/lanes switchboard state.  A measurement journaled
under one configuration can therefore never be replayed into a run
with a different one, even though the measured bytes themselves are
switch-invariant: the informational ``extra`` flags stored with each
row are *not*, and restoring a stale flag would misreport coverage.

Layout::

    triage_<uarch>_<seed>_<fp>/
        blocks.ndjson        append-only block journal
        weights_<crc>.json   content-addressed fitted surrogates
        HEAD                 name of the current weights artifact

``blocks.ndjson`` reuses the CRC-self-checked line format of the run
journal (:mod:`repro.resilience.journal`): every line carries a
checksum of its own payload, so a line torn by a crash — or
interleaved by two pool workers appending concurrently — fails its
self-check and is dropped on load; its block simply re-simulates on
the next run.  Appends go through a single ``write`` on an
append-mode handle, so concurrent workers extend rather than clobber.

Weights artifacts are content-addressed (CRC-32 of the canonical
payload in the filename and inside the file) and published atomically
(tmp + ``os.replace`` for both the artifact and ``HEAD``), so a
reader never observes a half-written model.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional

from repro.resilience.journal import journal_line, parse_journal_line
from repro.triage.surrogate import Surrogate

BLOCKS_NAME = "blocks.ndjson"
HEAD_NAME = "HEAD"


def block_digest(text: str) -> str:
    """Content digest of one block text (``PYTHONHASHSEED``-proof)."""
    return f"{zlib.crc32(text.encode()):08x}"


def config_fingerprint(config, *, fastpath: bool, blockplan: bool,
                       lanes: bool, lane_width: int) -> str:
    """Digest of everything that shapes a profile's full result.

    ``repr`` of the (frozen, dataclass) profiler configuration plus
    the live switchboard state.  The throughput/measurement bytes only
    depend on the former — the paper-pipeline differential suites
    prove the switches invisible — but the informational ``extra``
    flags journaled with each row depend on both, so both pin the
    store directory.
    """
    text = (f"{config!r}|fp={fastpath}|bp={blockplan}"
            f"|lanes={lanes}:{lane_width}")
    return f"{zlib.crc32(text.encode()):08x}"


def cache_root() -> str:
    """``$REPRO_CACHE`` or the repo-local ``.cache`` directory.

    Same resolution as the v3 shard cache
    (``repro.eval.pipeline._cache_dir``), so triage state lives next
    to the measurement shards it revalidates.
    """
    root = os.environ.get("REPRO_CACHE",
                          os.path.join(os.path.dirname(__file__),
                                       "..", "..", "..", ".cache"))
    return os.path.abspath(root)


def store_dir(uarch: str, seed: int, fingerprint: str) -> str:
    return os.path.join(cache_root(),
                        f"triage_{uarch}_{seed}_{fingerprint}")


class TriageStore:
    """One configuration's block journal + weights artifact."""

    def __init__(self, directory: str):
        self.directory = directory
        #: digest -> journaled row (last intact occurrence wins).
        self.rows: Dict[str, dict] = {}
        #: Journal lines dropped for failing their self-check.
        self.torn_rows = 0
        self._surrogate: Optional[Surrogate] = None
        self._surrogate_loaded = False
        self.reload()

    # -- block journal -------------------------------------------------

    @property
    def blocks_path(self) -> str:
        return os.path.join(self.directory, BLOCKS_NAME)

    def reload(self) -> None:
        """(Re-)read the journal from disk, tolerating torn lines."""
        self.rows = {}
        self.torn_rows = 0
        try:
            with open(self.blocks_path) as fh:
                lines = fh.read().splitlines()
        except OSError:
            return
        for line in lines:
            if not line.strip():
                continue
            record = parse_journal_line(line)
            if record is None or "digest" not in record:
                self.torn_rows += 1
                continue
            self.rows[record["digest"]] = record

    def append(self, records: List[dict]) -> int:
        """Durably append rows; returns how many were written.

        One buffered ``write`` on an ``O_APPEND`` handle per call, so
        concurrent pool workers interleave at worst per-call, and a
        torn interleaving is caught by the per-line CRC on load.
        Write failures degrade silently — the rows are simply
        journaled again by a later run.
        """
        if not records:
            return 0
        try:
            os.makedirs(self.directory, exist_ok=True)
            payload = "".join(journal_line(r) + "\n" for r in records)
            with open(self.blocks_path, "a") as fh:
                fh.write(payload)
                fh.flush()
        except OSError:
            return 0
        for record in records:
            self.rows[record["digest"]] = record
        return len(records)

    # -- weights artifact ----------------------------------------------

    def surrogate(self) -> Optional[Surrogate]:
        """The published surrogate, loaded lazily (``None`` if absent)."""
        if not self._surrogate_loaded:
            self._surrogate = self._load_weights()
            self._surrogate_loaded = True
        return self._surrogate

    def _load_weights(self) -> Optional[Surrogate]:
        try:
            with open(os.path.join(self.directory, HEAD_NAME)) as fh:
                name = fh.read().strip()
            if not name or os.sep in name or name.startswith("."):
                return None
            with open(os.path.join(self.directory, name)) as fh:
                wrapper = json.load(fh)
            payload = json.dumps(wrapper["doc"], sort_keys=True)
            if zlib.crc32(payload.encode()) != wrapper["crc"]:
                return None
            return Surrogate.from_doc(wrapper["doc"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def publish(self, model: Surrogate) -> Optional[str]:
        """Atomically publish a fitted surrogate; returns its filename.

        Content-addressed: the artifact name carries the CRC of its
        canonical payload, and ``HEAD`` flips to it with an atomic
        replace.  Publishing the model ``HEAD`` already points at is a
        no-op.  Failures degrade to ``None`` (the run keeps its
        current weights).
        """
        try:
            payload = json.dumps(model.to_doc(), sort_keys=True)
            crc = zlib.crc32(payload.encode())
            name = f"weights_{crc:08x}.json"
            os.makedirs(self.directory, exist_ok=True)
            path = os.path.join(self.directory, name)
            if not os.path.exists(path):
                tmp = f"{path}.{os.getpid()}.tmp"
                with open(tmp, "w") as fh:
                    fh.write(json.dumps({"crc": crc,
                                         "doc": model.to_doc()},
                                        sort_keys=True))
                os.replace(tmp, path)
            head = os.path.join(self.directory, HEAD_NAME)
            tmp = f"{head}.{os.getpid()}.tmp"
            with open(tmp, "w") as fh:
                fh.write(name + "\n")
            os.replace(tmp, head)
        except OSError:
            return None
        self._surrogate = model
        self._surrogate_loaded = True
        return name
